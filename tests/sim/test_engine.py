"""Tests for the parallel, cache-aware sweep engine."""

import pytest

from repro.common.config import AttackModel
from repro.sim.api import RunFailure, RunMetrics, Session
from repro.sim.cache import ResultCache
from repro.sim.configs import config_by_name
from repro.sim.engine import SweepEngine
from repro.sim.events import JsonlEventLog
from repro.sim.policies import CachePolicy, ExecutionPolicy
from repro.workloads import make_indirect_stream

WORKLOAD = make_indirect_stream("engine_unit", table_words=512, iterations=60, seed=4)
NO_CACHE = CachePolicy(enabled=False)
CONFIG_NAMES = ("Unsafe", "STT{ld}", "Hybrid")


def make_requests(session):
    return [session.request(WORKLOAD, name) for name in CONFIG_NAMES]


class TestDeterminism:
    def test_results_keep_request_order(self):
        session = Session(cache=NO_CACHE)
        results = session.run_many(make_requests(session))
        assert [r.config for r in results] == list(CONFIG_NAMES)

    def test_parallel_equals_serial(self):
        """jobs=N must produce results identical (ordering included) to
        jobs=1 — parallelism is a pure go-faster knob."""
        serial = Session(cache=NO_CACHE, execution=ExecutionPolicy(jobs=1))
        parallel = Session(cache=NO_CACHE, execution=ExecutionPolicy(jobs=2))
        requests = make_requests(serial)
        assert parallel.run_many(requests) == serial.run_many(requests)

    def test_sweep_matches_legacy_iteration_order(self):
        session = Session(cache=NO_CACHE)
        results = session.sweep(
            [WORKLOAD],
            configs=[config_by_name("Unsafe"), config_by_name("Hybrid")],
            attack_models=(AttackModel.SPECTRE, AttackModel.FUTURISTIC),
        )
        assert [(r.attack_model, r.config) for r in results] == [
            (AttackModel.SPECTRE, "Unsafe"),
            (AttackModel.SPECTRE, "Hybrid"),
            (AttackModel.FUTURISTIC, "Unsafe"),
            (AttackModel.FUTURISTIC, "Hybrid"),
        ]


class TestCacheIntegration:
    def test_second_sweep_hits_cache_without_building_a_core(
        self, tmp_path, monkeypatch
    ):
        """Acceptance: the repeat sweep must not construct a single Core."""
        first = Session(cache=CachePolicy(cache_dir=tmp_path))
        cold = first.run_many(make_requests(first))

        import repro.sim.api as api

        def no_core(*_args, **_kwargs):
            raise AssertionError("cache hit must not construct a Core")

        monkeypatch.setattr(api, "Core", no_core)
        events = []
        second = Session(
            cache=CachePolicy(cache_dir=tmp_path), observers=[events.append]
        )
        warm = second.run_many(make_requests(second))
        assert warm == cold
        assert {e.kind for e in events} == {"queued", "cache_hit"}

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        serial = Session(
            cache=CachePolicy(cache_dir=tmp_path), execution=ExecutionPolicy(jobs=1)
        )
        cold = serial.run_many(make_requests(serial))
        parallel = Session(
            cache=CachePolicy(cache_dir=tmp_path), execution=ExecutionPolicy(jobs=2)
        )
        events = []
        parallel.add_observer(events.append)
        warm = parallel.run_many(make_requests(parallel))
        assert warm == cold
        assert all(e.kind in ("queued", "cache_hit") for e in events)

    def test_explicit_result_cache_instance(self, tmp_path):
        cache = ResultCache(tmp_path)
        session = Session(cache=cache)
        session.run(WORKLOAD, "Unsafe")
        assert len(cache) == 1


class TestFaultIsolation:
    def test_failure_surfaces_as_runfailure_serial(self, monkeypatch):
        import repro.sim.engine as engine_mod

        real_execute = engine_mod.execute

        def flaky(request):
            if request.config.name == "STT{ld}":
                raise RuntimeError("injected fault")
            return real_execute(request)

        monkeypatch.setattr(engine_mod, "execute", flaky)
        session = Session(cache=NO_CACHE, execution=ExecutionPolicy(jobs=1))
        results = session.run_many(make_requests(session))
        assert isinstance(results[0], RunMetrics)
        assert isinstance(results[1], RunFailure)
        assert isinstance(results[2], RunMetrics)
        failure = results[1]
        assert failure.config == "STT{ld}"
        assert failure.error_type == "RuntimeError"
        assert "injected fault" in failure.message
        assert "injected fault" in failure.traceback

    def test_failure_surfaces_as_runfailure_parallel(self, monkeypatch):
        """One crashed worker cell must not kill the sweep (workers inherit
        the patched module via fork)."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fault injection via monkeypatch needs fork workers")

        import repro.sim.engine as engine_mod

        real_execute = engine_mod.execute

        def flaky(request):
            if request.config.name == "Hybrid":
                raise ValueError("parallel fault")
            return real_execute(request)

        monkeypatch.setattr(engine_mod, "execute", flaky)
        session = Session(cache=NO_CACHE, execution=ExecutionPolicy(jobs=2))
        results = session.run_many(make_requests(session))
        assert [type(r) for r in results] == [RunMetrics, RunMetrics, RunFailure]
        assert results[2].error_type == "ValueError"

    def test_strict_raises_with_failure_summary(self, monkeypatch):
        import repro.sim.engine as engine_mod

        def always_fail(_request):
            raise RuntimeError("boom")

        monkeypatch.setattr(engine_mod, "execute", always_fail)
        session = Session(cache=NO_CACHE)
        with pytest.raises(RuntimeError, match="boom"):
            session.run(WORKLOAD, "Unsafe")

    def test_failed_run_is_not_cached(self, tmp_path, monkeypatch):
        import repro.sim.engine as engine_mod

        def always_fail(_request):
            raise RuntimeError("boom")

        monkeypatch.setattr(engine_mod, "execute", always_fail)
        cache = ResultCache(tmp_path)
        session = Session(cache=cache)
        [outcome] = session.run_many([session.request(WORKLOAD, "Unsafe")])
        assert isinstance(outcome, RunFailure)
        assert len(cache) == 0


class TestEvents:
    def test_lifecycle_sequence_serial(self):
        events = []
        session = Session(cache=NO_CACHE, observers=[events.append])
        session.run(WORKLOAD, "Unsafe")
        assert [e.kind for e in events] == ["queued", "started", "finished"]
        finished = events[-1]
        assert finished.cycles > 0
        assert finished.wall_time > 0
        assert finished.workload == "engine_unit"
        assert finished.model == "spectre"

    def test_failed_event_carries_error(self, monkeypatch):
        import repro.sim.engine as engine_mod

        def always_fail(_request):
            raise RuntimeError("boom")

        monkeypatch.setattr(engine_mod, "execute", always_fail)
        events = []
        session = Session(cache=NO_CACHE, observers=[events.append])
        session.run_many([session.request(WORKLOAD, "Unsafe")])
        assert [e.kind for e in events] == ["queued", "started", "failed"]
        assert "RuntimeError: boom" in events[-1].error

    def test_every_request_reaches_exactly_one_terminal_event(self, tmp_path):
        events = []
        session = Session(
            cache=CachePolicy(cache_dir=tmp_path),
            execution=ExecutionPolicy(jobs=2),
            observers=[events.append],
        )
        session.run_many(make_requests(session))
        terminal = [e for e in events if e.kind in ("finished", "failed", "cache_hit")]
        assert sorted(e.index for e in terminal) == [0, 1, 2]

    def test_parallel_started_never_exceeds_jobs(self, tmp_path):
        """With ``jobs < len(pending)`` the recorded event log must never
        claim more than ``jobs`` runs started-but-unterminated.  (The
        pre-fix engine emitted every ``started`` at submit time, so the log
        said all six runs were in flight at once on two workers.)"""
        jobs = 2
        log_path = tmp_path / "sweep.events.jsonl"
        with JsonlEventLog(log_path) as log:
            session = Session(
                cache=NO_CACHE, execution=ExecutionPolicy(jobs=jobs), observers=[log]
            )
            session.sweep(
                [WORKLOAD],
                configs=[config_by_name(name) for name in CONFIG_NAMES],
                attack_models=(AttackModel.SPECTRE, AttackModel.FUTURISTIC),
            )
        from repro.sim.events import read_events

        events = read_events(log_path)
        started: set[int] = set()
        terminated: set[int] = set()
        peak = 0
        for event in events:
            if event.kind == "started":
                assert event.index not in started, "duplicate started"
                started.add(event.index)
            elif event.kind in ("finished", "failed"):
                assert event.index in started, "terminal event before started"
                terminated.add(event.index)
            peak = max(peak, len(started - terminated))
        assert started == terminated == set(range(2 * len(CONFIG_NAMES)))
        assert peak <= jobs, (
            f"event log claims {peak} concurrent runs with jobs={jobs}"
        )

    def test_jsonl_event_log(self, tmp_path):
        log_path = tmp_path / "sweep.events.jsonl"
        with JsonlEventLog(log_path) as log:
            session = Session(cache=NO_CACHE, observers=[log])
            session.run(WORKLOAD, "Unsafe")
        import json

        records = [json.loads(line) for line in log_path.read_text().splitlines()]
        assert [r["kind"] for r in records] == ["queued", "started", "finished"]
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert records[-1]["cycles"] > 0
        assert records[-1]["config"] == "Unsafe"


class TestEngineValidation:
    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepEngine(jobs=0)

    def test_empty_batch(self):
        session = Session(cache=NO_CACHE)
        assert session.run_many([]) == []
