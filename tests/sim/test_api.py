"""Tests for the Session/RunRequest API and the deprecated shims."""

import dataclasses

import pytest

from repro.common.config import AttackModel, MachineConfig
from repro.sim import run_suite, run_workload
from repro.sim.api import (
    DEFAULT_MAX_INSTRUCTIONS,
    RunMetrics,
    RunRequest,
    Session,
    execute,
)
from repro.sim.configs import config_by_name
from repro.workloads import make_indirect_stream

WORKLOAD = make_indirect_stream("api_unit", table_words=512, iterations=60, seed=4)


class TestRunRequest:
    def test_defaults(self):
        request = RunRequest(WORKLOAD, config_by_name("Unsafe"))
        assert request.attack_model is AttackModel.SPECTRE
        assert request.machine == MachineConfig()
        assert request.check_golden is True
        assert request.max_instructions == DEFAULT_MAX_INSTRUCTIONS

    def test_frozen(self):
        request = RunRequest(WORKLOAD, config_by_name("Unsafe"))
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.check_golden = False

    def test_equal_requests_compare_equal(self):
        a = RunRequest(WORKLOAD, config_by_name("Hybrid"))
        b = RunRequest(WORKLOAD, config_by_name("Hybrid"))
        assert a == b


class TestExecute:
    def test_is_deterministic(self):
        request = RunRequest(WORKLOAD, config_by_name("Hybrid"))
        assert execute(request) == execute(request)

    def test_preserves_ablation_knobs(self):
        """A machine carrying early_forwarding=False must keep it even after
        the config-derived protection swap (the Section V-C2 ablation)."""
        base = MachineConfig()
        knobbed = base.with_protection(
            dataclasses.replace(base.protection, early_forwarding=False)
        )
        request = RunRequest(WORKLOAD, config_by_name("Hybrid"), machine=knobbed)
        default = execute(RunRequest(WORKLOAD, config_by_name("Hybrid")))
        ablated = execute(request)
        # Disabling early forwarding can only slow things down.
        assert ablated.cycles >= default.cycles


class TestRunMetrics:
    def make(self, model=AttackModel.SPECTRE, cycles=1000, instructions=500,
             config="Hybrid"):
        return RunMetrics(
            workload="w", config=config, attack_model=model,
            cycles=cycles, instructions=instructions,
            stats={"stt.sdo.predictions": 4.0, "stt.sdo.precise": 3.0},
        )

    def test_normalized_to(self):
        base = self.make(cycles=1000, config="Unsafe")
        other = self.make(cycles=1500)
        assert other.normalized_to(base) == pytest.approx(1.5)

    def test_normalized_to_rejects_cross_model(self):
        spectre = self.make(model=AttackModel.SPECTRE)
        futuristic = self.make(model=AttackModel.FUTURISTIC, config="Unsafe")
        with pytest.raises(ValueError, match="cannot normalize across attack models"):
            spectre.normalized_to(futuristic)

    def test_dict_roundtrip(self):
        metrics = self.make()
        payload = metrics.to_dict()
        assert payload["attack_model"] == "spectre"
        import json

        assert RunMetrics.from_dict(json.loads(json.dumps(payload))) == metrics


class TestSession:
    def test_run_accepts_string_names(self):
        session = Session(cache=False)
        metrics = session.run(WORKLOAD, "Unsafe", "spectre")
        assert metrics.config == "Unsafe"
        assert metrics.attack_model is AttackModel.SPECTRE

    def test_run_accepts_prebuilt_request(self):
        session = Session(cache=False)
        request = session.request(WORKLOAD, "Unsafe")
        assert session.run(request) == session.run(WORKLOAD, "Unsafe")

    def test_run_requires_config_without_request(self):
        session = Session(cache=False)
        with pytest.raises(TypeError):
            session.run(WORKLOAD)

    def test_unknown_config_suggests_a_name(self):
        session = Session(cache=False)
        with pytest.raises(KeyError, match="did you mean 'Hybrid'"):
            session.run(WORKLOAD, "hybird")

    def test_session_defaults_flow_into_requests(self):
        session = Session(check_golden=False, max_instructions=1234, cache=False)
        request = session.request(WORKLOAD, "Unsafe")
        assert request.check_golden is False
        assert request.max_instructions == 1234
        # explicit per-request values win over session defaults
        override = session.request(WORKLOAD, "Unsafe", check_golden=True)
        assert override.check_golden is True


class TestDeprecatedShims:
    def test_run_workload_warns_and_matches_execute(self):
        config = config_by_name("Unsafe")
        with pytest.warns(DeprecationWarning, match="run_workload"):
            legacy = run_workload(WORKLOAD, config)
        assert legacy == execute(RunRequest(WORKLOAD, config))

    def test_run_suite_warns_and_matches_sweep(self):
        configs = [config_by_name("Unsafe"), config_by_name("Hybrid")]
        with pytest.warns(DeprecationWarning, match="run_suite"):
            legacy = run_suite(
                [WORKLOAD], configs, attack_models=(AttackModel.SPECTRE,)
            )
        session = Session(cache=False)
        assert legacy == session.sweep(
            [WORKLOAD], configs, attack_models=(AttackModel.SPECTRE,)
        )

    def test_run_suite_progress_callback_still_fires(self):
        seen = []
        with pytest.warns(DeprecationWarning):
            run_suite(
                [WORKLOAD],
                [config_by_name("Unsafe")],
                attack_models=(AttackModel.SPECTRE,),
                progress=lambda w, c, m: seen.append((w, c, m)),
            )
        assert seen == [("api_unit", "Unsafe", AttackModel.SPECTRE)]

    def test_top_level_reexports(self):
        import repro

        assert repro.Session is Session
        assert repro.RunRequest is RunRequest
        assert repro.execute is execute
