"""Tests for the Session/RunRequest API and the legacy-kwarg shims."""

import dataclasses

import pytest

from repro.common.config import AttackModel, MachineConfig
from repro.sim.api import (
    DEFAULT_MAX_INSTRUCTIONS,
    RunMetrics,
    RunRequest,
    Session,
    execute,
)
from repro.sim.configs import config_by_name
from repro.sim.policies import CachePolicy, ExecutionPolicy, JournalPolicy
from repro.workloads import make_indirect_stream

WORKLOAD = make_indirect_stream("api_unit", table_words=512, iterations=60, seed=4)
NO_CACHE = CachePolicy(enabled=False)


class TestRunRequest:
    def test_defaults(self):
        request = RunRequest(WORKLOAD, config_by_name("Unsafe"))
        assert request.attack_model is AttackModel.SPECTRE
        assert request.machine == MachineConfig()
        assert request.check_golden is True
        assert request.max_instructions == DEFAULT_MAX_INSTRUCTIONS

    def test_frozen(self):
        request = RunRequest(WORKLOAD, config_by_name("Unsafe"))
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.check_golden = False

    def test_equal_requests_compare_equal(self):
        a = RunRequest(WORKLOAD, config_by_name("Hybrid"))
        b = RunRequest(WORKLOAD, config_by_name("Hybrid"))
        assert a == b


class TestExecute:
    def test_is_deterministic(self):
        request = RunRequest(WORKLOAD, config_by_name("Hybrid"))
        assert execute(request) == execute(request)

    def test_preserves_ablation_knobs(self):
        """A machine carrying early_forwarding=False must keep it even after
        the config-derived protection swap (the Section V-C2 ablation)."""
        base = MachineConfig()
        knobbed = base.with_protection(
            dataclasses.replace(base.protection, early_forwarding=False)
        )
        request = RunRequest(WORKLOAD, config_by_name("Hybrid"), machine=knobbed)
        default = execute(RunRequest(WORKLOAD, config_by_name("Hybrid")))
        ablated = execute(request)
        # Disabling early forwarding can only slow things down.
        assert ablated.cycles >= default.cycles


class TestRunMetrics:
    def make(self, model=AttackModel.SPECTRE, cycles=1000, instructions=500,
             config="Hybrid"):
        return RunMetrics(
            workload="w", config=config, attack_model=model,
            cycles=cycles, instructions=instructions,
            stats={"stt.sdo.predictions": 4.0, "stt.sdo.precise": 3.0},
        )

    def test_normalized_to(self):
        base = self.make(cycles=1000, config="Unsafe")
        other = self.make(cycles=1500)
        assert other.normalized_to(base) == pytest.approx(1.5)

    def test_normalized_to_rejects_cross_model(self):
        spectre = self.make(model=AttackModel.SPECTRE)
        futuristic = self.make(model=AttackModel.FUTURISTIC, config="Unsafe")
        with pytest.raises(ValueError, match="cannot normalize across attack models"):
            spectre.normalized_to(futuristic)

    def test_dict_roundtrip(self):
        metrics = self.make()
        payload = metrics.to_dict()
        assert payload["attack_model"] == "spectre"
        import json

        assert RunMetrics.from_dict(json.loads(json.dumps(payload))) == metrics


class TestSession:
    def test_run_accepts_string_names(self):
        session = Session(cache=NO_CACHE)
        metrics = session.run(WORKLOAD, "Unsafe", "spectre")
        assert metrics.config == "Unsafe"
        assert metrics.attack_model is AttackModel.SPECTRE

    def test_run_accepts_prebuilt_request(self):
        session = Session(cache=NO_CACHE)
        request = session.request(WORKLOAD, "Unsafe")
        assert session.run(request) == session.run(WORKLOAD, "Unsafe")

    def test_run_requires_config_without_request(self):
        session = Session(cache=NO_CACHE)
        with pytest.raises(TypeError):
            session.run(WORKLOAD)

    def test_unknown_config_suggests_a_name(self):
        session = Session(cache=NO_CACHE)
        with pytest.raises(KeyError, match="did you mean 'Hybrid'"):
            session.run(WORKLOAD, "hybird")

    def test_session_defaults_flow_into_requests(self):
        session = Session(check_golden=False, max_instructions=1234, cache=NO_CACHE)
        request = session.request(WORKLOAD, "Unsafe")
        assert request.check_golden is False
        assert request.max_instructions == 1234
        # explicit per-request values win over session defaults
        override = session.request(WORKLOAD, "Unsafe", check_golden=True)
        assert override.check_golden is True


class TestSessionLifecycle:
    def test_close_is_idempotent(self):
        session = Session(cache=NO_CACHE)
        session.close()
        session.close()  # second close is a no-op, not an error
        assert session.closed

    def test_context_manager_closes(self):
        with Session(cache=NO_CACHE) as session:
            session.run(WORKLOAD, "Unsafe")
        assert session.closed

    def test_closed_session_refuses_runs(self):
        session = Session(cache=NO_CACHE)
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.run(WORKLOAD, "Unsafe")


class TestLegacyKwargShims:
    """The pre-policy Session keywords still work, but warn once each."""

    def test_legacy_jobs_warns_and_configures_engine(self):
        with pytest.warns(DeprecationWarning, match=r"ExecutionPolicy\(jobs="):
            session = Session(jobs=2, cache=NO_CACHE)
        assert session.engine.jobs == 2
        assert session.execution.jobs == 2

    def test_legacy_bool_cache_warns(self):
        with pytest.warns(DeprecationWarning, match=r"CachePolicy\(enabled="):
            session = Session(cache=False)
        assert session.cache is None

    def test_legacy_timeout_and_retries_warn(self):
        with pytest.warns(DeprecationWarning):
            session = Session(cache=NO_CACHE, timeout=9.0, retries=3)
        assert session.engine.timeout == 9.0
        assert session.engine.retry.max_retries == 3

    def test_legacy_conflicts_with_policy(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="conflict with execution="):
                Session(execution=ExecutionPolicy(jobs=2), jobs=3)

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            Session(bogus=1)

    def test_legacy_resume_without_journal_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="requires a journal"):
                Session(cache=NO_CACHE, resume=True)

    def test_legacy_journal_path_warns(self, tmp_path):
        with pytest.warns(DeprecationWarning, match=r"JournalPolicy\(path="):
            session = Session(cache=NO_CACHE, journal=tmp_path / "journal.jsonl")
        assert session.journal is not None
        assert session.journal_policy == JournalPolicy(
            path=str(tmp_path / "journal.jsonl")
        )


class TestPolicySession:
    def test_policies_configure_engine(self, tmp_path):
        session = Session(
            execution=ExecutionPolicy(jobs=2, timeout=30.0, retries=1),
            cache=CachePolicy(cache_dir=tmp_path / "cache"),
            journal=JournalPolicy(path=tmp_path / "journal.jsonl"),
        )
        assert session.engine.jobs == 2
        assert session.engine.timeout == 30.0
        assert session.engine.retry.max_retries == 1
        assert session.cache is not None
        assert str(session.cache.root) == str(tmp_path / "cache")
        assert session.journal is not None
        session.close()

    def test_session_exposes_its_policies(self):
        session = Session(cache=NO_CACHE)
        assert session.execution == ExecutionPolicy()
        assert session.cache_policy == NO_CACHE
        assert session.journal_policy == JournalPolicy()

    def test_top_level_reexports(self):
        import repro

        assert repro.Session is Session
        assert repro.RunRequest is RunRequest
        assert repro.execute is execute
        assert repro.ExecutionPolicy is ExecutionPolicy
        assert repro.CachePolicy is CachePolicy
        assert repro.JournalPolicy is JournalPolicy
