"""Tests for the run-lifecycle event stream: JSONL round-trip and
observer-exception isolation — plus :class:`RunFailure` serialization,
which rides the same JSONL formats (sweep journal, event log)."""

import pytest

from repro.common.config import AttackModel
from repro.sim.api import FAILURE_TIMEOUT, RunFailure, Session
from repro.sim.events import (
    FAILED,
    FINISHED,
    QUEUED,
    JsonlEventLog,
    RunEvent,
    read_events,
)
from repro.sim.policies import CachePolicy
from repro.workloads import make_indirect_stream

NO_CACHE = CachePolicy(enabled=False)


@pytest.fixture
def workload():
    return make_indirect_stream("events_kernel", table_words=128, iterations=20, seed=1)


class TestJsonlRoundTrip:
    def test_events_survive_write_and_read(self, tmp_path, workload):
        path = tmp_path / "run.events.jsonl"
        with JsonlEventLog(path) as log:
            session = Session(cache=NO_CACHE, observers=[log])
            metrics = session.run(workload, "Unsafe")
        events = read_events(path)
        assert [e.kind for e in events] == [QUEUED, "started", FINISHED]
        finished = events[-1]
        assert finished.workload == workload.name
        assert finished.config == "Unsafe"
        assert finished.cycles == metrics.cycles
        assert finished.instructions == metrics.instructions
        assert finished.wall_time > 0

    def test_round_trip_is_identity(self):
        event = RunEvent(
            kind=FINISHED, index=3, workload="w", config="Hybrid",
            model="spectre", wall_time=1.5, cycles=100, instructions=90,
        )
        assert RunEvent.from_dict(event.to_dict()) == event

    def test_from_dict_tolerates_log_bookkeeping_and_extras(self):
        payload = {
            "kind": QUEUED, "index": 0, "workload": "w", "config": "c",
            "model": "spectre", "seq": 7, "ts": 1754400000.0, "future_field": 1,
        }
        event = RunEvent.from_dict(payload)
        assert event.kind == QUEUED and event.index == 0

    def test_read_events_skips_blank_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        event = RunEvent(kind=QUEUED, index=0, workload="w", config="c", model="m")
        path.write_text("\n" + '{"kind": "queued", "index": 0, '
                        '"workload": "w", "config": "c", "model": "m"}\n\n')
        assert read_events(path) == [event]


class TestObserverIsolation:
    def test_raising_observer_does_not_kill_run(self, workload, capsys):
        def bad_observer(event):
            raise RuntimeError("observer exploded")

        seen = []
        session = Session(cache=NO_CACHE, observers=[bad_observer, seen.append])
        metrics = session.run(workload, "Unsafe")
        assert metrics.cycles > 0
        assert not isinstance(metrics, RunFailure)
        # Later observers still ran despite the earlier one raising.
        assert [e.kind for e in seen] == [QUEUED, "started", FINISHED]
        err = capsys.readouterr().err
        assert "observer" in err and "RuntimeError" in err

    def test_observer_failure_warns_once(self, workload, capsys):
        calls = []

        def bad_observer(event):
            calls.append(event.kind)
            raise ValueError("always broken")

        session = Session(cache=NO_CACHE, observers=[bad_observer])
        session.run(workload, "Unsafe")
        session.run(workload, "Unsafe")
        assert len(calls) >= 4  # it kept being invoked...
        err = capsys.readouterr().err
        assert err.count("ValueError") == 1  # ...but warned only once

    def test_closed_log_ignores_events(self, tmp_path):
        log = JsonlEventLog(tmp_path / "log.jsonl")
        log.close()
        log(RunEvent(kind=FAILED, index=0, workload="w", config="c", model="m"))
        # Lazy open: nothing was ever written, so nothing was ever created.
        assert not log.path.exists()


class TestCrashSafety:
    def test_no_file_created_until_first_event(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = JsonlEventLog(path)
        assert not path.exists(), "constructor must not touch the filesystem"
        log(RunEvent(kind=QUEUED, index=0, workload="w", config="c", model="m"))
        assert path.exists()
        log.close()
        assert len(read_events(path)) == 1

    def test_empty_stream_leaves_no_file(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with JsonlEventLog(path):
            pass
        assert not path.exists()

    def test_constructor_does_not_truncate_previous_log(self, tmp_path):
        """A crash between construction and the first event must not eat an
        earlier sweep's log."""
        path = tmp_path / "log.jsonl"
        with JsonlEventLog(path) as log:
            log(RunEvent(kind=QUEUED, index=0, workload="w", config="c", model="m"))
        JsonlEventLog(path)  # constructed, never used — simulated crash
        assert len(read_events(path)) == 1

    def test_close_is_idempotent_and_seals_the_log(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = JsonlEventLog(path)
        log(RunEvent(kind=QUEUED, index=0, workload="w", config="c", model="m"))
        log.close()
        log.close()
        log(RunEvent(kind=FINISHED, index=0, workload="w", config="c", model="m"))
        assert [e.kind for e in read_events(path)] == [QUEUED]


class TestRunFailureSerialization:
    def make_failure(self, **overrides):
        params = dict(
            workload="mcf_like",
            config="Hybrid",
            attack_model=AttackModel.FUTURISTIC,
            error_type="TimeoutError",
            message="run exceeded the 30s wall-clock timeout",
            traceback="Traceback (most recent call last):\n  boom\n",
            kind=FAILURE_TIMEOUT,
            attempts=3,
        )
        params.update(overrides)
        return RunFailure(**params)

    def test_dict_round_trip_is_identity(self):
        failure = self.make_failure()
        assert RunFailure.from_dict(failure.to_dict()) == failure

    def test_round_trip_preserves_traceback_kind_and_attempts(self):
        import json

        failure = self.make_failure()
        # Through actual JSON, as the sweep journal stores it.
        loaded = RunFailure.from_dict(json.loads(json.dumps(failure.to_dict())))
        assert loaded.traceback == failure.traceback
        assert loaded.kind == FAILURE_TIMEOUT
        assert loaded.attempts == 3
        assert loaded.attack_model is AttackModel.FUTURISTIC

    def test_from_dict_tolerates_legacy_payloads(self):
        """Journals written before kind/attempts existed must still load."""
        payload = self.make_failure().to_dict()
        for legacy_missing in ("traceback", "kind", "attempts"):
            payload.pop(legacy_missing)
        loaded = RunFailure.from_dict(payload)
        assert loaded.traceback == ""
        assert loaded.kind == "crash"
        assert loaded.attempts == 1

    def test_failure_event_survives_jsonl_round_trip(self, tmp_path):
        """The new failure_kind/attempt event fields must survive the
        event-log write/read cycle like every other field."""
        path = tmp_path / "log.jsonl"
        event = RunEvent(
            kind=FAILED, index=4, workload="w", config="c", model="spectre",
            wall_time=2.5, error="TimeoutError: too slow",
            failure_kind=FAILURE_TIMEOUT, attempt=2,
        )
        with JsonlEventLog(path) as log:
            log(event)
        assert read_events(path) == [event]

    def test_str_mentions_kind_and_attempts(self):
        text = str(self.make_failure())
        assert "[timeout after 3 attempts]" in text
        assert "mcf_like/Hybrid" in text
