"""Unit tests for the Session policy objects themselves (validation,
normalization, building) — Session-level integration lives in
``test_api.py``."""

import pytest

from repro.sim.cache import ResultCache, SweepJournal
from repro.sim.engine import RetryPolicy
from repro.sim.policies import (
    POLICY_CLASSES,
    CachePolicy,
    ExecutionPolicy,
    JournalPolicy,
    policy_field_names,
)


class TestExecutionPolicy:
    def test_defaults(self):
        policy = ExecutionPolicy()
        assert policy.jobs == 1
        assert policy.timeout is None
        assert policy.fabric is None
        assert policy.retry_policy.max_retries == 0

    def test_int_retries_normalized_to_policy(self):
        policy = ExecutionPolicy(retries=3)
        assert isinstance(policy.retries, RetryPolicy)
        assert policy.retries.max_retries == 3

    def test_retry_policy_passes_through(self):
        retry = RetryPolicy(max_retries=2, backoff_base=0.01)
        assert ExecutionPolicy(retries=retry).retries is retry

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            ExecutionPolicy(jobs=0)

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            ExecutionPolicy(timeout=-1.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExecutionPolicy().jobs = 4


class TestCachePolicy:
    def test_build_enabled(self, tmp_path):
        cache = CachePolicy(cache_dir=tmp_path / "c").build()
        assert isinstance(cache, ResultCache)
        assert cache.root == tmp_path / "c"

    def test_build_disabled_returns_none(self):
        assert CachePolicy(enabled=False).build() is None

    def test_path_normalized_to_str(self, tmp_path):
        assert CachePolicy(cache_dir=tmp_path).cache_dir == str(tmp_path)


class TestJournalPolicy:
    def test_build_none_without_path(self):
        assert JournalPolicy().build() is None

    def test_resume_requires_path(self):
        with pytest.raises(ValueError, match="requires a path"):
            JournalPolicy(resume=True)

    def test_build_journal(self, tmp_path):
        journal = JournalPolicy(path=tmp_path / "s.journal").build()
        assert isinstance(journal, SweepJournal)
        assert journal.path == tmp_path / "s.journal"

    def test_resume_loads_existing(self, tmp_path):
        path = tmp_path / "s.journal"
        path.write_text("")  # an empty journal is a valid journal
        journal = JournalPolicy(path=path, resume=True).build()
        assert isinstance(journal, SweepJournal)


class TestPolicyRegistry:
    """The lint wire-schema fingerprint walks POLICY_CLASSES; keep the
    registry honest."""

    def test_registry_lists_all_policies(self):
        assert set(POLICY_CLASSES) == {ExecutionPolicy, CachePolicy, JournalPolicy}

    def test_field_names_match_serialization(self):
        for cls in POLICY_CLASSES:
            assert set(cls().to_dict()) == set(policy_field_names(cls))
