"""Tests for the sweep engine's fault tolerance: retries, timeouts,
classification, cancellation, and resumable journals — all driven by the
deterministic :mod:`repro.testing.faults` harness."""

import multiprocessing
import os
import signal
import threading

import pytest

from repro.sim.api import (
    FAILURE_BUDGET,
    FAILURE_CANCELLED,
    FAILURE_CRASH,
    FAILURE_HANG,
    FAILURE_TIMEOUT,
    RunFailure,
    RunMetrics,
    Session,
)
from repro.sim.engine import RetryPolicy, SweepEngine
from repro.sim.events import TERMINAL_EVENTS
from repro.sim.policies import CachePolicy, ExecutionPolicy, JournalPolicy
from repro.testing.faults import FaultPlan, FaultSpec, InjectedCrash, inject
from repro.workloads import make_indirect_stream

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fault injection reaches pool workers only via fork",
)

#: Fast backoff so retry tests do not sleep for real.
FAST_RETRY = RetryPolicy(max_retries=1, backoff_base=0.01)


def cell(name, seed=1):
    return make_indirect_stream(name, table_words=64, iterations=8, seed=seed)


def make_session(tmp_path=None, **kwargs):
    """Build a Session from flat engine-ish kwargs via the policy objects
    (keeps these tests terse without exercising the deprecated shim)."""
    kwargs.setdefault("max_instructions", 2_000)
    execution = ExecutionPolicy(
        **{
            name: kwargs.pop(name)
            for name in (
                "jobs", "timeout", "retries", "hang_window", "fail_on_unhalted"
            )
            if name in kwargs
        }
    )
    cache_dir = kwargs.pop("cache_dir", None)
    cache = CachePolicy(
        enabled=bool(kwargs.pop("cache", False)),
        cache_dir=str(cache_dir) if cache_dir else None,
    )
    journal_path = kwargs.pop("journal", None)
    journal = JournalPolicy(
        path=str(journal_path) if journal_path else None,
        resume=kwargs.pop("resume", False),
    )
    return Session(execution=execution, cache=cache, journal=journal, **kwargs)


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy(max_retries=3)
        assert policy.delay("k", 2) == policy.delay("k", 2)

    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(
            max_retries=9, backoff_base=1.0, backoff_factor=2.0,
            backoff_max=4.0, jitter=0.0,
        )
        assert [policy.delay("k", n) for n in (2, 3, 4, 5)] == [1.0, 2.0, 4.0, 4.0]

    def test_jitter_is_bounded_and_key_dependent(self):
        policy = RetryPolicy(max_retries=1, backoff_base=1.0, jitter=0.1)
        delays = {policy.delay(f"key{i}", 2) for i in range(16)}
        assert all(0.9 <= d <= 1.1 for d in delays)
        assert len(delays) > 1, "different cells must not share one instant"

    def test_should_retry_respects_kind_and_budget(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.should_retry(FAILURE_CRASH, 1)
        assert policy.should_retry(FAILURE_TIMEOUT, 2)
        assert not policy.should_retry(FAILURE_CRASH, 3)  # budget spent
        assert not policy.should_retry(FAILURE_HANG, 1)  # deterministic kind
        assert not policy.should_retry(FAILURE_BUDGET, 1)

    def test_engine_coerces_int_retry(self):
        assert SweepEngine(retry=2).retry.max_retries == 2
        assert SweepEngine().retry.max_retries == 0


class TestFaultHarness:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("explode")

    def test_claim_counts_attempts(self, tmp_path):
        plan = FaultPlan({"w": FaultSpec("crash", times=2)}, state_dir=tmp_path)
        session = make_session()
        request = session.request(cell("w"), "Unsafe")
        spec = plan.lookup(request)
        assert [plan.claim(request, spec) for _ in range(3)] == [True, True, False]

    def test_specific_key_beats_workload_key(self, tmp_path):
        plan = FaultPlan(
            {"w": FaultSpec("crash"), "w/Hybrid": FaultSpec("slow", seconds=0.1)},
            state_dir=tmp_path,
        )
        session = make_session()
        assert plan.lookup(session.request(cell("w"), "Hybrid")).kind == "slow"
        assert plan.lookup(session.request(cell("w"), "Unsafe")).kind == "crash"
        assert plan.lookup(session.request(cell("other"), "Unsafe")) is None


class TestRetries:
    def test_flaky_cell_recovers_on_retry(self, tmp_path):
        plan = FaultPlan(
            {"flaky": FaultSpec("crash", times=1)}, state_dir=tmp_path
        )
        events = []
        session = make_session(retries=FAST_RETRY, observers=[events.append])
        with inject(plan):
            metrics = session.run(cell("flaky"), "Unsafe")
        assert isinstance(metrics, RunMetrics)
        kinds = [e.kind for e in events]
        assert kinds == ["queued", "started", "retrying", "started", "finished"]
        retrying = events[2]
        assert retrying.attempt == 2
        assert retrying.failure_kind == FAILURE_CRASH
        assert events[3].attempt == 2  # the re-dispatch carries the attempt
        assert events[-1].attempt == 2

    def test_persistent_crash_exhausts_attempts(self, tmp_path):
        plan = FaultPlan({"doomed": FaultSpec("crash")}, state_dir=tmp_path)
        session = make_session(retries=FAST_RETRY)
        with inject(plan):
            [outcome] = session.run_many([session.request(cell("doomed"), "Unsafe")])
        assert isinstance(outcome, RunFailure)
        assert outcome.kind == FAILURE_CRASH
        assert outcome.attempts == 2
        assert outcome.error_type == "InjectedCrash"

    def test_injected_crash_is_distinct(self, tmp_path):
        plan = FaultPlan({"w": FaultSpec("crash")}, state_dir=tmp_path)
        session = make_session()
        with inject(plan):
            [outcome] = session.run_many([session.request(cell("w"), "Unsafe")])
        assert InjectedCrash.__name__ in outcome.error_type

    def test_no_retries_by_default(self, tmp_path):
        plan = FaultPlan({"w": FaultSpec("crash", times=1)}, state_dir=tmp_path)
        session = make_session()
        with inject(plan):
            [outcome] = session.run_many([session.request(cell("w"), "Unsafe")])
        assert isinstance(outcome, RunFailure)
        assert outcome.attempts == 1


class TestHangClassification:
    def test_watchdog_hang_is_kind_hang_and_not_retried(self, monkeypatch):
        """A core wedged past its hang window must come back as a ``hang``
        failure whose message names the blocked ROB-head uop — and must not
        be retried (it would deterministically wedge again)."""
        from repro.pipeline import UnsafeProtection
        from repro.pipeline.protection import IssueDecision, LoadIssueAction

        class Wedged(UnsafeProtection):
            supports_fast_forward = False

            def load_issue_decision(self, uop):
                return IssueDecision(LoadIssueAction.DELAY)

        import repro.sim.api as api

        monkeypatch.setattr(api, "make_protection", lambda *a, **k: Wedged())
        events = []
        session = make_session(
            retries=FAST_RETRY, hang_window=2_000, observers=[events.append]
        )
        [outcome] = session.run_many([session.request(cell("wedged"), "Unsafe")])
        assert isinstance(outcome, RunFailure)
        assert outcome.kind == FAILURE_HANG
        assert outcome.attempts == 1, "hangs are deterministic: never retried"
        assert "ROB head" in outcome.message and "load" in outcome.message
        assert [e.kind for e in events] == ["queued", "started", "failed"]
        assert events[-1].failure_kind == FAILURE_HANG


@needs_fork
class TestTimeouts:
    def test_stuck_worker_is_killed_and_classified(self, tmp_path):
        plan = FaultPlan({"stuck": FaultSpec("hang")}, state_dir=tmp_path)
        events = []
        session = make_session(jobs=2, timeout=1.0, observers=[events.append])
        requests = [
            session.request(cell("ok"), "Unsafe"),
            session.request(cell("stuck", seed=2), "Unsafe"),
        ]
        with inject(plan):
            ok, stuck = session.run_many(requests)
        assert isinstance(ok, RunMetrics)
        assert isinstance(stuck, RunFailure)
        assert stuck.kind == FAILURE_TIMEOUT
        assert "1s wall-clock timeout" in stuck.message
        timed_out = [e for e in events if e.kind == "timed_out"]
        assert len(timed_out) == 1 and timed_out[0].index == 1

    def test_timeout_forces_a_killable_worker_with_jobs_1(self, tmp_path):
        """jobs=1 normally runs in-process, where nothing can be killed; a
        timeout must force the run into a worker process anyway."""
        plan = FaultPlan({"stuck": FaultSpec("hang")}, state_dir=tmp_path)
        session = make_session(jobs=1, timeout=1.0)
        with inject(plan):
            [outcome] = session.run_many([session.request(cell("stuck"), "Unsafe")])
        assert isinstance(outcome, RunFailure)
        assert outcome.kind == FAILURE_TIMEOUT

    def test_timed_out_cell_is_retried_then_settles(self, tmp_path):
        plan = FaultPlan({"stuck": FaultSpec("hang")}, state_dir=tmp_path)
        events = []
        session = make_session(
            jobs=1, timeout=0.5, retries=FAST_RETRY, observers=[events.append]
        )
        with inject(plan):
            [outcome] = session.run_many([session.request(cell("stuck"), "Unsafe")])
        assert outcome.kind == FAILURE_TIMEOUT
        assert outcome.attempts == 2
        assert [e.kind for e in events if e.kind == "timed_out"] == ["timed_out"] * 2

    def test_flaky_hang_recovers_after_timeout_retry(self, tmp_path):
        """A cell that hangs once and then behaves models a transient host
        problem — the timeout+retry pair must rescue it."""
        plan = FaultPlan(
            {"oncestuck": FaultSpec("hang", times=1)}, state_dir=tmp_path
        )
        session = make_session(jobs=1, timeout=1.0, retries=FAST_RETRY)
        with inject(plan):
            metrics = session.run(cell("oncestuck"), "Unsafe")
        assert isinstance(metrics, RunMetrics)


class TestBudgetClassification:
    def test_unhalted_run_is_metrics_by_default(self):
        import dataclasses

        capped = dataclasses.replace(cell("capped"), max_cycles=40)
        session = make_session()
        metrics = session.run(capped, "Unsafe")
        assert isinstance(metrics, RunMetrics)
        assert metrics.termination == "max_cycles"
        assert not metrics.halted

    def test_fail_on_unhalted_classifies_budget_exhaustion(self):
        import dataclasses

        capped = dataclasses.replace(cell("capped"), max_cycles=40)
        events = []
        session = make_session(fail_on_unhalted=True, observers=[events.append])
        [outcome] = session.run_many([session.request(capped, "Unsafe")])
        assert isinstance(outcome, RunFailure)
        assert outcome.kind == FAILURE_BUDGET
        assert "max_cycles" in outcome.message
        assert events[-1].failure_kind == FAILURE_BUDGET


class TestCancellation:
    def test_serial_keyboard_interrupt_cancels_remaining(self, monkeypatch):
        import repro.sim.engine as engine_mod

        real_execute = engine_mod.execute

        def interrupting(request):
            if request.workload.name == "second":
                raise KeyboardInterrupt
            return real_execute(request)

        monkeypatch.setattr(engine_mod, "execute", interrupting)
        events = []
        session = make_session(observers=[events.append])
        requests = [
            session.request(cell(name), "Unsafe")
            for name in ("first", "second", "third")
        ]
        outcomes = session.run_many(requests)
        assert isinstance(outcomes[0], RunMetrics)
        assert [o.kind for o in outcomes[1:]] == [FAILURE_CANCELLED] * 2
        assert [e.index for e in events if e.kind == "cancelled"] == [1, 2]

    @needs_fork
    def test_sigint_cancels_pending_and_drains_running(self, tmp_path):
        """First SIGINT: pending cells are cancelled, the two runs already
        on workers drain to completion, partial results keep request order,
        and the journal lets a resumed sweep skip the finished cells."""
        plan = FaultPlan(
            {f"slow{i}": FaultSpec("slow", seconds=1.0) for i in range(6)},
            state_dir=tmp_path / "faults",
        )
        journal_path = tmp_path / "sweep.journal"
        session = make_session(
            jobs=2, journal=journal_path, observers=[]
        )
        requests = [
            session.request(cell(f"slow{i}", seed=i + 1), "Unsafe")
            for i in range(6)
        ]
        timer = threading.Timer(
            0.4, lambda: os.kill(os.getpid(), signal.SIGINT)
        )
        timer.start()
        try:
            with inject(plan):
                outcomes = session.run_many(requests)
        finally:
            timer.cancel()
            session.close()
        assert len(outcomes) == 6
        assert [o.workload for o in outcomes] == [f"slow{i}" for i in range(6)]
        finished = [o for o in outcomes if isinstance(o, RunMetrics)]
        cancelled = [
            o for o in outcomes
            if isinstance(o, RunFailure) and o.kind == FAILURE_CANCELLED
        ]
        assert len(finished) == 2, "the two in-flight runs must drain"
        assert len(cancelled) == 4, "every pending cell must be cancelled"

        # Resume: only the cancelled cells execute; finished ones replay
        # from the journal without touching a worker.
        events = []
        resumed = make_session(
            journal=journal_path, resume=True, observers=[events.append]
        )
        try:
            outcomes2 = resumed.run_many(requests)
        finally:
            resumed.close()
        assert all(isinstance(o, RunMetrics) for o in outcomes2)
        started = {e.index for e in events if e.kind == "started"}
        replayed = {e.index for e in events if e.kind == "cache_hit"}
        cancelled_indices = {
            i for i, o in enumerate(outcomes) if isinstance(o, RunFailure)
        }
        assert started == cancelled_indices, (
            "resume must re-execute exactly the cells that never ran"
        )
        assert replayed == set(range(6)) - cancelled_indices


class TestResume:
    def test_resume_replays_metrics_and_failures_without_executing(
        self, tmp_path, monkeypatch
    ):
        plan = FaultPlan({"bad": FaultSpec("crash")}, state_dir=tmp_path / "f")
        journal_path = tmp_path / "sweep.journal"
        session = make_session(journal=journal_path)
        requests = [
            session.request(cell(name, seed=i + 1), "Unsafe")
            for i, name in enumerate(("a", "bad", "c"))
        ]
        with inject(plan):
            first = session.run_many(requests)
        session.close()
        assert isinstance(first[1], RunFailure)

        import repro.sim.engine as engine_mod

        def must_not_run(_request):
            raise AssertionError("resume must not re-execute journalled cells")

        monkeypatch.setattr(engine_mod, "execute", must_not_run)
        resumed = make_session(journal=journal_path, resume=True)
        second = resumed.run_many(requests)
        resumed.close()
        assert [type(o) for o in second] == [type(o) for o in first]
        assert second[1].kind == first[1].kind == FAILURE_CRASH
        assert second[0].cycles == first[0].cycles

    def test_resume_without_journal_rejected(self):
        with pytest.raises(ValueError):
            JournalPolicy(resume=True)

    def test_journal_records_cache_hits_too(self, tmp_path):
        """A cell served by the result cache still lands in the journal, so
        a later --resume with no cache configured stays complete."""
        journal_path = tmp_path / "sweep.journal"
        warm = make_session(cache=True, cache_dir=tmp_path / "cache")
        request = warm.request(cell("w"), "Unsafe")
        warm.run(request)
        journalled = make_session(
            cache=True, cache_dir=tmp_path / "cache", journal=journal_path
        )
        journalled.run(request)
        journalled.close()
        from repro.sim.cache import SweepJournal

        journal = SweepJournal(journal_path)
        assert journal.load() == 1


@needs_fork
class TestAcceptanceSweep:
    def test_twenty_cell_fault_injected_sweep(self, tmp_path, monkeypatch):
        """The ISSUE's acceptance scenario: a 20-cell sweep with injected
        crashes, a flaky cell, a wedged core, a stuck worker, and a slow
        cell returns a complete outcome list in request order with every
        failure correctly classified."""
        from repro.pipeline import UnsafeProtection
        from repro.pipeline.protection import IssueDecision, LoadIssueAction

        class Wedged(UnsafeProtection):
            supports_fast_forward = False

            def load_issue_decision(self, uop):
                return IssueDecision(LoadIssueAction.DELAY)

        import repro.sim.api as api

        real_make_protection = api.make_protection

        def selective(config, attack_model, **kwargs):
            if config.name == "STT{ld}":  # only the wedged cell uses it
                return Wedged()
            return real_make_protection(config, attack_model, **kwargs)

        monkeypatch.setattr(api, "make_protection", selective)

        plan = FaultPlan(
            {
                "cell03": FaultSpec("crash"),  # crashes every attempt
                "cell07": FaultSpec("crash", times=1),  # flaky: recovers
                "cell11": FaultSpec("hang"),  # stuck worker, killed
                "cell15": FaultSpec("slow", seconds=0.3),  # slow but fine
            },
            state_dir=tmp_path / "faults",
        )
        events = []
        session = make_session(
            jobs=4,
            timeout=2.0,
            retries=RetryPolicy(max_retries=1, backoff_base=0.05),
            journal=tmp_path / "sweep.journal",
            hang_window=2_000,
            observers=[events.append],
        )
        requests = [
            session.request(
                cell(f"cell{i:02d}", seed=i + 1),
                "STT{ld}" if i == 5 else "Unsafe",
            )
            for i in range(20)
        ]
        with inject(plan):
            outcomes = session.run_many(requests)
        session.close()

        assert len(outcomes) == 20
        assert [o.workload for o in outcomes] == [f"cell{i:02d}" for i in range(20)]

        failures = {
            i: o for i, o in enumerate(outcomes) if isinstance(o, RunFailure)
        }
        assert set(failures) == {3, 5, 11}
        assert failures[3].kind == FAILURE_CRASH
        assert failures[3].attempts == 2  # retried once, still crashed
        assert failures[5].kind == FAILURE_HANG
        assert failures[5].attempts == 1  # hangs are never retried
        assert "ROB head" in failures[5].message
        assert failures[11].kind == FAILURE_TIMEOUT
        assert failures[11].attempts == 2  # timeout is transient: retried

        for i, outcome in enumerate(outcomes):
            if i not in failures:
                assert isinstance(outcome, RunMetrics), f"cell{i:02d}"
                assert outcome.halted, f"cell{i:02d}"

        terminal = [e for e in events if e.kind in TERMINAL_EVENTS]
        assert sorted(e.index for e in terminal) == list(range(20)), (
            "every cell must reach exactly one terminal event"
        )

        from repro.sim.cache import SweepJournal

        journal = SweepJournal(tmp_path / "sweep.journal")
        assert journal.load() == 20, "all terminal outcomes are journalled"
