"""Tests for the Table II configurations and the run harness."""

import pytest

from repro.baselines import (
    DelayOnMissProtection,
    FenceProtection,
    SpecBoxProtection,
)
from repro.common.config import AttackModel, PredictorKind, ProtectionKind
from repro.core.protection import SdoProtection
from repro.pipeline.protection import UnsafeProtection
from repro.sim import (
    EVALUATED_CONFIGS,
    SDO_CONFIG_NAMES,
    CachePolicy,
    Session,
    config_by_name,
    make_protection,
)
from repro.stt.protection import SttProtection
from repro.workloads import make_indirect_stream

WORKLOAD = make_indirect_stream("unit", table_words=512, iterations=60, seed=4)
SESSION = Session(cache=CachePolicy(enabled=False))


class TestConfigs:
    def test_table2_plus_baselines_row_count(self):
        # The paper's eight Table II rows plus the three competing baselines
        # (SpecBox, DelayOnMiss, Fence).
        assert len(EVALUATED_CONFIGS) == 11

    def test_lookup(self):
        assert config_by_name("Hybrid").predictor is PredictorKind.HYBRID
        with pytest.raises(KeyError):
            config_by_name("bogus")

    def test_sdo_names_subset(self):
        names = {c.name for c in EVALUATED_CONFIGS}
        assert set(SDO_CONFIG_NAMES) <= names

    def test_make_protection_types(self):
        assert isinstance(
            make_protection(config_by_name("Unsafe"), AttackModel.SPECTRE),
            UnsafeProtection,
        )
        stt = make_protection(config_by_name("STT{ld+fp}"), AttackModel.FUTURISTIC)
        assert isinstance(stt, SttProtection)
        assert stt.fp_transmitters
        sdo = make_protection(config_by_name("Static L3"), AttackModel.SPECTRE)
        assert isinstance(sdo, SdoProtection)
        specbox = make_protection(config_by_name("SpecBox"), AttackModel.SPECTRE)
        assert isinstance(specbox, SpecBoxProtection)
        dom = make_protection(config_by_name("DelayOnMiss"), AttackModel.FUTURISTIC)
        assert isinstance(dom, DelayOnMissProtection)
        fence = make_protection(config_by_name("Fence"), AttackModel.SPECTRE)
        assert isinstance(fence, FenceProtection)
        # No competing baseline gates FP transmitters.
        assert not specbox.fp_transmitters
        assert not dom.fp_transmitters
        assert not fence.fp_transmitters

    def test_all_sdo_configs_protect_fp(self):
        """Section VIII-A: all SDO configurations protect subnormal FP
        inputs via the static Obl-FP prediction."""
        for name in SDO_CONFIG_NAMES:
            assert config_by_name(name).fp_transmitters

    def test_protection_config_roundtrip(self):
        config = config_by_name("Hybrid")
        protection_config = config.protection_config(AttackModel.FUTURISTIC)
        assert protection_config.kind is ProtectionKind.STT_SDO
        assert protection_config.attack_model is AttackModel.FUTURISTIC


class TestRunner:
    def test_run_returns_metrics(self):
        metrics = SESSION.run(WORKLOAD, "Unsafe")
        assert metrics.cycles > 0
        assert metrics.instructions > 100
        assert 0 < metrics.ipc < 8
        assert metrics.workload == "unit"
        assert metrics.config == "Unsafe"

    def test_normalization(self):
        base = SESSION.run(WORKLOAD, "Unsafe")
        assert base.normalized_to(base) == pytest.approx(1.0)
        stt = SESSION.run(WORKLOAD, "STT{ld}")
        assert stt.normalized_to(base) >= 0.9

    def test_fresh_machine_per_run(self):
        """Two identical runs must produce identical results (no state
        leakage between configurations)."""
        a = SESSION.run(WORKLOAD, "Hybrid")
        b = SESSION.run(WORKLOAD, "Hybrid")
        assert a.cycles == b.cycles
        assert a.stats == b.stats

    def test_sweep_covers_grid(self):
        results = SESSION.sweep(
            [WORKLOAD],
            configs=[config_by_name("Unsafe"), config_by_name("Hybrid")],
            attack_models=(AttackModel.SPECTRE,),
        )
        assert len(results) == 2
        assert {r.config for r in results} == {"Unsafe", "Hybrid"}

    def test_squash_metric(self):
        metrics = SESSION.run(WORKLOAD, "Static L1")
        assert metrics.squashes >= 0

    def test_predictor_metrics_only_for_sdo(self):
        stt = SESSION.run(WORKLOAD, "STT{ld}")
        assert stt.predictor_precision == 0.0
        sdo = SESSION.run(WORKLOAD, "Perfect")
        if sdo.stats.get("stt.sdo.predictions", 0):
            assert sdo.predictor_precision == pytest.approx(1.0)
