"""Tests for the content-addressed on-disk result cache."""

import dataclasses
import json


from repro.common.config import AttackModel, MachineConfig
from repro.sim.api import RunMetrics, RunRequest
from repro.sim.cache import ResultCache, cache_key
from repro.sim.configs import config_by_name
from repro.workloads import make_indirect_stream
from repro.workloads.workload import Workload


def make_workload(name="cache_unit", **overrides):
    params = dict(table_words=512, iterations=60, seed=4)
    params.update(overrides)
    return make_indirect_stream(name, **params)


def make_request(**overrides) -> RunRequest:
    params = dict(
        workload=make_workload(),
        config=config_by_name("Hybrid"),
        attack_model=AttackModel.SPECTRE,
        machine=MachineConfig(),
        check_golden=True,
        max_instructions=200_000,
    )
    params.update(overrides)
    return RunRequest(**params)


def metrics_for(request: RunRequest, cycles=1234) -> RunMetrics:
    return RunMetrics(
        workload=request.workload.name,
        config=request.config.name,
        attack_model=request.attack_model,
        cycles=cycles,
        instructions=777,
        stats={"stt.sdo.predictions": 10, "core.obl_fail_squashes": 2.0},
    )


class TestCacheKey:
    def test_same_inputs_same_key(self):
        assert cache_key(make_request()) == cache_key(make_request())

    def test_key_is_hex_sha256(self):
        key = cache_key(make_request())
        assert len(key) == 64
        int(key, 16)  # must parse as hex

    def test_workload_name_and_description_excluded(self):
        """Content-addressed: a renamed but identical workload hits."""
        renamed = make_workload(name="something_else")
        assert cache_key(make_request()) == cache_key(make_request(workload=renamed))

    def test_any_field_change_changes_key(self):
        base = cache_key(make_request())
        variations = {
            "config": make_request(config=config_by_name("Perfect")),
            "attack_model": make_request(attack_model=AttackModel.FUTURISTIC),
            "check_golden": make_request(check_golden=False),
            "max_instructions": make_request(max_instructions=100_000),
            "program": make_request(workload=make_workload(iterations=61)),
            "warm_set": make_request(
                workload=dataclasses.replace(
                    make_workload(), warm_addresses=(0x1000,)
                )
            ),
            "max_cycles": make_request(
                workload=dataclasses.replace(make_workload(), max_cycles=999_999)
            ),
            "machine": make_request(
                machine=dataclasses.replace(
                    MachineConfig(),
                    core=dataclasses.replace(MachineConfig().core, rob_entries=64),
                )
            ),
        }
        keys = {field: cache_key(request) for field, request in variations.items()}
        for field, key in keys.items():
            assert key != base, f"changing {field} must change the key"
        assert len(set(keys.values())) == len(keys), "variations must not collide"

    def test_instruction_labels_excluded(self):
        """Labels are compare=False metadata and must not affect the key."""
        workload = make_workload()
        relabeled_program = dataclasses.replace(
            workload.program,
            instructions=[
                dataclasses.replace(inst, label="x") for inst in workload.program.instructions
            ],
        )
        relabeled = Workload(
            workload.name, relabeled_program,
            warm_addresses=workload.warm_addresses, max_cycles=workload.max_cycles,
        )
        assert cache_key(make_request()) == cache_key(make_request(workload=relabeled))


class TestResultCache:
    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(make_request()) is None
        assert len(cache) == 0

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = make_request()
        stored = metrics_for(request)
        cache.put(request, stored)
        assert len(cache) == 1
        assert request in cache
        loaded = cache.get(request)
        assert loaded == stored
        assert loaded.stats == stored.stats

    def test_hit_rebrands_to_request_identity(self, tmp_path):
        """A renamed identical workload hits, with the new name stamped on."""
        cache = ResultCache(tmp_path)
        request = make_request()
        cache.put(request, metrics_for(request))
        renamed = make_request(workload=make_workload(name="other_name"))
        loaded = cache.get(renamed)
        assert loaded is not None
        assert loaded.workload == "other_name"
        assert loaded.cycles == 1234

    def test_different_config_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = make_request()
        cache.put(request, metrics_for(request))
        assert cache.get(make_request(config=config_by_name("Perfect"))) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = make_request()
        cache.put(request, metrics_for(request))
        path = cache.path_for(cache_key(request))
        path.write_text("{not json")
        assert cache.get(request) is None

    def test_wrong_key_in_payload_is_a_miss(self, tmp_path):
        """A file landing under the wrong name must not be trusted."""
        cache = ResultCache(tmp_path)
        request = make_request()
        cache.put(request, metrics_for(request))
        path = cache.path_for(cache_key(request))
        payload = json.loads(path.read_text())
        payload["key"] = "0" * 64
        path.write_text(json.dumps(payload))
        assert cache.get(request) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = make_request()
        cache.put(request, metrics_for(request))
        assert cache.clear() == 1
        assert cache.get(request) is None
        assert len(cache) == 0

    def test_metrics_roundtrip_preserves_numbers_exactly(self, tmp_path):
        """The JSON round trip must not perturb cycles/stats (byte-identical
        figure output on cache hits depends on this)."""
        cache = ResultCache(tmp_path)
        request = make_request()
        stored = RunMetrics(
            workload=request.workload.name,
            config=request.config.name,
            attack_model=request.attack_model,
            cycles=987654321,
            instructions=123456,
            stats={"a": 0.1 + 0.2, "b": 3, "c": 1e-17},
        )
        cache.put(request, stored)
        assert cache.get(request) == stored
