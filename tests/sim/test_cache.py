"""Tests for the content-addressed on-disk result cache and the sweep
journal that makes interrupted sweeps resumable."""

import dataclasses
import json
import multiprocessing

import pytest

from repro.common.config import AttackModel, MachineConfig
from repro.sim.api import FAILURE_CANCELLED, RunFailure, RunMetrics, RunRequest
from repro.sim.cache import ResultCache, SweepJournal, cache_key
from repro.sim.configs import config_by_name
from repro.workloads import make_indirect_stream
from repro.workloads.workload import Workload


def make_workload(name="cache_unit", **overrides):
    params = dict(table_words=512, iterations=60, seed=4)
    params.update(overrides)
    return make_indirect_stream(name, **params)


def make_request(**overrides) -> RunRequest:
    params = dict(
        workload=make_workload(),
        config=config_by_name("Hybrid"),
        attack_model=AttackModel.SPECTRE,
        machine=MachineConfig(),
        check_golden=True,
        max_instructions=200_000,
    )
    params.update(overrides)
    return RunRequest(**params)


def metrics_for(request: RunRequest, cycles=1234) -> RunMetrics:
    return RunMetrics(
        workload=request.workload.name,
        config=request.config.name,
        attack_model=request.attack_model,
        cycles=cycles,
        instructions=777,
        stats={"stt.sdo.predictions": 10, "core.obl_fail_squashes": 2.0},
    )


class TestCacheKey:
    def test_same_inputs_same_key(self):
        assert cache_key(make_request()) == cache_key(make_request())

    def test_key_is_hex_sha256(self):
        key = cache_key(make_request())
        assert len(key) == 64
        int(key, 16)  # must parse as hex

    def test_workload_name_and_description_excluded(self):
        """Content-addressed: a renamed but identical workload hits."""
        renamed = make_workload(name="something_else")
        assert cache_key(make_request()) == cache_key(make_request(workload=renamed))

    def test_any_field_change_changes_key(self):
        base = cache_key(make_request())
        variations = {
            "config": make_request(config=config_by_name("Perfect")),
            "attack_model": make_request(attack_model=AttackModel.FUTURISTIC),
            "check_golden": make_request(check_golden=False),
            "max_instructions": make_request(max_instructions=100_000),
            "program": make_request(workload=make_workload(iterations=61)),
            "warm_set": make_request(
                workload=dataclasses.replace(
                    make_workload(), warm_addresses=(0x1000,)
                )
            ),
            "max_cycles": make_request(
                workload=dataclasses.replace(make_workload(), max_cycles=999_999)
            ),
            "machine": make_request(
                machine=dataclasses.replace(
                    MachineConfig(),
                    core=dataclasses.replace(MachineConfig().core, rob_entries=64),
                )
            ),
        }
        keys = {field: cache_key(request) for field, request in variations.items()}
        for field, key in keys.items():
            assert key != base, f"changing {field} must change the key"
        assert len(set(keys.values())) == len(keys), "variations must not collide"

    def test_instruction_labels_excluded(self):
        """Labels are compare=False metadata and must not affect the key."""
        workload = make_workload()
        relabeled_program = dataclasses.replace(
            workload.program,
            instructions=[
                dataclasses.replace(inst, label="x") for inst in workload.program.instructions
            ],
        )
        relabeled = Workload(
            workload.name, relabeled_program,
            warm_addresses=workload.warm_addresses, max_cycles=workload.max_cycles,
        )
        assert cache_key(make_request()) == cache_key(make_request(workload=relabeled))


class TestResultCache:
    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(make_request()) is None
        assert len(cache) == 0

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = make_request()
        stored = metrics_for(request)
        cache.put(request, stored)
        assert len(cache) == 1
        assert request in cache
        loaded = cache.get(request)
        assert loaded == stored
        assert loaded.stats == stored.stats

    def test_hit_rebrands_to_request_identity(self, tmp_path):
        """A renamed identical workload hits, with the new name stamped on."""
        cache = ResultCache(tmp_path)
        request = make_request()
        cache.put(request, metrics_for(request))
        renamed = make_request(workload=make_workload(name="other_name"))
        loaded = cache.get(renamed)
        assert loaded is not None
        assert loaded.workload == "other_name"
        assert loaded.cycles == 1234

    def test_different_config_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = make_request()
        cache.put(request, metrics_for(request))
        assert cache.get(make_request(config=config_by_name("Perfect"))) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = make_request()
        cache.put(request, metrics_for(request))
        path = cache.path_for(cache_key(request))
        path.write_text("{not json")
        assert cache.get(request) is None

    def test_wrong_key_in_payload_is_a_miss(self, tmp_path):
        """A file landing under the wrong name must not be trusted."""
        cache = ResultCache(tmp_path)
        request = make_request()
        cache.put(request, metrics_for(request))
        path = cache.path_for(cache_key(request))
        payload = json.loads(path.read_text())
        payload["key"] = "0" * 64
        path.write_text(json.dumps(payload))
        assert cache.get(request) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = make_request()
        cache.put(request, metrics_for(request))
        assert cache.clear() == 1
        assert cache.get(request) is None
        assert len(cache) == 0

    def test_metrics_roundtrip_preserves_numbers_exactly(self, tmp_path):
        """The JSON round trip must not perturb cycles/stats (byte-identical
        figure output on cache hits depends on this)."""
        cache = ResultCache(tmp_path)
        request = make_request()
        stored = RunMetrics(
            workload=request.workload.name,
            config=request.config.name,
            attack_model=request.attack_model,
            cycles=987654321,
            instructions=123456,
            stats={"a": 0.1 + 0.2, "b": 3, "c": 1e-17},
        )
        cache.put(request, stored)
        assert cache.get(request) == stored


class TestConcurrentWriters:
    def test_put_stages_tempfile_next_to_the_entry(self, tmp_path, monkeypatch):
        """Atomicity of ``put`` rests on ``os.replace``, which is only
        atomic within one filesystem — so the tempfile must be created in
        the entry's own directory, never in some global /tmp."""
        import tempfile as tempfile_module

        seen_dirs = []
        real_mkstemp = tempfile_module.mkstemp

        def spying_mkstemp(*args, **kwargs):
            seen_dirs.append(kwargs.get("dir"))
            return real_mkstemp(*args, **kwargs)

        monkeypatch.setattr(tempfile_module, "mkstemp", spying_mkstemp)
        cache = ResultCache(tmp_path)
        request = make_request()
        path = cache.put(request, metrics_for(request))
        assert seen_dirs == [path.parent]

    def test_racing_writers_never_produce_a_torn_entry(self, tmp_path):
        """Two processes hammering the same key: every read observes either
        a miss or one writer's complete entry, never a mixture."""
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("stress test forks writer processes")
        ctx = multiprocessing.get_context("fork")
        cache = ResultCache(tmp_path)
        request = make_request()
        rounds = 50

        def hammer(cycles_value):
            for _ in range(rounds):
                cache.put(request, metrics_for(request, cycles=cycles_value))

        writers = [
            ctx.Process(target=hammer, args=(cycles,)) for cycles in (111, 222)
        ]
        for writer in writers:
            writer.start()
        valid_cycles = {111, 222}
        observed = set()
        try:
            while any(w.is_alive() for w in writers):
                loaded = cache.get(request)
                if loaded is not None:
                    assert loaded.cycles in valid_cycles, "torn cache entry"
                    observed.add(loaded.cycles)
        finally:
            for writer in writers:
                writer.join(timeout=30)
        assert all(w.exitcode == 0 for w in writers)
        final = cache.get(request)
        assert final is not None and final.cycles in valid_cycles
        assert len(cache) == 1, "one key must map to exactly one entry file"


def failure_for(request: RunRequest, kind="crash") -> RunFailure:
    return RunFailure(
        workload=request.workload.name,
        config=request.config.name,
        attack_model=request.attack_model,
        error_type="RuntimeError",
        message="boom",
        traceback="Traceback...\n",
        kind=kind,
        attempts=2,
    )


class TestSweepJournal:
    def test_round_trip_metrics_and_failures(self, tmp_path):
        path = tmp_path / "sweep.journal"
        request = make_request()
        metrics = metrics_for(request)
        failure = failure_for(request)
        with SweepJournal(path) as journal:
            journal.record("key-metrics", metrics)
            journal.record("key-failure", failure)
        loaded = SweepJournal(path)
        assert loaded.load() == 2
        assert loaded.get("key-metrics") == metrics
        assert loaded.get("key-failure") == failure
        assert loaded.get("missing") is None

    def test_record_is_idempotent_per_key(self, tmp_path):
        path = tmp_path / "sweep.journal"
        request = make_request()
        with SweepJournal(path) as journal:
            journal.record("k", metrics_for(request, cycles=1))
            journal.record("k", metrics_for(request, cycles=2))
        assert len(path.read_text().splitlines()) == 1
        loaded = SweepJournal(path)
        loaded.load()
        assert loaded.get("k").cycles == 1

    def test_cancelled_outcomes_are_never_journalled(self, tmp_path):
        """A cancelled cell never ran — journalling it would make --resume
        skip work that still needs doing."""
        path = tmp_path / "sweep.journal"
        request = make_request()
        with SweepJournal(path) as journal:
            journal.record("k", failure_for(request, kind=FAILURE_CANCELLED))
        assert not path.exists()
        assert SweepJournal(path).load() == 0

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        """A crash mid-write leaves a truncated last line; resume must keep
        every complete record and silently drop the torn one."""
        path = tmp_path / "sweep.journal"
        request = make_request()
        with SweepJournal(path) as journal:
            journal.record("good", metrics_for(request))
        with path.open("a") as fh:
            fh.write('{"key": "torn", "kind": "metr')  # crash mid-write
        loaded = SweepJournal(path)
        assert loaded.load() == 1
        assert loaded.get("good") is not None
        assert loaded.get("torn") is None

    def test_load_missing_file_is_empty(self, tmp_path):
        journal = SweepJournal(tmp_path / "nope.journal")
        assert journal.load() == 0
        assert len(journal) == 0

    def test_resumed_journal_appends(self, tmp_path):
        """Loading then recording must append to the existing file, not
        truncate it — that is the whole point of the journal."""
        path = tmp_path / "sweep.journal"
        request = make_request()
        with SweepJournal(path) as journal:
            journal.record("first", metrics_for(request, cycles=1))
        resumed = SweepJournal(path)
        resumed.load()
        resumed.record("second", metrics_for(request, cycles=2))
        resumed.close()
        final = SweepJournal(path)
        assert final.load() == 2
