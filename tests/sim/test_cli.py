"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out and "Table II" in out
    assert "mcf_like" in out


def test_run_command(capsys):
    assert main(["run", "exchange2_like", "Unsafe", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out


def test_run_sdo_prints_predictor_stats(capsys):
    assert main(["run", "deepsjeng_like", "Hybrid", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "precision" in out


def test_run_uses_cache_dir(capsys, tmp_path):
    args = ["run", "exchange2_like", "Unsafe", "--cache-dir", str(tmp_path)]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert any(tmp_path.rglob("*.json")), "run should populate the cache"
    assert main(args) == 0
    assert capsys.readouterr().out == first


def test_run_with_trace_and_profile(capsys, tmp_path):
    base = tmp_path / "trace"
    assert main([
        "run", "exchange2_like", "Unsafe", "--no-cache",
        "--trace", str(base), "--trace-format", "both", "--profile",
    ]) == 0
    out = capsys.readouterr().out
    assert "stall attribution" in out
    assert "host-side profile" in out
    jsonl = tmp_path / "trace.jsonl"
    konata = tmp_path / "trace.konata"
    assert jsonl.exists() and konata.exists()
    assert konata.read_text().startswith("Kanata\t0004")
    summary = json.loads(jsonl.read_text().splitlines()[-1])
    assert summary["kind"] == "summary"


def test_traced_run_bypasses_cache(capsys, tmp_path):
    cache_dir = tmp_path / "cache"
    # Populate the cache with an uninstrumented run...
    assert main(["run", "exchange2_like", "Unsafe",
                 "--cache-dir", str(cache_dir)]) == 0
    capsys.readouterr()
    # ...then a traced run must still produce the trace (no cache hit) and
    # must not disturb the cached entry.
    entries_before = sorted(p.name for p in cache_dir.rglob("*.json"))
    trace = tmp_path / "run.trace.jsonl"
    assert main(["run", "exchange2_like", "Unsafe",
                 "--cache-dir", str(cache_dir), "--trace", str(trace)]) == 0
    assert trace.exists()
    assert sorted(p.name for p in cache_dir.rglob("*.json")) == entries_before


def test_spectre_command(capsys):
    assert main(["spectre", "--secret", "3"]) == 0
    out = capsys.readouterr().out
    assert "LEAKED" in out      # the Unsafe row
    assert "blocked" in out     # every protected row


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_unknown_workload_raises():
    with pytest.raises(KeyError):
        main(["run", "nope", "Unsafe", "--no-cache"])


def test_unknown_config_suggests_close_match():
    with pytest.raises(KeyError, match="did you mean 'Hybrid'"):
        main(["run", "exchange2_like", "hybird", "--no-cache"])


def test_sweep_command(capsys, tmp_path):
    events = tmp_path / "sweep.events.jsonl"
    out_dir = tmp_path / "csv"
    assert main([
        "sweep",
        "--workloads", "exchange2_like",
        "--configs", "STT{ld},Hybrid",
        "--models", "spectre",
        "--scale", "0.05",
        "--cache-dir", str(tmp_path / "cache"),
        "--events", str(events),
        "--out", str(out_dir),
    ]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "Figure 7" in out  # Hybrid is an SDO config
    assert (out_dir / "figure6_spectre.csv").exists()
    records = [json.loads(line) for line in events.read_text().splitlines()]
    # 3 configs (Unsafe auto-inserted) x 1 workload x 1 model, 3 events each
    kinds = [r["kind"] for r in records]
    assert kinds.count("queued") == 3
    assert kinds.count("finished") == 3


def test_sweep_unknown_workload_rejected(tmp_path):
    with pytest.raises(KeyError, match="unknown workloads"):
        main([
            "sweep", "--workloads", "nope", "--scale", "0.05",
            "--cache-dir", str(tmp_path),
        ])
