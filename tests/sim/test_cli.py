"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out and "Table II" in out
    assert "mcf_like" in out


def test_run_command(capsys):
    assert main(["run", "exchange2_like", "Unsafe"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out


def test_run_sdo_prints_predictor_stats(capsys):
    assert main(["run", "deepsjeng_like", "Hybrid"]) == 0
    out = capsys.readouterr().out
    assert "precision" in out


def test_spectre_command(capsys):
    assert main(["spectre", "--secret", "3"]) == 0
    out = capsys.readouterr().out
    assert "LEAKED" in out      # the Unsafe row
    assert "blocked" in out     # every protected row


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_unknown_workload_raises():
    with pytest.raises(KeyError):
        main(["run", "nope", "Unsafe"])
