"""Property-style wire round-trip tests.

Everything the fabric ships between hosts — requests, outcomes, events,
policies — must survive ``to_dict → json.dumps → json.loads → from_dict``
exactly.  Instead of a handful of hand-picked examples, these tests
generate a few dozen randomized-but-seeded instances per type and assert
the round trip is the identity on every one; a field that serializes
lossily (enum vs. string, tuple vs. list, dropped default) fails loudly
here before it can desync a scheduler from its workers.
"""

import json
import random

import pytest

from repro.common.config import AttackModel, MachineConfig
from repro.fabric.wire import (
    WIRE_SCHEMA_VERSION,
    WireError,
    check_schema,
    decode_outcome,
    encode_outcome,
    envelope,
)
from repro.sim.api import (
    FAILURE_KINDS,
    Instrumentation,
    RunFailure,
    RunMetrics,
    RunRequest,
)
from repro.sim.configs import EVALUATED_CONFIGS
from repro.sim.engine import RetryPolicy
from repro.sim.events import EVENT_SCHEMA_VERSION, RunEvent
from repro.sim.policies import CachePolicy, ExecutionPolicy, JournalPolicy
from repro.workloads import make_indirect_stream, make_pointer_chase

CASES = 25


def wire_trip(payload):
    """The exact bytes-level path a fabric message takes."""
    return json.loads(json.dumps(payload))


def make_rng(seed):
    return random.Random(0x5D0 ^ seed)


def random_workload(rng):
    maker = rng.choice([make_indirect_stream, make_pointer_chase])
    if maker is make_indirect_stream:
        return maker(
            f"wl-{rng.randrange(1 << 16):04x}",
            table_words=rng.choice([32, 64, 128]),
            iterations=rng.randrange(4, 64),
            branch_taken_prob=rng.choice([0.25, 0.5, 0.75]),
            seed=rng.randrange(1 << 30),
        )
    return maker(
        f"wl-{rng.randrange(1 << 16):04x}",
        nodes=rng.choice([16, 32, 64]),
        iterations=rng.randrange(4, 64),
        seed=rng.randrange(1 << 30),
    )


def random_request(rng):
    return RunRequest(
        workload=random_workload(rng),
        config=rng.choice(EVALUATED_CONFIGS),
        attack_model=rng.choice(list(AttackModel)),
        machine=MachineConfig(),
        check_golden=rng.random() < 0.5,
        max_instructions=rng.randrange(1_000, 1_000_000),
        instrumentation=(
            Instrumentation(profile=True) if rng.random() < 0.3 else None
        ),
        hang_window=rng.choice([None, 10_000, 250_000]),
    )


def random_metrics(rng):
    return RunMetrics(
        workload=f"wl-{rng.randrange(1 << 16):04x}",
        config=rng.choice(EVALUATED_CONFIGS).name,
        attack_model=rng.choice(list(AttackModel)),
        cycles=rng.randrange(1, 1 << 31),
        instructions=rng.randrange(1, 1 << 31),
        stats={
            f"stat.{i}": rng.choice([rng.randrange(1 << 20), rng.random()])
            for i in range(rng.randrange(0, 8))
        },
        termination=rng.choice(["halted", "max_cycles", "max_instructions"]),
    )


def random_failure(rng):
    return RunFailure(
        workload=f"wl-{rng.randrange(1 << 16):04x}",
        config=rng.choice(EVALUATED_CONFIGS).name,
        attack_model=rng.choice(list(AttackModel)),
        error_type=rng.choice(["RuntimeError", "SimulationHang", "WorkerLost"]),
        message=f"boom {rng.randrange(1 << 20)}",
        traceback="Traceback (most recent call last):\n  ...\n",
        kind=rng.choice(sorted(FAILURE_KINDS)),
        attempts=rng.randrange(1, 5),
    )


def random_event(rng):
    kind = rng.choice(["queued", "started", "finished", "failed", "retrying"])
    return RunEvent(
        kind=kind,
        index=rng.randrange(0, 64),
        workload=f"wl-{rng.randrange(1 << 16):04x}",
        config=rng.choice(EVALUATED_CONFIGS).name,
        model=rng.choice(list(AttackModel)).value,
        wall_time=rng.choice([None, round(rng.random() * 100, 6)]),
        cycles=rng.choice([None, rng.randrange(1 << 31)]),
        instructions=rng.choice([None, rng.randrange(1 << 31)]),
        error=rng.choice([None, "RuntimeError: boom"]),
        failure_kind=rng.choice([None, "crash", "timeout"]),
        attempt=rng.choice([None, rng.randrange(1, 4)]),
    )


def random_retry(rng):
    return RetryPolicy(
        max_retries=rng.randrange(0, 4),
        backoff_base=rng.choice([0.01, 0.5, 2.0]),
        backoff_factor=rng.choice([1.5, 2.0]),
        backoff_max=rng.choice([5.0, 30.0]),
        jitter=rng.choice([0.0, 0.1]),
        retry_kinds=frozenset(
            rng.sample(["crash", "timeout"], rng.randrange(1, 3))
        ),
    )


def random_execution(rng):
    return ExecutionPolicy(
        jobs=rng.randrange(1, 9),
        timeout=rng.choice([None, 30.0, 600.0]),
        retries=random_retry(rng),
        hang_window=rng.choice([None, 50_000]),
        fabric=rng.choice([None, "http://scheduler:8700"]),
        fail_on_unhalted=rng.random() < 0.5,
    )


@pytest.mark.parametrize("seed", range(CASES))
class TestRoundTrips:
    """For each wire type: from_dict(wire_trip(to_dict(x))) == x."""

    def test_run_request(self, seed):
        request = random_request(make_rng(seed))
        assert RunRequest.from_dict(wire_trip(request.to_dict())) == request

    def test_run_metrics(self, seed):
        metrics = random_metrics(make_rng(seed))
        assert RunMetrics.from_dict(wire_trip(metrics.to_dict())) == metrics

    def test_run_failure(self, seed):
        failure = random_failure(make_rng(seed))
        assert RunFailure.from_dict(wire_trip(failure.to_dict())) == failure

    def test_run_event(self, seed):
        event = random_event(make_rng(seed))
        assert RunEvent.from_dict(wire_trip(event.to_dict())) == event

    def test_retry_policy(self, seed):
        policy = random_retry(make_rng(seed))
        assert RetryPolicy.from_dict(wire_trip(policy.to_dict())) == policy

    def test_execution_policy(self, seed):
        policy = random_execution(make_rng(seed))
        assert ExecutionPolicy.from_dict(wire_trip(policy.to_dict())) == policy

    def test_outcome_envelope(self, seed):
        rng = make_rng(seed)
        outcome = random_metrics(rng) if seed % 2 else random_failure(rng)
        assert decode_outcome(wire_trip(encode_outcome(outcome))) == outcome


def test_cache_policy_round_trip(tmp_path):
    for policy in (
        CachePolicy(),
        CachePolicy(enabled=False),
        CachePolicy(cache_dir=tmp_path),
    ):
        assert CachePolicy.from_dict(wire_trip(policy.to_dict())) == policy


def test_journal_policy_round_trip(tmp_path):
    for policy in (
        JournalPolicy(),
        JournalPolicy(path=tmp_path / "s.journal"),
        JournalPolicy(path=tmp_path / "s.journal", resume=True),
    ):
        assert JournalPolicy.from_dict(wire_trip(policy.to_dict())) == policy


class TestSchemaGuards:
    def test_envelope_stamps_current_version(self):
        assert envelope(x=1) == {"schema": WIRE_SCHEMA_VERSION, "x": 1}

    def test_newer_schema_rejected(self):
        with pytest.raises(WireError, match="newer"):
            check_schema({"schema": WIRE_SCHEMA_VERSION + 1})

    def test_current_and_missing_schema_accepted(self):
        check_schema({"schema": WIRE_SCHEMA_VERSION})
        check_schema({})

    def test_event_newer_schema_rejected(self):
        payload = random_event(make_rng(0)).to_dict()
        payload["schema"] = EVENT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            RunEvent.from_dict(payload)

    def test_event_unknown_fields_ignored(self):
        payload = random_event(make_rng(1)).to_dict()
        expected = RunEvent.from_dict(dict(payload))
        payload.update({"seq": 12, "ts": 1754400000.25, "brand_new_field": "x"})
        assert RunEvent.from_dict(payload) == expected

    def test_unknown_outcome_kind_rejected(self):
        with pytest.raises(WireError, match="unknown outcome kind"):
            decode_outcome({"kind": "surprise", "payload": {}})
