"""Unit tests for the perf-smoke gate's comparison logic
(``scripts/check_perf.py``), exercised without running any benchmarks."""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


@pytest.fixture(scope="module")
def check_perf():
    spec = importlib.util.spec_from_file_location(
        "check_perf", REPO_ROOT / "scripts" / "check_perf.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


BASELINE = {
    "calibration_s": 0.100,
    "benchmarks": {"bench[Unsafe]": 0.300, "bench[Hybrid]": 0.450},
}


class TestCompare:
    def test_identical_run_passes(self, check_perf):
        failures = check_perf.compare(
            BASELINE, dict(BASELINE["benchmarks"]), current_calibration=0.100
        )
        assert failures == []

    def test_2x_slowdown_fails(self, check_perf):
        """The acceptance criterion: an injected 2x slowdown must trip the
        gate (2.0 > 1 + 30% tolerance)."""
        current = {name: mean * 2.0 for name, mean in BASELINE["benchmarks"].items()}
        failures = check_perf.compare(BASELINE, current, current_calibration=0.100)
        assert len(failures) == 2
        assert all("regression" in f for f in failures)

    def test_within_tolerance_passes(self, check_perf):
        current = {name: mean * 1.25 for name, mean in BASELINE["benchmarks"].items()}
        assert check_perf.compare(BASELINE, current, 0.100) == []

    def test_slower_machine_gets_headroom(self, check_perf):
        """A 1.5x-slower host (per calibration) running 1.5x-slower
        benchmarks is not a regression."""
        current = {name: mean * 1.5 for name, mean in BASELINE["benchmarks"].items()}
        assert check_perf.compare(BASELINE, current, current_calibration=0.150) == []

    def test_faster_machine_tightens_the_band(self, check_perf):
        """On a 2x-faster host, baseline-equal wall times are a ~2x
        regression in real terms and must fail."""
        current = dict(BASELINE["benchmarks"])
        failures = check_perf.compare(BASELINE, current, current_calibration=0.050)
        assert len(failures) == 2

    def test_incomparable_machine_fails_loudly(self, check_perf):
        failures = check_perf.compare(
            BASELINE, dict(BASELINE["benchmarks"]), current_calibration=0.001
        )
        assert len(failures) == 1
        assert "too different" in failures[0]

    def test_missing_benchmark_fails(self, check_perf):
        failures = check_perf.compare(
            BASELINE, {"bench[Unsafe]": 0.300}, current_calibration=0.100
        )
        assert failures == ["bench[Hybrid]: missing from the current benchmark run"]

    def test_tolerance_is_configurable(self, check_perf):
        current = {name: mean * 1.25 for name, mean in BASELINE["benchmarks"].items()}
        assert check_perf.compare(BASELINE, current, 0.100, tolerance=0.10)

    def test_large_improvement_flags_baseline_refresh(self, check_perf):
        """A >30% speedup must fail too, pointing at --refresh: otherwise
        the stale baseline would absorb the win and mask the next
        same-sized regression."""
        current = {name: mean * 0.4 for name, mean in BASELINE["benchmarks"].items()}
        failures = check_perf.compare(BASELINE, current, current_calibration=0.100)
        assert len(failures) == 2
        assert all("improvement" in f and "--refresh" in f for f in failures)

    def test_moderate_improvement_passes(self, check_perf):
        current = {name: mean * 0.8 for name, mean in BASELINE["benchmarks"].items()}
        assert check_perf.compare(BASELINE, current, 0.100) == []

    def test_improvement_band_scales_with_machine_speed(self, check_perf):
        """Baseline-equal wall times on a 2x-slower host are a real ~2x
        improvement and must be flagged."""
        current = dict(BASELINE["benchmarks"])
        failures = check_perf.compare(BASELINE, current, current_calibration=0.200)
        assert len(failures) == 2
        assert all("improvement" in f for f in failures)


class TestCliModes:
    def _results_file(self, tmp_path, factor=1.0):
        payload = {
            "benchmarks": [
                {"name": name, "stats": {"mean": mean * factor}}
                for name, mean in BASELINE["benchmarks"].items()
            ]
        }
        path = tmp_path / "results.json"
        path.write_text(json.dumps(payload))
        return path

    def test_refresh_then_check_round_trips(self, check_perf, tmp_path, capsys):
        results = self._results_file(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        assert check_perf.main(
            [str(results), "--baseline", str(baseline_path), "--refresh"]
        ) == 0
        assert check_perf.main(
            [str(results), "--baseline", str(baseline_path)]
        ) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_fails_on_doctored_2x_results(self, check_perf, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        assert check_perf.main(
            [str(self._results_file(tmp_path)), "--baseline", str(baseline_path),
             "--refresh"]
        ) == 0
        slow = self._results_file(tmp_path, factor=2.0)
        assert check_perf.main([str(slow), "--baseline", str(baseline_path)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_missing_baseline_is_an_error(self, check_perf, tmp_path, capsys):
        results = self._results_file(tmp_path)
        assert check_perf.main(
            [str(results), "--baseline", str(tmp_path / "nope.json")]
        ) == 1
        assert "no baseline" in capsys.readouterr().out

    def test_missing_results_is_a_usage_error(self, check_perf, tmp_path):
        assert check_perf.main([str(tmp_path / "nope.json")]) == 2
