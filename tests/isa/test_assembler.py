"""Tests for the two-pass assembler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.assembler import _SIGNATURES, AssemblyError, assemble, disassemble
from repro.isa.instructions import FP_BASE, Instruction, Opcode
from repro.isa.program import Program

_INT_REG = st.integers(0, 31)
_FP_REG = st.integers(0, 15).map(lambda i: FP_BASE + i)


def _operand_reg_kinds(opcode):
    """(dest kind, source kinds) per opcode; 'f' = fp reg, 'r' = int reg."""
    if opcode in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV):
        return "f", ("f", "f")
    if opcode is Opcode.FSQRT:
        return "f", ("f",)
    if opcode is Opcode.FLI:
        return "f", ()
    if opcode is Opcode.FLOAD:
        return "f", ("r",)
    if opcode is Opcode.FSTORE:
        return None, ("f", "r")
    return "r", ("r", "r")


@st.composite
def random_instructions(draw):
    """Arbitrary well-formed instruction lists (HALT-terminated)."""
    n = draw(st.integers(min_value=2, max_value=12))
    opcodes = sorted(_SIGNATURES, key=lambda op: op.name)
    body = draw(
        st.lists(st.sampled_from(opcodes), min_size=n - 1, max_size=n - 1)
    )
    instructions = []
    for opcode in body:
        dest_kind, source_kinds = _operand_reg_kinds(opcode)
        rd = rs1 = rs2 = target = None
        imm = 0
        sources = []
        for kind in _SIGNATURES[opcode]:
            if kind == "d":
                rd = draw(_FP_REG if dest_kind == "f" else _INT_REG)
            elif kind == "s":
                want = source_kinds[len(sources)]
                sources.append(draw(_FP_REG if want == "f" else _INT_REG))
            elif kind == "i":
                imm = draw(st.integers(-(2**31), 2**31))
            elif kind == "f":
                imm = draw(
                    st.floats(allow_nan=False, allow_infinity=False, width=64)
                )
            elif kind == "t":
                target = draw(st.integers(0, n - 1))
        if sources:
            rs1 = sources[0]
        if len(sources) > 1:
            rs2 = sources[1]
        instructions.append(
            Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2, imm=imm, target=target)
        )
    instructions.append(Instruction(Opcode.HALT))
    return instructions


class TestBasicAssembly:
    def test_simple_program(self):
        program = assemble("""
            li r1, 5
            addi r1, r1, 1
            halt
        """)
        assert len(program) == 3
        assert program[0].opcode is Opcode.LI
        assert program[0].imm == 5
        assert program[2].opcode is Opcode.HALT

    def test_comments_and_blank_lines(self):
        program = assemble("""
            ; leading comment
            li r1, 1   # trailing comment

            halt       ; done
        """)
        assert len(program) == 2

    def test_labels_resolve_forward_and_backward(self):
        program = assemble("""
        start:
            beq r1, r2, end
            jmp start
        end:
            halt
        """)
        assert program[0].target == 2
        assert program[1].target == 0

    def test_numeric_targets(self):
        program = assemble("""
            jmp 1
            halt
        """)
        assert program[0].target == 1

    def test_fp_registers_and_float_immediates(self):
        program = assemble("""
            fli f0, 1.5
            fmul f1, f0, f0
            halt
        """)
        assert program[0].imm == 1.5
        assert program[1].rd == 101

    def test_store_operand_order(self):
        """store value, base, offset -> rs1=value, rs2=base."""
        program = assemble("""
            store r3, r4, 16
            halt
        """)
        inst = program[0]
        assert inst.rs1 == 3
        assert inst.rs2 == 4
        assert inst.imm == 16

    def test_negative_and_hex_immediates(self):
        program = assemble("""
            li r1, -42
            li r2, 0x10
            halt
        """)
        assert program[0].imm == -42
        assert program[1].imm == 16

    def test_initial_memory_is_copied(self):
        memory = {8: 7}
        program = assemble("halt", initial_memory=memory)
        memory[8] = 99
        assert program.initial_memory[8] == 7


class TestAssemblyErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate r1, r2\nhalt")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="takes 3 operands"):
            assemble("add r1, r2\nhalt")

    def test_bad_register(self):
        with pytest.raises(AssemblyError, match="no such integer register"):
            assemble("li r99, 0\nhalt")

    def test_fp_register_out_of_range(self):
        with pytest.raises(AssemblyError, match="no such fp register"):
            assemble("fli f16, 1.0\nhalt")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble("x: nop\nx: halt")

    def test_undefined_label_is_not_an_int(self):
        with pytest.raises(AssemblyError):
            assemble("jmp nowhere\nhalt")

    def test_out_of_range_numeric_target(self):
        with pytest.raises(AssemblyError, match="out of range"):
            assemble("jmp 17\nhalt")

    def test_error_carries_line_number(self):
        try:
            assemble("nop\nbogus r1\nhalt")
        except AssemblyError as error:
            assert error.line_no == 2
        else:  # pragma: no cover
            pytest.fail("expected AssemblyError")

    def test_missing_halt_rejected_by_program(self):
        with pytest.raises(ValueError, match="no HALT"):
            assemble("nop")


class TestDisassemble:
    def test_renders_labels_and_operands(self):
        program = assemble("""
        loop:
            li r1, 5
            fli f0, 1.5
            blt r1, r2, loop
            halt
        """)
        source = disassemble(program)
        assert "loop:" in source
        assert "li r1, 5" in source
        assert "fli f0, 1.5" in source
        assert "blt r1, r2, loop" in source

    def test_synthesizes_labels_for_numeric_targets(self):
        program = assemble("jmp 1\nhalt")
        source = disassemble(program)
        assert "L1:" in source
        assert "jmp L1" in source

    def test_synthesized_label_avoids_collision(self):
        program = assemble("""
            jmp 1
        L1_other:
            nop
            beq r1, r2, L1_other
            halt
        """)
        # Force the pathological case: a user label literally named L1.
        program.instructions[1].__dict__["label"] = "L1"
        source = disassemble(program)
        rebuilt = assemble(source)
        assert rebuilt.instructions == program.instructions

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_random_programs(self, data):
        instructions = data.draw(random_instructions())
        program = Program(instructions, name="prop")
        rebuilt = assemble(disassemble(program), name="prop")
        assert rebuilt.instructions == program.instructions
