"""Tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.instructions import Opcode


class TestBasicAssembly:
    def test_simple_program(self):
        program = assemble("""
            li r1, 5
            addi r1, r1, 1
            halt
        """)
        assert len(program) == 3
        assert program[0].opcode is Opcode.LI
        assert program[0].imm == 5
        assert program[2].opcode is Opcode.HALT

    def test_comments_and_blank_lines(self):
        program = assemble("""
            ; leading comment
            li r1, 1   # trailing comment

            halt       ; done
        """)
        assert len(program) == 2

    def test_labels_resolve_forward_and_backward(self):
        program = assemble("""
        start:
            beq r1, r2, end
            jmp start
        end:
            halt
        """)
        assert program[0].target == 2
        assert program[1].target == 0

    def test_numeric_targets(self):
        program = assemble("""
            jmp 1
            halt
        """)
        assert program[0].target == 1

    def test_fp_registers_and_float_immediates(self):
        program = assemble("""
            fli f0, 1.5
            fmul f1, f0, f0
            halt
        """)
        assert program[0].imm == 1.5
        assert program[1].rd == 101

    def test_store_operand_order(self):
        """store value, base, offset -> rs1=value, rs2=base."""
        program = assemble("""
            store r3, r4, 16
            halt
        """)
        inst = program[0]
        assert inst.rs1 == 3
        assert inst.rs2 == 4
        assert inst.imm == 16

    def test_negative_and_hex_immediates(self):
        program = assemble("""
            li r1, -42
            li r2, 0x10
            halt
        """)
        assert program[0].imm == -42
        assert program[1].imm == 16

    def test_initial_memory_is_copied(self):
        memory = {8: 7}
        program = assemble("halt", initial_memory=memory)
        memory[8] = 99
        assert program.initial_memory[8] == 7


class TestAssemblyErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate r1, r2\nhalt")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="takes 3 operands"):
            assemble("add r1, r2\nhalt")

    def test_bad_register(self):
        with pytest.raises(AssemblyError, match="no such integer register"):
            assemble("li r99, 0\nhalt")

    def test_fp_register_out_of_range(self):
        with pytest.raises(AssemblyError, match="no such fp register"):
            assemble("fli f16, 1.0\nhalt")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble("x: nop\nx: halt")

    def test_undefined_label_is_not_an_int(self):
        with pytest.raises(AssemblyError):
            assemble("jmp nowhere\nhalt")

    def test_out_of_range_numeric_target(self):
        with pytest.raises(AssemblyError, match="out of range"):
            assemble("jmp 17\nhalt")

    def test_error_carries_line_number(self):
        try:
            assemble("nop\nbogus r1\nhalt")
        except AssemblyError as error:
            assert error.line_no == 2
        else:  # pragma: no cover
            pytest.fail("expected AssemblyError")

    def test_missing_halt_rejected_by_program(self):
        with pytest.raises(ValueError, match="no HALT"):
            assemble("nop")
