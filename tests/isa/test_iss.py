"""Tests for the functional interpreter (the golden model)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.isa.assembler import assemble
from repro.isa.iss import ArchState, Interpreter, wrap64
from repro.isa.instructions import fp_reg


def run(source, memory=None, max_instructions=100_000):
    interpreter = Interpreter(assemble(source, memory or {}))
    trace = interpreter.run(max_instructions)
    return interpreter, trace


class TestWrap64:
    def test_identity_in_range(self):
        assert wrap64(12345) == 12345
        assert wrap64(-12345) == -12345

    def test_wraps_at_boundaries(self):
        assert wrap64(2**63) == -(2**63)
        assert wrap64(-(2**63) - 1) == 2**63 - 1

    @given(st.integers(min_value=-(2**70), max_value=2**70))
    def test_always_in_signed_64_range(self, value):
        wrapped = wrap64(value)
        assert -(2**63) <= wrapped < 2**63
        assert (wrapped - value) % (2**64) == 0


class TestArchState:
    def test_r0_reads_zero_and_ignores_writes(self):
        state = ArchState()
        state.write_reg(0, 77)
        assert state.read_reg(0) == 0

    def test_fp_registers_coerce_to_float(self):
        state = ArchState()
        state.write_reg(fp_reg(2), 3)
        assert state.read_reg(fp_reg(2)) == 3.0
        assert isinstance(state.read_reg(fp_reg(2)), float)

    def test_memory_defaults_to_zero(self):
        assert ArchState().read_mem(0xDEAD) == 0

    def test_snapshot_is_independent(self):
        state = ArchState()
        state.write_reg(1, 5)
        snap = state.snapshot()
        state.write_reg(1, 9)
        assert snap.read_reg(1) == 5


class TestExecution:
    def test_arithmetic(self):
        interpreter, _ = run("""
            li r1, 6
            li r2, 7
            mul r3, r1, r2
            sub r4, r3, r1
            halt
        """)
        assert interpreter.state.read_reg(3) == 42
        assert interpreter.state.read_reg(4) == 36

    def test_logic_and_shifts(self):
        interpreter, _ = run("""
            li r1, 12
            li r2, 10
            and r3, r1, r2
            or r4, r1, r2
            xor r5, r1, r2
            li r6, 2
            shl r7, r1, r6
            shr r8, r1, r6
            slt r9, r2, r1
            halt
        """)
        s = interpreter.state
        assert s.read_reg(3) == 8
        assert s.read_reg(4) == 14
        assert s.read_reg(5) == 6
        assert s.read_reg(7) == 48
        assert s.read_reg(8) == 3
        assert s.read_reg(9) == 1

    def test_loop_with_memory(self):
        memory = {1000 + 8 * i: i for i in range(10)}
        interpreter, trace = run("""
            li r1, 0
            li r2, 10
            li r12, 3
        loop:
            shl r9, r1, r12
            load r4, r9, 1000
            add r3, r3, r4
            addi r1, r1, 1
            blt r1, r2, loop
            store r3, r0, 2000
            halt
        """, memory)
        assert interpreter.state.read_mem(2000) == sum(range(10))
        assert trace[-1].opcode.mnemonic == "halt"

    def test_store_then_load_roundtrip(self):
        interpreter, _ = run("""
            li r1, 123
            li r2, 512
            store r1, r2, 8
            load r3, r2, 8
            halt
        """)
        assert interpreter.state.read_reg(3) == 123

    def test_branch_taken_and_not_taken(self):
        _, trace = run("""
            li r1, 1
            li r2, 2
            blt r2, r1, never
            beq r1, r1, always
        never:
            nop
        always:
            halt
        """)
        pcs = [record.pc for record in trace]
        assert 4 not in pcs  # 'never: nop' skipped by the taken beq

    def test_fp_pipeline(self):
        interpreter, _ = run("""
            fli f0, 2.0
            fli f1, 8.0
            fdiv f2, f1, f0
            fsqrt f3, f1
            fmul f4, f2, f3
            fsub f5, f4, f0
            halt
        """)
        s = interpreter.state
        assert s.read_reg(fp_reg(2)) == 4.0
        assert s.read_reg(fp_reg(3)) == pytest.approx(math.sqrt(8.0))
        assert s.read_reg(fp_reg(5)) == pytest.approx(4.0 * math.sqrt(8.0) - 2.0)

    def test_fp_division_by_zero_is_inf_not_trap(self):
        interpreter, _ = run("""
            fli f0, 1.0
            fli f1, 0.0
            fdiv f2, f0, f1
            halt
        """)
        assert math.isinf(interpreter.state.read_reg(fp_reg(2)))

    def test_fsqrt_of_negative_is_nan(self):
        interpreter, _ = run("""
            fli f0, -1.0
            fsqrt f1, f0
            halt
        """)
        assert math.isnan(interpreter.state.read_reg(fp_reg(1)))

    def test_instruction_limit_stops_infinite_loop(self):
        interpreter = Interpreter(assemble("spin: jmp spin\nhalt"))
        trace = interpreter.run(max_instructions=50)
        assert len(trace) == 50
        assert not interpreter.halted

    def test_step_after_halt_raises(self):
        interpreter, _ = run("halt")
        with pytest.raises(RuntimeError):
            interpreter.step()

    def test_trace_records_memory_addresses(self):
        _, trace = run("""
            li r1, 64
            load r2, r1, 8
            store r2, r1, 16
            halt
        """)
        load_record = trace[1]
        store_record = trace[2]
        assert load_record.mem_addr == 72
        assert store_record.mem_addr == 80


class TestWrapAroundSemantics:
    @given(st.integers(-(2**62), 2**62), st.integers(-(2**62), 2**62))
    def test_add_matches_wrap64(self, a, b):
        interpreter, _ = run(f"""
            li r1, {a}
            li r2, {b}
            add r3, r1, r2
            halt
        """)
        assert interpreter.state.read_reg(3) == wrap64(a + b)
