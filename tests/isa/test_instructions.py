"""Tests for instruction definitions and register helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.instructions import (
    CONDITIONAL_BRANCHES,
    FP_BASE,
    FP_TRANSMIT_OPS,
    Instruction,
    Opcode,
    OpClass,
    fp_reg,
    int_reg,
    is_fp_reg,
    is_subnormal,
    reg_name,
)


class TestRegisters:
    def test_int_reg_range(self):
        assert int_reg(0) == 0
        assert int_reg(31) == 31
        with pytest.raises(ValueError):
            int_reg(32)
        with pytest.raises(ValueError):
            int_reg(-1)

    def test_fp_reg_offset(self):
        assert fp_reg(0) == FP_BASE
        assert fp_reg(15) == FP_BASE + 15
        with pytest.raises(ValueError):
            fp_reg(16)

    def test_classification(self):
        assert not is_fp_reg(int_reg(5))
        assert is_fp_reg(fp_reg(5))

    def test_names(self):
        assert reg_name(int_reg(3)) == "r3"
        assert reg_name(fp_reg(3)) == "f3"
        assert reg_name(None) == "-"


class TestSubnormal:
    def test_zero_is_not_subnormal(self):
        assert not is_subnormal(0.0)

    def test_tiny_values_are(self):
        assert is_subnormal(1e-40)
        assert is_subnormal(-1e-40)

    def test_normal_values_are_not(self):
        assert not is_subnormal(1.0)
        assert not is_subnormal(-3.5e10)

    @given(st.floats(min_value=1e-30, max_value=1e30))
    def test_normals_by_magnitude(self, value):
        assert not is_subnormal(value)


class TestOpcodes:
    def test_fp_transmitters_match_table2(self):
        """Table II: 'fmult/div/fsqrt micro-ops'."""
        assert FP_TRANSMIT_OPS == {Opcode.FMUL, Opcode.FDIV, Opcode.FSQRT}
        assert Opcode.FADD not in FP_TRANSMIT_OPS

    def test_conditional_branches(self):
        assert Opcode.JMP not in CONDITIONAL_BRANCHES
        assert Opcode.BEQ in CONDITIONAL_BRANCHES

    def test_classes(self):
        assert Opcode.LOAD.op_class is OpClass.LOAD
        assert Opcode.FLOAD.op_class is OpClass.LOAD
        assert Opcode.STORE.op_class is OpClass.STORE
        assert Opcode.MUL.op_class is OpClass.INT_MUL
        assert Opcode.HALT.op_class is OpClass.SYSTEM


class TestInstruction:
    def test_sources_skips_none(self):
        inst = Instruction(Opcode.ADDI, rd=1, rs1=2, imm=5)
        assert inst.sources() == (2,)

    def test_store_reads_value_and_base(self):
        inst = Instruction(Opcode.STORE, rs1=3, rs2=4, imm=8)
        assert inst.sources() == (3, 4)
        assert inst.is_store and inst.is_mem and not inst.is_load

    def test_predicates(self):
        branch = Instruction(Opcode.BLT, rs1=1, rs2=2, target=0)
        assert branch.is_branch and branch.is_conditional_branch
        jump = Instruction(Opcode.JMP, target=0)
        assert jump.is_branch and not jump.is_conditional_branch
        fdiv = Instruction(Opcode.FDIV, rd=101, rs1=102, rs2=103)
        assert fdiv.is_fp_transmitter

    def test_str_is_readable(self):
        inst = Instruction(Opcode.LOAD, rd=1, rs1=2, imm=100)
        assert "load" in str(inst)
        assert "r1" in str(inst)
