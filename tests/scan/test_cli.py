"""Tests for the ``repro scan`` command."""

import argparse
import io
import json

from repro.isa.assembler import assemble
from repro.scan.cli import add_scan_arguments, main, run_scan_command

GADGET_SOURCE = """
    li r1, 64
    li r2, 8
    bge r1, r2, done
    load r3, r1, 0
    load r5, r3, 4096
done:
    halt
"""

SAFE_SOURCE = """
    li r1, 64
    li r2, 8
    bge r1, r2, done
    load r3, r1, 0
    li r3, 0
    load r5, r3, 4096
done:
    halt
"""


def scan(argv):
    parser = argparse.ArgumentParser()
    add_scan_arguments(parser)
    out = io.StringIO()
    code = run_scan_command(parser.parse_args(argv), out)
    return code, out.getvalue()


def write_program(tmp_path, source, name, wrap=False):
    payload = assemble(source, name=name).to_dict()
    if wrap:
        payload = {"name": name, "program": payload}
    path = tmp_path / f"{name}.json"
    path.write_text(json.dumps(payload))
    return path


class TestGate:
    def test_committed_baseline_covers_the_corpus(self):
        # The real gate: the checked-in scan-baseline.json must cover
        # every corpus gadget, with no stale entries.
        code, output = scan([])
        assert code == 0, output
        assert "0 new gadget(s)" in output
        assert "no longer matches" not in output

    def test_empty_baseline_fails_on_corpus(self, tmp_path):
        code, output = scan(["--baseline", str(tmp_path / "empty.json")])
        assert code == 1
        assert "gadget-v1" in output

    def test_write_then_rescan_is_clean(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        code, _ = scan(["--baseline", str(baseline), "--write-baseline"])
        assert code == 0
        code, output = scan(["--baseline", str(baseline)])
        assert code == 0, output

    def test_baseline_names_the_scan_command(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        scan(["--baseline", str(baseline), "--write-baseline"])
        assert "repro scan --write-baseline" in baseline.read_text()


class TestExtraFiles:
    def test_gadget_file_fails_the_gate(self, tmp_path):
        path = write_program(tmp_path, GADGET_SOURCE, "gadget")
        code, output = scan(
            ["--no-corpus", str(path),
             "--baseline", str(tmp_path / "empty.json")]
        )
        assert code == 1
        assert "gadget-v1" in output

    def test_safe_file_passes(self, tmp_path):
        path = write_program(tmp_path, SAFE_SOURCE, "safe")
        code, output = scan(
            ["--no-corpus", str(path),
             "--baseline", str(tmp_path / "empty.json")]
        )
        assert code == 0, output

    def test_workload_style_payload_is_accepted(self, tmp_path):
        path = write_program(tmp_path, GADGET_SOURCE, "wrapped", wrap=True)
        code, output = scan(
            ["--no-corpus", str(path),
             "--baseline", str(tmp_path / "empty.json")]
        )
        assert code == 1
        assert "gadget-v1" in output

    def test_no_corpus_suppresses_stale_notes(self, tmp_path):
        # Skipping the corpus leaves the whole committed baseline
        # unmatched; that must not drown the user's own results in
        # stale-entry noise.
        path = write_program(tmp_path, SAFE_SOURCE, "safe")
        code, output = scan(["--no-corpus", str(path)])
        assert code == 0, output
        assert "no longer matches" not in output

    def test_missing_file_is_a_usage_error(self, tmp_path):
        code, output = scan(["--no-corpus", str(tmp_path / "nope.json")])
        assert code == 2
        assert "repro scan:" in output

    def test_malformed_json_is_a_usage_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        code, _ = scan(["--no-corpus", str(path)])
        assert code == 2


class TestOutputFormats:
    def test_json_format(self, tmp_path):
        path = write_program(tmp_path, GADGET_SOURCE, "gadget")
        code, output = scan(
            ["--no-corpus", str(path), "--format", "json",
             "--baseline", str(tmp_path / "empty.json")]
        )
        assert code == 1
        payload = json.loads(output)
        assert payload["programs_scanned"] == 1
        assert payload["new"][0]["checker"] == "gadget-v1"
        assert payload["baselined"] == []

    def test_show_baselined(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        scan(["--baseline", str(baseline), "--write-baseline"])
        code, output = scan(
            ["--baseline", str(baseline), "--show-baselined"]
        )
        assert code == 0
        assert "(baselined)" in output

    def test_window_is_honoured(self, tmp_path):
        path = write_program(tmp_path, GADGET_SOURCE, "gadget")
        code, _ = scan(
            ["--no-corpus", str(path), "--window", "1",
             "--baseline", str(tmp_path / "empty.json")]
        )
        assert code == 0  # sink is 2 deep; a 1-instruction window misses it


class TestMain:
    def test_main_entry_point(self, tmp_path, capsys):
        assert main(["--baseline", str(tmp_path / "b.json"),
                     "--write-baseline"]) == 0
        capsys.readouterr()

    def test_invalid_window_is_a_usage_error(self):
        code, output = scan(["--window", "0"])
        assert code == 2
        assert "window" in output
