"""Static-vs-dynamic cross-validation of the whole corpus.

The load-bearing acceptance tests: every corpus entry's static verdict
must agree with dynamic non-interference on the full pipeline model —
no false negatives anywhere, false positives only where the entry carries
an explicit ``unsound_ok`` annotation — and every statically-found gadget
must go quiet under the protection schemes.
"""

import pytest

from repro.scan.analyzer import CLASS_LATENCY, scan_program
from repro.scan.corpus import full_corpus
from repro.scan.crossval import (
    SUPPRESSING_CONFIGS,
    cross_validate,
    run_dynamic,
)

CORPUS = full_corpus()
IDS = [entry.name for entry in CORPUS]
POSITIVE = [entry for entry in CORPUS if entry.expected_classes]

#: (entry, config) cells for the suppression matrix.  STT{ld} does not
#: gate FP transmitters, so latency-class entries are excluded from it.
SUPPRESSION_CELLS = [
    (entry, config)
    for entry in POSITIVE
    for config in (
        SUPPRESSING_CONFIGS
        if CLASS_LATENCY in entry.expected_classes
        else SUPPRESSING_CONFIGS + ("STT{ld}",)
    )
]


class TestUnsafeAgreement:
    @pytest.mark.parametrize("entry", CORPUS, ids=IDS)
    def test_static_verdict_matches_dynamic(self, entry):
        result = cross_validate(entry)
        assert result.agreed, result.explain()

    @pytest.mark.parametrize(
        "entry",
        [e for e in CORPUS if e.expected_leak],
        ids=[e.name for e in CORPUS if e.expected_leak],
    )
    def test_expected_leaks_really_leak(self, entry):
        verdict = run_dynamic(entry.builder, "Unsafe")
        assert verdict.leaked, (
            f"{entry.name} declares a dynamic leak but Unsafe ran "
            f"secret-invariant (cycles {verdict.cycles_by_secret})"
        )

    @pytest.mark.parametrize(
        "entry",
        [e for e in CORPUS if not e.expected_leak],
        ids=[e.name for e in CORPUS if not e.expected_leak],
    )
    def test_expected_invariants_stay_invariant(self, entry):
        verdict = run_dynamic(entry.builder, "Unsafe")
        assert not verdict.leaked, (
            f"{entry.name} declares non-interference but Unsafe leaked "
            f"(divergence: {verdict.divergence})"
        )


class TestSuppression:
    @pytest.mark.parametrize(
        "entry,config",
        SUPPRESSION_CELLS,
        ids=[f"{e.name}-{c}" for e, c in SUPPRESSION_CELLS],
    )
    def test_gadget_is_suppressed(self, entry, config):
        assert scan_program(entry.program()).is_positive
        verdict = run_dynamic(entry.builder, config)
        assert not verdict.leaked, (
            f"{entry.name} still leaks under {config} "
            f"(cycles {verdict.cycles_by_secret}, "
            f"divergence: {verdict.divergence})"
        )


class TestHarnessSelfChecks:
    def test_run_dynamic_rejects_secret_dependent_commits(self):
        # A builder whose *architectural* behaviour depends on the secret
        # must be rejected: trace differences would not prove a
        # speculative leak.
        from repro.isa.assembler import assemble
        from repro.workloads.workload import Workload

        def broken(secret):
            source = "nop\n" * (secret + 1) + "halt"
            return Workload(name="broken", program=assemble(source))

        with pytest.raises(RuntimeError, match="not secret-invariant"):
            run_dynamic(broken, "Unsafe")
