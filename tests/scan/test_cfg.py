"""Tests for CFG reconstruction over micro-ISA programs."""

import pytest

from repro.isa.assembler import assemble
from repro.scan.cfg import build_cfg, successors


def prog(source):
    return assemble(source)


class TestSuccessors:
    def test_halt_has_none(self):
        p = prog("halt")
        assert successors(p, 0) == ()

    def test_straightline_falls_through(self):
        p = prog("""
            li r1, 1
            halt
        """)
        assert successors(p, 0) == (1,)

    def test_jmp_goes_only_to_target(self):
        p = prog("""
            jmp end
            li r1, 1
        end:
            halt
        """)
        assert successors(p, 0) == (2,)

    def test_conditional_branch_has_both_edges(self):
        p = prog("""
            beq r1, r2, end
            li r1, 1
        end:
            halt
        """)
        assert set(successors(p, 0)) == {1, 2}

    def test_last_instruction_fallthrough_is_clipped(self):
        # A non-HALT final instruction has no fall-through edge.
        p = prog("""
            halt
            li r1, 1
        """)
        assert successors(p, 1) == ()


class TestBuildCfg:
    def test_blocks_partition_the_program(self):
        p = prog("""
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """)
        cfg = build_cfg(p)
        covered = sorted(
            pc for b in cfg.blocks.values() for pc in b.pcs()
        )
        assert covered == list(range(len(p)))

    def test_branch_target_starts_a_block(self):
        p = prog("""
            li r1, 0
            li r2, 4
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """)
        cfg = build_cfg(p)
        assert 2 in cfg.blocks
        assert cfg.block_of(3).end == 3  # the branch terminates its block

    def test_block_of_every_pc(self):
        p = prog("""
            beq r1, r2, skip
            li r3, 1
        skip:
            halt
        """)
        cfg = build_cfg(p)
        for pc in range(len(p)):
            block = cfg.block_of(pc)
            assert block.start <= pc <= block.end

    def test_conditional_branch_pcs(self):
        p = prog("""
            beq r1, r2, out
            jmp out
        out:
            bne r3, r4, out
            halt
        """)
        assert build_cfg(p).conditional_branch_pcs == (0, 2)

    def test_unreachable_code_still_gets_a_block(self):
        # Architecturally dead code is speculatively reachable; the CFG
        # must not drop it.
        p = prog("""
            jmp end
            li r1, 1
        end:
            halt
        """)
        cfg = build_cfg(p)
        assert cfg.block_of(1) is not None

    def test_block_of_out_of_range_raises(self):
        cfg = build_cfg(prog("halt"))
        with pytest.raises((IndexError, KeyError, ValueError)):
            cfg.block_of(99)
