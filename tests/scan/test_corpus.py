"""Golden static verdicts and structural checks for the bundled corpus."""

import pytest

from repro.isa.assembler import assemble, disassemble
from repro.scan.analyzer import scan_program
from repro.scan.corpus import (
    HAND_WRITTEN,
    SOUP_SEEDS,
    CorpusEntry,
    entry_by_name,
    full_corpus,
    generated_entries,
)
from repro.workloads.generators import gadget_soup_spec, make_gadget_soup

CORPUS = full_corpus()
IDS = [entry.name for entry in CORPUS]


class TestStructure:
    def test_corpus_size_floors(self):
        assert len(HAND_WRITTEN) >= 12
        assert len(generated_entries()) >= 20

    def test_names_are_unique(self):
        assert len(IDS) == len(set(IDS))

    def test_entry_by_name(self):
        assert entry_by_name("v1_classic").name == "v1_classic"
        with pytest.raises(KeyError):
            entry_by_name("no_such_entry")

    def test_unsound_requires_reason(self):
        with pytest.raises(ValueError, match="reason"):
            CorpusEntry(
                name="x",
                builder=lambda secret: None,
                expected_classes=frozenset({"v1"}),
                unsound_ok=frozenset({"v1"}),
            )

    def test_unsound_must_be_subset_of_expected(self):
        with pytest.raises(ValueError, match="subset"):
            CorpusEntry(
                name="x",
                builder=lambda secret: None,
                expected_classes=frozenset({"v1"}),
                unsound_ok=frozenset({"latency"}),
                unsound_reason="because",
            )

    def test_verdict_mix(self):
        # The corpus must exercise every outcome: dynamic leaks, clean
        # negatives, and annotated static-only positives.
        leaks = [e for e in CORPUS if e.expected_leak]
        negatives = [e for e in CORPUS if not e.expected_classes]
        annotated = [e for e in CORPUS if e.unsound_ok]
        assert len(leaks) >= 5
        assert len(negatives) >= 5
        assert len(annotated) >= 3


class TestGoldenVerdicts:
    @pytest.mark.parametrize("entry", CORPUS, ids=IDS)
    def test_static_classes_match_declared(self, entry):
        report = scan_program(entry.program())
        assert report.classes == entry.expected_classes, (
            f"{entry.name}: scanner found {sorted(report.classes)}, "
            f"entry declares {sorted(entry.expected_classes)}"
        )

    def test_two_hop_reports_two_gadgets(self):
        report = scan_program(entry_by_name("v1_two_hop").program())
        assert len(report.gadgets) == 2


class TestSecretPairs:
    @pytest.mark.parametrize("entry", CORPUS, ids=IDS)
    def test_instruction_streams_are_secret_invariant(self, entry):
        a, b = entry.workload(0), entry.workload(1)
        assert a.program.instructions == b.program.instructions
        assert a.warm_addresses == b.warm_addresses
        diff = {
            addr
            for addr in set(a.program.initial_memory)
            | set(b.program.initial_memory)
            if a.program.initial_memory.get(addr)
            != b.program.initial_memory.get(addr)
        }
        assert len(diff) == 1, (
            f"{entry.name}: memories differ at {sorted(diff)}; the pair "
            "must differ in exactly the secret word"
        )


class TestSoupGenerator:
    def test_spec_is_deterministic(self):
        for seed in SOUP_SEEDS[:6]:
            assert gadget_soup_spec(seed) == gadget_soup_spec(seed)

    def test_workload_is_deterministic(self):
        a = make_gadget_soup("s", seed=3, secret=1)
        b = make_gadget_soup("s", seed=3, secret=1)
        assert a.program.instructions == b.program.instructions
        assert a.program.initial_memory == b.program.initial_memory

    def test_seeds_vary_payloads(self):
        payloads = {gadget_soup_spec(seed)[0] for seed in SOUP_SEEDS}
        assert len(payloads) > len(SOUP_SEEDS) // 2


class TestRoundTrip:
    @pytest.mark.parametrize("entry", CORPUS, ids=IDS)
    def test_disassemble_assemble_round_trip(self, entry):
        program = entry.program()
        source = disassemble(program)
        rebuilt = assemble(
            source, program.initial_memory, name=program.name
        )
        # Instruction equality ignores labels, which is exactly the
        # round-trip contract: same opcodes, operands, targets.
        assert rebuilt.instructions == program.instructions
        assert rebuilt.initial_memory == program.initial_memory

    @pytest.mark.parametrize("entry", CORPUS, ids=IDS)
    def test_round_trip_preserves_static_verdict(self, entry):
        program = entry.program()
        rebuilt = assemble(disassemble(program), program.initial_memory)
        assert (
            scan_program(rebuilt).classes
            == scan_program(program).classes
            == entry.expected_classes
        )
