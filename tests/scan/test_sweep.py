"""Sweep-scale cross-validation through the :class:`Session` API.

The crossval module drives bare cores and compares event-level resource
traces; this suite closes the loop at the granularity the paper's
evaluation runs at — one ``Session`` sweep covering every corpus
program x secret x scheme cell — using only what a sweep reports back:
:class:`RunMetrics`.  Aggregate metrics cannot see *which* line a
transient load touched, so each workload is amplified by pre-warming
:data:`PROBE_ADDRESS` (the secret-0 transmit line); under Unsafe the
transient transmit then hits L1 for one secret and walks to DRAM for
the other, making the ``mem.hits_*`` counters secret-dependent exactly
when the program really leaks.

Asserted per corpus entry:

* Unsafe: the sweep-visible signal differs across secrets **iff** the
  entry expects a dynamic leak — and every such entry was flagged
  statically (no false negatives at sweep scale);
* STT{ld+fp} and Hybrid (SDO): the signal is secret-invariant on every
  entry, amplification included;
* committed instruction counts match across secrets in every cell (the
  non-interference precondition), and every cell halts cleanly.
"""

import pytest

from repro.common.config import AttackModel
from repro.scan.analyzer import scan_program
from repro.scan.corpus import full_corpus
from repro.scan.crossval import amplified_workload, sweep_signal
from repro.sim.api import Session
from repro.sim.configs import config_by_name
from repro.sim.policies import CachePolicy

CORPUS = full_corpus()
SECRETS = (0, 1)
CONFIGS = ("Unsafe", "STT{ld+fp}", "Hybrid")


@pytest.fixture(scope="module")
def cells():
    """metrics[(entry.name, config, secret)] from one deterministic sweep."""
    with Session(cache=CachePolicy(enabled=False)) as session:
        workloads = [
            amplified_workload(entry, secret)
            for entry in CORPUS
            for secret in SECRETS
        ]
        outcomes = session.sweep(
            workloads,
            configs=[config_by_name(name) for name in CONFIGS],
            attack_models=(AttackModel.SPECTRE,),
        )
    metrics = {}
    index = 0
    for entry in CORPUS:
        for secret in SECRETS:
            for config in CONFIGS:
                metrics[(entry.name, config, secret)] = outcomes[index]
                index += 1
    return metrics


@pytest.mark.parametrize("entry", CORPUS, ids=[e.name for e in CORPUS])
def test_cells_halt_with_invariant_commit_streams(entry, cells):
    for config in CONFIGS:
        m0 = cells[(entry.name, config, 0)]
        m1 = cells[(entry.name, config, 1)]
        assert m0.halted and m1.halted
        assert m0.instructions == m1.instructions, (
            f"{entry.name}/{config}: committed stream is secret-dependent "
            "— a sweep-signal difference would not prove a speculative leak"
        )


@pytest.mark.parametrize("entry", CORPUS, ids=[e.name for e in CORPUS])
def test_unsafe_sweep_signal_matches_expected_leak(entry, cells):
    differs = sweep_signal(cells[(entry.name, "Unsafe", 0)]) != sweep_signal(
        cells[(entry.name, "Unsafe", 1)]
    )
    assert differs == entry.expected_leak, (
        f"{entry.name}: amplified Unsafe sweep signal "
        f"{'differs' if differs else 'is invariant'} but the corpus "
        f"declares expected_leak={entry.expected_leak}"
    )
    if differs:
        assert scan_program(entry.program()).is_positive, (
            f"{entry.name}: leak visible at sweep scale but the static "
            "scan found no gadget (false negative)"
        )


@pytest.mark.parametrize("entry", CORPUS, ids=[e.name for e in CORPUS])
@pytest.mark.parametrize("config", ["STT{ld+fp}", "Hybrid"])
def test_protected_sweep_signal_is_secret_invariant(entry, config, cells):
    assert sweep_signal(cells[(entry.name, config, 0)]) == sweep_signal(
        cells[(entry.name, config, 1)]
    ), f"{entry.name}: {config} sweep signal depends on the secret"
