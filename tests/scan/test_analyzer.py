"""Unit tests for the speculative-taint window analysis."""

import pytest

from repro.isa.assembler import assemble
from repro.scan.analyzer import (
    CLASS_LATENCY,
    CLASS_STORE,
    CLASS_V1,
    scan_program,
)


def scan(source, **kwargs):
    return scan_program(assemble(source), **kwargs)


class TestSinks:
    def test_classic_v1(self):
        report = scan("""
            bge r1, r2, done
            load r3, r1, 0
            load r5, r3, 4096
        done:
            halt
        """)
        [gadget] = report.gadgets
        assert gadget.gadget_class == CLASS_V1
        assert gadget.source_pcs == (1,)
        assert gadget.sink_pc == 2
        assert gadget.branch_pc == 0

    def test_store_address_is_a_sink(self):
        report = scan("""
            bge r1, r2, done
            load r3, r1, 0
            store r4, r3, 0
        done:
            halt
        """)
        assert report.classes == {CLASS_STORE}

    def test_store_value_is_not_a_sink(self):
        report = scan("""
            bge r1, r2, done
            load r3, r1, 0
            store r3, r4, 0
        done:
            halt
        """)
        assert not report.is_positive

    def test_fp_transmitter_is_a_sink(self):
        report = scan("""
            bge r1, r2, done
            fload f1, r1, 0
            fdiv f2, f3, f1
        done:
            halt
        """)
        assert report.classes == {CLASS_LATENCY}

    def test_fixed_latency_fadd_is_not_a_sink(self):
        report = scan("""
            bge r1, r2, done
            fload f1, r1, 0
            fadd f2, f3, f1
        done:
            halt
        """)
        assert not report.is_positive

    def test_branch_operand_is_not_a_sink(self):
        report = scan("""
            bge r1, r2, done
            load r3, r1, 0
            beq r3, r4, done
        done:
            halt
        """)
        assert not report.is_positive


class TestPropagation:
    def test_alu_chain_propagates(self):
        report = scan("""
            bge r1, r2, done
            load r3, r1, 0
            add r4, r3, r2
            xor r4, r4, r2
            load r5, r4, 0
        done:
            halt
        """)
        [gadget] = report.gadgets
        assert gadget.source_pcs == (1,)
        assert gadget.sink_pc == 4

    def test_immediate_write_kills_taint(self):
        report = scan("""
            bge r1, r2, done
            load r3, r1, 0
            li r3, 0
            load r5, r3, 0
        done:
            halt
        """)
        assert not report.is_positive

    def test_two_hop_chain_reports_both_sources(self):
        report = scan("""
            bge r1, r2, done
            load r3, r1, 0
            load r5, r3, 0
            load r7, r5, 0
        done:
            halt
        """)
        by_sink = {g.sink_pc: g for g in report.gadgets}
        assert by_sink[2].source_pcs == (1,)
        # The second hop's data carries both loads' provenance.
        assert by_sink[3].source_pcs == (1, 2)

    def test_clean_overwrite_kills_taint(self):
        report = scan("""
            bge r1, r2, done
            load r3, r1, 0
            add r3, r2, r4
            load r5, r3, 0
        done:
            halt
        """)
        assert not report.is_positive


class TestWindowShape:
    def test_taken_direction_is_explored(self):
        report = scan("""
            bge r1, r2, body
            halt
        body:
            load r3, r1, 0
            load r5, r3, 0
            halt
        """)
        assert report.classes == {CLASS_V1}

    def test_gadget_behind_jmp_is_found(self):
        report = scan("""
            bge r1, r2, done
            jmp hop
            add r4, r4, r4
        hop:
            load r3, r1, 0
            load r5, r3, 0
        done:
            halt
        """)
        assert report.classes == {CLASS_V1}

    def test_window_bound_excludes_deep_sinks(self):
        pads = "\n".join("            addi r9, r9, 0" for _ in range(10))
        source = f"""
            bge r1, r2, done
            load r3, r1, 0
{pads}
            load r5, r3, 0
        done:
            halt
        """
        assert scan(source, window=5).is_positive is False
        assert scan(source, window=20).is_positive is True

    def test_no_branch_means_no_window(self):
        report = scan("""
            load r3, r1, 0
            load r5, r3, 0
            halt
        """)
        assert not report.is_positive

    def test_loop_terminates_and_finds_gadget(self):
        report = scan("""
        loop:
            load r3, r1, 0
            load r5, r3, 0
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """)
        assert report.classes == {CLASS_V1}

    def test_depth_is_distance_past_branch(self):
        report = scan("""
            bge r1, r2, done
            load r3, r1, 0
            load r5, r3, 0
        done:
            halt
        """)
        [gadget] = report.gadgets
        assert gadget.depth == 2

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            scan("halt", window=0)


class TestFindings:
    def test_findings_carry_checker_and_line(self):
        report = scan_program(
            assemble("""
                bge r1, r2, done
                load r3, r1, 0
                load r5, r3, 0
            done:
                halt
            """),
            path="programs/example",
        )
        [finding] = report.to_findings()
        assert finding.checker == "gadget-v1"
        assert finding.path == "programs/example"
        assert finding.line == 3  # sink pc 2, 1-based
        assert "load@1" in finding.message

    def test_fingerprint_is_stable(self):
        source = """
            bge r1, r2, done
            load r3, r1, 0
            load r5, r3, 0
        done:
            halt
        """
        a = scan_program(assemble(source), path="p").to_findings()
        b = scan_program(assemble(source), path="p").to_findings()
        assert [f.fingerprint for f in a] == [f.fingerprint for f in b]

    def test_default_path_uses_program_name(self):
        program = assemble("halt", name="tiny")
        assert scan_program(program).path == "programs/tiny"
