"""Tests for the statistics plumbing."""

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import Histogram, StatGroup


class TestStatGroup:
    def test_counters_default_to_zero(self):
        stats = StatGroup("x")
        assert stats["nothing"] == 0

    def test_bump_and_set(self):
        stats = StatGroup("x")
        stats.bump("a")
        stats.bump("a", 4)
        stats.set("b", 7)
        assert stats["a"] == 5
        assert stats["b"] == 7

    def test_nested_flattening(self):
        stats = StatGroup("core")
        stats.bump("cycles", 10)
        stats.group("mem").bump("loads", 3)
        stats.group("mem").group("l1").bump("hits", 2)
        flat = stats.as_dict()
        assert flat == {
            "core.cycles": 10,
            "core.mem.loads": 3,
            "core.mem.l1.hits": 2,
        }

    def test_freeze_blocks_new_counters(self):
        stats = StatGroup("x")
        stats.bump("known")
        stats.freeze()
        stats.bump("known")  # existing counters still work
        with pytest.raises(KeyError):
            stats.bump("typo_counter")

    def test_reset_clears_recursively(self):
        stats = StatGroup("x")
        stats.bump("a", 5)
        stats.group("sub").bump("b", 6)
        stats.reset()
        assert stats["a"] == 0
        assert stats.group("sub")["b"] == 0

    def test_group_identity_is_stable(self):
        stats = StatGroup("x")
        assert stats.group("mem") is stats.group("mem")

    def test_freeze_blocks_new_histograms_and_groups(self):
        stats = StatGroup("x")
        stats.histogram("known_hist").add(1)
        stats.group("known_sub")
        stats.freeze()
        stats.histogram("known_hist").add(2)  # existing ones still usable
        stats.group("known_sub")
        with pytest.raises(KeyError, match="typo_hist"):
            stats.histogram("typo_hist")
        with pytest.raises(KeyError, match="typo_sub"):
            stats.group("typo_sub")

    def test_freeze_propagates_to_children(self):
        stats = StatGroup("core")
        sub = stats.group("mem")
        sub.bump("loads")
        stats.freeze()
        with pytest.raises(KeyError):
            sub.bump("typo")

    def test_frozen_set_of_unknown_counter_raises(self):
        stats = StatGroup("x")
        stats.freeze()
        with pytest.raises(KeyError):
            stats.set("occupancy", 3)

    def test_as_dict_exports_histograms_through_nesting(self):
        stats = StatGroup("core")
        hist = stats.group("mem").histogram("latency")
        hist.add(4)
        hist.add(8)
        flat = stats.as_dict()
        assert flat == {
            "core.mem.latency.mean": 6.0,
            "core.mem.latency.count": 2,
        }


class TestHistogram:
    def test_empty(self):
        hist = Histogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(0.5) == 0

    def test_mean_and_total(self):
        hist = Histogram()
        for value in (1, 2, 3, 4):
            hist.add(value)
        assert hist.count == 4
        assert hist.total == 10
        assert hist.mean == 2.5

    def test_weighted_add(self):
        hist = Histogram()
        hist.add(10, weight=3)
        assert hist.count == 3
        assert hist.mean == 10

    def test_percentile_bounds_checked(self):
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.percentile(1.5)
        with pytest.raises(ValueError):
            hist.percentile(-0.1)

    def test_percentile_extremes(self):
        hist = Histogram()
        for value in (3, 7, 7, 9):
            hist.add(value)
        # p=0 asks for "at least 0 mass below": the smallest bucket wins.
        assert hist.percentile(0.0) == 3
        assert hist.percentile(1.0) == 9

    def test_percentile_empty_histogram_is_zero(self):
        hist = Histogram()
        assert hist.percentile(0.0) == 0
        assert hist.percentile(1.0) == 0

    def test_percentile_single_bucket(self):
        hist = Histogram()
        hist.add(42, weight=5)
        for p in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert hist.percentile(p) == 42

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=200))
    def test_percentile_is_monotone_and_within_range(self, values):
        hist = Histogram()
        for value in values:
            hist.add(value)
        p25, p50, p99 = (hist.percentile(p) for p in (0.25, 0.5, 0.99))
        assert min(values) <= p25 <= p50 <= p99 <= max(values)

    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=100))
    def test_mean_matches_reference(self, values):
        hist = Histogram()
        for value in values:
            hist.add(value)
        assert hist.mean == pytest.approx(sum(values) / len(values))
