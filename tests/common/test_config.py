"""Tests for MachineConfig and friends (Table I / Table II encoding)."""

import dataclasses

import pytest

from repro.common.config import (
    AttackModel,
    CacheConfig,
    MachineConfig,
    MemLevel,
    PredictorKind,
    ProtectionConfig,
    ProtectionKind,
)


class TestMemLevel:
    def test_ordering_matches_hierarchy_depth(self):
        assert MemLevel.L1 < MemLevel.L2 < MemLevel.L3 < MemLevel.DRAM

    def test_pretty_names(self):
        assert [level.pretty for level in MemLevel] == ["L1", "L2", "L3", "DRAM"]

    def test_accuracy_semantics(self):
        # Data at L1 with prediction L2: accurate (i <= j) but imprecise.
        actual, predicted = MemLevel.L1, MemLevel.L2
        assert actual <= predicted
        assert actual != predicted


class TestCacheConfig:
    def test_table1_l1d_geometry(self):
        config = MachineConfig().l1d
        assert config.size == 32 * 1024
        assert config.line_size == 64
        assert config.assoc == 8
        assert config.latency == 2
        assert config.num_sets == 64

    def test_table1_l2_and_l3(self):
        machine = MachineConfig()
        assert machine.l2.size == 256 * 1024
        assert machine.l2.latency == 12
        assert machine.l3.size == 2 * 1024 * 1024
        assert machine.l3.latency == 40
        assert machine.l3.slices == 8

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ValueError, match="not divisible"):
            CacheConfig("bad", size=1000, line_size=64, assoc=8, latency=1)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError, match="power of two"):
            CacheConfig("bad", size=3 * 64 * 8, line_size=64, assoc=8, latency=1)


class TestProtectionConfig:
    def test_sdo_requires_predictor(self):
        with pytest.raises(ValueError, match="predictor"):
            ProtectionConfig(kind=ProtectionKind.STT_SDO)

    def test_non_sdo_rejects_predictor(self):
        with pytest.raises(ValueError):
            ProtectionConfig(
                kind=ProtectionKind.STT, predictor=PredictorKind.HYBRID
            )

    @pytest.mark.parametrize(
        "kind,predictor,fp,label",
        [
            (ProtectionKind.UNSAFE, None, False, "Unsafe"),
            (ProtectionKind.STT, None, False, "STT{ld}"),
            (ProtectionKind.STT, None, True, "STT{ld+fp}"),
            (ProtectionKind.STT_SDO, PredictorKind.STATIC_L2, True, "Static L2"),
            (ProtectionKind.STT_SDO, PredictorKind.HYBRID, True, "Hybrid"),
            (ProtectionKind.STT_SDO, PredictorKind.PERFECT, True, "Perfect"),
        ],
    )
    def test_labels_match_table2(self, kind, predictor, fp, label):
        config = ProtectionConfig(kind=kind, predictor=predictor, fp_transmitters=fp)
        assert config.label == label


class TestMachineConfig:
    def test_level_latencies_accumulate(self):
        machine = MachineConfig()
        assert machine.level_latency(MemLevel.L1) == 2
        assert machine.level_latency(MemLevel.L2) == 2 + 12
        assert machine.level_latency(MemLevel.L3) == 2 + 12 + 40
        assert machine.level_latency(MemLevel.DRAM) == 2 + 12 + 40 + 100

    def test_with_protection_is_pure(self):
        machine = MachineConfig()
        secured = machine.with_protection(
            ProtectionConfig(kind=ProtectionKind.STT, attack_model=AttackModel.FUTURISTIC)
        )
        assert machine.protection.kind is ProtectionKind.UNSAFE
        assert secured.protection.kind is ProtectionKind.STT
        assert secured.l1d == machine.l1d

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            MachineConfig().mesh_hop_latency = 5

    def test_table1_pipeline_row(self):
        core = MachineConfig().core
        assert core.fetch_width == 8
        assert core.rob_entries == 192
        assert core.lq_entries == 32
        assert core.sq_entries == 32
