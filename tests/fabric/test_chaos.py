"""Chaos-harness tests, per the PR contract.

Unit layer (fast, in-process): deterministic plan draws, endpoint-class
collapsing, serialization, and the proxy's fault mechanics against a tiny
loopback upstream.

Acceptance layer (``slow``): a 30-cell two-worker sweep routed through a
seeded :class:`ChaosPlan` — drops, delays, duplicates, truncations, and
corruptions on every endpoint class — finishes **bit-identical** to a
local sweep, with zero duplicate executions in the
``REPRO_FABRIC_EXEC_LOG`` ledger and zero double-settled cells in the
scheduler journal.  The un-hardened-transport negative control lives in
``scripts/check_chaos_gate.py`` (CI runs it next to this suite); a
miniature version — raw transport dies on the very first injected fault —
is tested here too.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import pytest

from repro.common.config import AttackModel
from repro.fabric.chaos import (
    FAULT_DROP_REQUEST,
    FAULT_KINDS,
    ChaosPlan,
    ChaosSpec,
    ChaosProxy,
    endpoint_class,
    read_ledger,
)
from repro.fabric.transport import (
    FabricError,
    HttpTransport,
    RetryingTransport,
    TransportPolicy,
)
from repro.sim import CachePolicy, Session
from repro.sim.api import RunMetrics, RunRequest
from repro.sim.cache import cache_key
from repro.sim.configs import config_by_name
from repro.sim.engine import RetryPolicy
from repro.workloads import make_indirect_stream

from tests.fabric.test_e2e import (
    fabric_session,
    free_port,
    reap,
    start_scheduler,
    start_worker,
)


class TestEndpointClass:
    def test_keys_and_sweeps_wildcarded(self):
        key = "a" * 40
        assert (
            endpoint_class("POST", f"/v1/cells/{key}/complete")
            == "POST /v1/cells/<key>/complete"
        )
        assert (
            endpoint_class("GET", "/v1/sweeps/sweep-0003-1a2b/events?since=4")
            == "GET /v1/sweeps/<sweep>/events"
        )
        assert endpoint_class("GET", "/v1/ping") == "GET /v1/ping"

    def test_short_hex_words_not_wildcarded(self):
        # "claim" and "v1" must survive; only long hex digests collapse.
        assert endpoint_class("POST", "/v1/cells/claim") == "POST /v1/cells/claim"


class TestChaosPlan:
    def spec(self, **kwargs):
        kwargs.setdefault("drop_request", 0.2)
        kwargs.setdefault("duplicate", 0.2)
        return ChaosSpec(**kwargs)

    def test_draws_deterministic_and_uniformish(self):
        plan = ChaosPlan(7, {"*": self.spec()})
        draws = [plan.draw("GET /v1/ping", n) for n in range(200)]
        assert draws == [plan.draw("GET /v1/ping", n) for n in range(200)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert len(set(draws)) == 200  # no hash collisions in practice

    def test_fault_schedule_pure_and_seed_sensitive(self):
        specs = {"*": self.spec()}
        a = [ChaosPlan(1, specs).fault_for("GET /v1/ping", n) for n in range(100)]
        b = [ChaosPlan(1, specs).fault_for("GET /v1/ping", n) for n in range(100)]
        c = [ChaosPlan(2, specs).fault_for("GET /v1/ping", n) for n in range(100)]
        assert a == b
        assert a != c
        assert set(a) <= {None, FAULT_DROP_REQUEST, "duplicate"}

    def test_decide_consumes_ordinals_and_honours_limit(self):
        plan = ChaosPlan(3, {"*": self.spec(limit=2)})
        faults = [plan.decide("GET", "/v1/ping")[0] for _ in range(100)]
        injected = [f for f in faults if f is not None]
        assert len(injected) == 2
        # The injected prefix matches the pure schedule; after the limit
        # the endpoint runs clean.
        schedule = [plan.fault_for("GET /v1/ping", n) for n in range(100)]
        assert [f for f in schedule if f is not None][:2] == injected

    def test_round_trip_preserves_schedule(self):
        plan = ChaosPlan(11, {"POST /v1/cells/claim": self.spec(truncate=0.1)})
        clone = ChaosPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone.seed == plan.seed
        assert clone.specs == plan.specs
        for n in range(50):
            assert clone.fault_for("POST /v1/cells/claim", n) == plan.fault_for(
                "POST /v1/cells/claim", n
            )

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="sum"):
            ChaosSpec(drop_request=0.6, duplicate=0.6)
        with pytest.raises(ValueError, match="in \\[0, 1\\]"):
            ChaosSpec(corrupt=1.5)

    def test_unmatched_endpoint_without_catchall_runs_clean(self):
        plan = ChaosPlan(5, {"GET /v1/ping": self.spec()})
        assert plan.decide("POST", "/v1/cells/claim") == (None, None)


def upstream_server():
    """A tiny JSON upstream that counts hits per (method, path)."""
    hits = {}
    lock = threading.Lock()

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *_args):
            pass

        def _serve(self):
            length = int(self.headers.get("Content-Length", 0))
            self.rfile.read(length)
            with lock:
                key = (self.command, self.path)
                hits[key] = hits.get(key, 0) + 1
                count = hits[key]
            body = json.dumps({"path": self.path, "hits": count}).encode()
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        do_GET = do_POST = _serve

    server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    server.daemon_threads = True
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, hits


@pytest.fixture()
def upstream():
    server, hits = upstream_server()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        yield url, hits
    finally:
        server.shutdown()
        server.server_close()


def proxy_for(upstream_url, specs, *, seed=0, ledger=None):
    return ChaosProxy(upstream_url, ChaosPlan(seed, specs), ledger=ledger)


def seed_where(specs, endpoint, fault, *, ordinal=0, limit=10_000):
    """The first seed whose plan injects ``fault`` on the ``ordinal``-th
    request of ``endpoint`` — how tests force a specific first fault."""
    for seed in range(limit):
        if ChaosPlan(seed, specs).fault_for(endpoint, ordinal) == fault:
            return seed
    raise AssertionError(f"no seed under {limit} injects {fault} on {endpoint}")


class TestChaosProxy:
    def test_clean_plan_is_transparent(self, upstream):
        url, hits = upstream
        with proxy_for(url, {}) as proxy:
            reply = HttpTransport(proxy.url).get_json("/v1/ping")
        assert reply == {"path": "/v1/ping", "hits": 1}
        assert hits[("GET", "/v1/ping")] == 1
        assert proxy.stats["faults"] == 0

    def test_drop_request_never_reaches_upstream(self, upstream, tmp_path):
        url, hits = upstream
        specs = {"*": ChaosSpec(drop_request=1.0, limit=1)}
        ledger = tmp_path / "faults.jsonl"
        with proxy_for(url, specs, ledger=ledger) as proxy:
            transport = HttpTransport(proxy.url)
            with pytest.raises(FabricError):
                transport.get_json("/v1/ping")
            # Limit exhausted: the next request passes clean.
            assert transport.get_json("/v1/ping")["hits"] == 1
        assert ("GET", "/v1/ping") in hits
        (entry,) = read_ledger(ledger)
        assert entry["fault"] == "drop-request"
        assert entry["endpoint"] == "GET /v1/ping"

    def test_duplicate_processed_twice_upstream(self, upstream):
        url, hits = upstream
        specs = {"*": ChaosSpec(duplicate=1.0, limit=1)}
        with proxy_for(url, specs) as proxy:
            reply = HttpTransport(proxy.url).get_json("/v1/ping")
        # The client saw the *second* response; upstream processed both.
        assert reply["hits"] == 2
        assert hits[("GET", "/v1/ping")] == 2

    def test_drop_response_processed_but_unanswered(self, upstream):
        url, hits = upstream
        specs = {"*": ChaosSpec(drop_response=1.0, limit=1)}
        with proxy_for(url, specs) as proxy:
            with pytest.raises(FabricError):
                HttpTransport(proxy.url).get_json("/v1/ping")
        assert hits[("GET", "/v1/ping")] == 1  # the nasty case: it DID run

    def test_truncate_surfaces_as_transport_error(self, upstream):
        url, _ = upstream
        specs = {"*": ChaosSpec(truncate=1.0, limit=1)}
        with proxy_for(url, specs) as proxy:
            with pytest.raises(FabricError):
                HttpTransport(proxy.url).get_json("/v1/ping")

    def test_corrupt_keeps_framing_breaks_body(self, upstream):
        url, _ = upstream
        specs = {"*": ChaosSpec(corrupt=1.0, limit=1)}
        with proxy_for(url, specs) as proxy:
            status, text, headers = HttpTransport(proxy.url).exchange(
                "GET", "/v1/ping"
            )
        assert status == 200  # well-framed...
        assert "application/json" in headers["content-type"]
        with pytest.raises(ValueError):
            json.loads(text)  # ...full of garbage

    def test_retrying_transport_survives_what_raw_does_not(self, upstream):
        """The miniature negative control: same plan, raw transport dies on
        the first injected fault, hardened transport absorbs it."""
        url, _ = upstream
        specs = {"*": ChaosSpec(drop_request=0.4)}
        seed = seed_where(specs, "GET /v1/ping", FAULT_DROP_REQUEST)

        with proxy_for(url, specs, seed=seed) as proxy:
            raw = RetryingTransport(
                proxy.url, policy=TransportPolicy(retries=0, breaker_threshold=0)
            )
            with pytest.raises(FabricError):
                raw.get_json("/v1/ping")

        with proxy_for(url, specs, seed=seed) as proxy:
            hardened = RetryingTransport(
                proxy.url, policy=TransportPolicy(backoff_base=0.01), sleep=lambda _: None
            )
            assert hardened.get_json("/v1/ping")["path"] == "/v1/ping"
            assert hardened.stats["retries"] >= 1


# --------------------------------------------------------------- acceptance

CONFIGS = [config_by_name("Unsafe"), config_by_name("Hybrid"), config_by_name("SpecBox")]
MODELS = [AttackModel.SPECTRE, AttackModel.FUTURISTIC]


def thirty_cells():
    """5 workloads x 3 configs x 2 models = the contract's 30 cells."""
    workloads = [
        make_indirect_stream(
            f"chaos-{i}", table_words=64, iterations=12, seed=200 + i
        )
        for i in range(5)
    ]
    return [
        RunRequest(
            workload=workload,
            config=config,
            attack_model=model,
            max_instructions=2_000,
        )
        for workload in workloads
        for config in CONFIGS
        for model in MODELS
    ]


def soak_plan():
    """Every fault class on every endpoint class, with per-class limits so
    the sweep terminates in bounded wall-clock.  Claim faults are capped
    hardest: each lost-claim-response burns one lease expiry (and one cell
    retry-budget attempt) to heal."""
    all_faults = dict(
        drop_request=0.06,
        drop_response=0.05,
        delay=0.05,
        duplicate=0.05,
        truncate=0.05,
        corrupt=0.04,
        delay_seconds=0.02,
    )
    return ChaosPlan(
        seed=20260808,
        specs={
            "POST /v1/cells/claim": ChaosSpec(**all_faults, limit=8),
            "POST /v1/cells/<key>/complete": ChaosSpec(**all_faults, limit=8),
            "*": ChaosSpec(**all_faults, limit=30),
        },
    )


def done_record_counts(state_dir):
    counts = {}
    path = Path(state_dir) / "queue.jsonl"
    for line in path.read_text().splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if record.get("kind") == "done":
            counts[record["key"]] = counts.get(record["key"], 0) + 1
    return counts


@pytest.mark.slow
def test_thirty_cell_sweep_through_chaos_matches_local(tmp_path):
    requests = thirty_cells()
    assert len(requests) == 30
    exec_ledger = tmp_path / "exec.ledger"
    fault_ledger = tmp_path / "faults.jsonl"
    state_dir = tmp_path / "state"

    port = free_port()
    scheduler = start_scheduler(state_dir, port)
    proxy = ChaosProxy(
        f"http://127.0.0.1:{port}", soak_plan(), ledger=fault_ledger
    )
    proxy.start()
    workers = [
        start_worker(
            proxy.url,
            tmp_path / f"worker-{i}",
            env_extra={"REPRO_FABRIC_EXEC_LOG": str(exec_ledger)},
        )
        for i in range(2)
    ]
    try:
        retry = RetryPolicy(max_retries=5, backoff_base=0.01)
        with fabric_session(proxy.url, retries=retry) as session:
            outcomes = session.run_many(requests)
    finally:
        reap(scheduler, *workers)
        proxy.stop()

    assert all(isinstance(o, RunMetrics) for o in outcomes), [
        str(o) for o in outcomes if not isinstance(o, RunMetrics)
    ]

    # Chaos actually happened — the ledger proves what was survived.
    faults = read_ledger(fault_ledger)
    assert len(faults) >= 10, faults
    assert len({f["fault"] for f in faults}) >= 3
    assert {f["fault"] for f in faults} <= set(FAULT_KINDS)

    # Zero duplicate executions: every cell ran at most once, fleet-wide.
    executed = {}
    for line in exec_ledger.read_text().splitlines():
        key = line.split()[0]
        executed[key] = executed.get(key, 0) + 1
    duplicates = {k: n for k, n in executed.items() if n > 1}
    assert not duplicates, f"cells executed more than once: {duplicates}"

    # Zero double-settled cells in the scheduler's durable journal.
    double_settled = {
        k: n for k, n in done_record_counts(state_dir).items() if n > 1
    }
    assert not double_settled, f"double-settled cells: {double_settled}"

    # And the headline guarantee: chaos changed nothing about the results.
    with Session(cache=CachePolicy(enabled=False)) as local:
        reference = local.run_many(requests)
    assert [o.to_dict() for o in outcomes] == [o.to_dict() for o in reference]

    # Every executed key corresponds to a submitted cell.
    submitted = {cache_key(r) for r in requests}
    assert set(executed) <= submitted
