"""Worker-agent hardening tests: artifact payloads that lie (malformed,
checksum-mismatched), idempotent completion delivery, and prompt shutdown
out of the delivery retry loop — all against duck-typed fake transports,
no sockets and no subprocesses."""

import threading
import time

import pytest

from repro.common.config import AttackModel
from repro.fabric.transport import FabricError
from repro.fabric.wire import payload_crc32
from repro.fabric.worker import WorkerAgent
from repro.sim.api import RunMetrics


def metrics(cycles=123):
    return RunMetrics(
        workload="wl",
        config="Hybrid",
        attack_model=AttackModel.SPECTRE,
        cycles=cycles,
        instructions=80,
    )


class FakeTransport:
    """Duck-typed stand-in for the worker's transport: scripted artifact
    replies and a scripted completion behaviour."""

    def __init__(self, *, artifact=None, complete_failures=0):
        self.artifact = artifact
        self.complete_failures = complete_failures
        self.completions = []

    def get_json_or_none(self, path):
        if callable(self.artifact):
            return self.artifact()
        return self.artifact

    def post_json(self, path, payload, *, idempotent=False):
        if "/complete" in path:
            self.completions.append((path, payload, idempotent))
            if self.complete_failures > 0:
                self.complete_failures -= 1
                raise FabricError("scripted delivery failure")
            return {"decision": "done"}
        return {}


def agent_with(transport, **kwargs):
    agent = WorkerAgent("http://127.0.0.1:1", worker_id="w-test", **kwargs)
    agent.transport = transport
    return agent


class TestFetchArtifact:
    def test_good_artifact_with_matching_crc(self):
        payload = metrics().to_dict()
        transport = FakeTransport(
            artifact={"metrics": payload, "crc32": payload_crc32(payload)}
        )
        agent = agent_with(transport)
        assert agent._fetch_artifact("k") == metrics()
        assert agent.stats["artifact_corrupt"] == 0

    def test_crc_mismatch_is_a_miss(self):
        payload = metrics().to_dict()
        transport = FakeTransport(
            artifact={"metrics": payload, "crc32": payload_crc32(payload) ^ 1}
        )
        agent = agent_with(transport)
        assert agent._fetch_artifact("k") is None
        assert agent.stats["artifact_corrupt"] == 1

    @pytest.mark.parametrize(
        "payload",
        [
            {},  # missing "metrics" entirely
            {"metrics": "garbage"},  # wrong type
            {"metrics": {"workload": "wl"}},  # missing required fields
            {"metrics": {"workload": "wl", "config": "c", "attack_model": "??",
                         "cycles": 1, "instructions": 1}},  # bad enum
        ],
    )
    def test_malformed_payload_is_a_miss_not_a_crash(self, payload):
        """Regression: a malformed artifact payload used to escape
        ``_fetch_artifact`` and kill the worker loop; it is a miss now."""
        agent = agent_with(FakeTransport(artifact=payload))
        assert agent._fetch_artifact("k") is None
        assert agent.stats["artifact_corrupt"] == 1

    def test_miss_falls_through_to_execution(self):
        agent = agent_with(FakeTransport(artifact={}))  # malformed → miss
        executed = []
        agent._execute = lambda key, cell: (executed.append(key) or (metrics(), 0.5))
        outcome, wall = agent._resolve("k", {"key": "k", "request": {}})
        assert executed == ["k"]
        assert outcome == metrics()


class TestDeliver:
    def test_token_stable_across_delivery_retries(self):
        """The idempotency token must not change between re-sends of the
        same execution — that is what lets the scheduler deduplicate."""
        transport = FakeTransport(complete_failures=2)
        agent = agent_with(transport, poll_interval=0.001)
        agent._deliver("k", metrics(), 0.1, attempt=3)
        assert len(transport.completions) == 3
        tokens = {payload["token"] for _, payload, _ in transport.completions}
        assert tokens == {"w-test:k:3"}
        assert all(idempotent for _, _, idempotent in transport.completions)
        assert agent.stats["delivery_failures"] == 0

    def test_distinct_attempts_get_distinct_tokens(self):
        transport = FakeTransport()
        agent = agent_with(transport)
        agent._deliver("k", metrics(), 0.1, attempt=1)
        agent._deliver("k", metrics(), 0.1, attempt=2)
        first, second = (p["token"] for _, p, _ in transport.completions)
        assert first != second

    def test_stop_interrupts_backoff_promptly(self):
        """Regression for the satellite: ``_deliver`` used ``time.sleep``,
        so ``stop()`` could stall shutdown by a full backoff interval.  With
        ``_stop.wait`` the retry loop exits as soon as stop is set."""

        class AlwaysFailing(FakeTransport):
            def post_json(self, path, payload, *, idempotent=False):
                raise FabricError("scheduler gone")

        agent = agent_with(AlwaysFailing())
        # Make the schedule long enough that a non-interruptible sleep
        # would visibly stall the join below.
        agent.transport_policy = agent.transport_policy.__class__(
            backoff_base=30.0, backoff_max=30.0
        )
        thread = threading.Thread(
            target=agent._deliver, args=("k", metrics(), 0.1), daemon=True
        )
        started = time.monotonic()
        thread.start()
        time.sleep(0.05)
        agent.stop()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert time.monotonic() - started < 2.0
        assert agent.stats["delivery_failures"] == 1
