"""Scheduler service tests: the HTTP API, event streaming, the shared
artifact store, lease expiry, and client/worker integration — all over a
real loopback ``ThreadingHTTPServer``, single process."""

import threading

import pytest

from repro.common.config import AttackModel
from repro.fabric.client import FabricClient
from repro.fabric.scheduler import FabricScheduler, make_server
from repro.fabric.transport import FabricError, HttpTransport
from repro.fabric.wire import WIRE_SCHEMA_VERSION, envelope
from repro.fabric.worker import WorkerAgent
from repro.sim.api import RunMetrics, RunRequest
from repro.sim.cache import cache_key
from repro.sim.configs import config_by_name
from repro.sim.engine import RetryPolicy
from repro.sim.events import RunEvent
from repro.sim.policies import ExecutionPolicy
from repro.workloads import make_indirect_stream

CONFIGS = [config_by_name("Unsafe"), config_by_name("Hybrid")]


def requests_for(names=("alpha", "beta")):
    return [
        RunRequest(
            workload=make_indirect_stream(
                name, table_words=64, iterations=16, seed=i
            ),
            config=config,
            attack_model=AttackModel.SPECTRE,
            max_instructions=2_000,
        )
        for i, name in enumerate(names)
        for config in CONFIGS
    ]


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture()
def fabric(tmp_path):
    """A live loopback scheduler; yields (url, scheduler, state_dir)."""
    scheduler = FabricScheduler(tmp_path / "state", lease_seconds=5.0)
    server = make_server(scheduler, port=0)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.02}, daemon=True
    )
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        yield url, scheduler
    finally:
        server.shutdown()
        server.server_close()
        scheduler.close()
        thread.join(timeout=5)


def run_worker(url, tmp_path, **kwargs):
    kwargs.setdefault("max_idle_seconds", 1.0)
    kwargs.setdefault("poll_interval", 0.02)
    agent = WorkerAgent(url, cache_dir=tmp_path / "worker-cache", **kwargs)
    thread = threading.Thread(target=agent.run_forever, daemon=True)
    thread.start()
    return agent, thread


class TestHttpSurface:
    def test_ping(self, fabric):
        url, _ = fabric
        reply = HttpTransport(url).get_json("/v1/ping")
        assert reply["ok"] is True
        assert reply["schema"] == WIRE_SCHEMA_VERSION

    def test_unknown_route_404(self, fabric):
        url, _ = fabric
        status, _ = HttpTransport(url).request("GET", "/v1/nonsense")
        assert status == 404

    def test_unknown_sweep_404(self, fabric):
        url, _ = fabric
        status, _ = HttpTransport(url).request("GET", "/v1/sweeps/sweep-nope")
        assert status == 404

    def test_newer_wire_schema_rejected_400(self, fabric):
        url, _ = fabric
        status, body = HttpTransport(url).request(
            "POST",
            "/v1/cells/claim",
            {"schema": WIRE_SCHEMA_VERSION + 1, "worker": "w"},
        )
        assert status == 400
        assert "newer" in body

    def test_missing_artifact_404(self, fabric):
        url, _ = fabric
        assert HttpTransport(url).get_json_or_none("/v1/artifacts/" + "0" * 8) is None


class TestSweepFlow:
    def test_client_worker_round_trip(self, fabric, tmp_path):
        url, _ = fabric
        run_worker(url, tmp_path)
        requests = requests_for()
        events = []
        client = FabricClient(url, poll_interval=0.02)
        outcomes = client.run_many(requests, emit=events.append)

        assert all(isinstance(o, RunMetrics) for o in outcomes)
        assert [o.workload for o in outcomes] == [r.workload.name for r in requests]
        kinds = [e.kind for e in events]
        assert kinds.count("queued") == len(requests)
        terminal = [k for k in kinds if k in ("finished", "cache_hit", "failed")]
        assert len(terminal) == len(requests)
        assert all(isinstance(e, RunEvent) for e in events)

    def test_artifact_store_settles_resubmission(self, fabric, tmp_path):
        url, scheduler = fabric
        run_worker(url, tmp_path)
        requests = requests_for(("gamma",))
        client = FabricClient(url, poll_interval=0.02)
        first = client.run_many(requests)

        # Second submission of the same cells: answered from the artifact
        # store without any pending work reaching the queue.
        events = []
        second = client.run_many(requests, emit=events.append)
        assert [o.to_dict() for o in second] == [o.to_dict() for o in first]
        assert {e.kind for e in events} == {"queued", "cache_hit"}
        assert scheduler.queue.pending_count() == 0

    def test_artifact_endpoint_serves_completed_cell(self, fabric, tmp_path):
        url, _ = fabric
        run_worker(url, tmp_path)
        request = requests_for(("delta",))[0]
        client = FabricClient(url, poll_interval=0.02)
        (outcome,) = client.run_many([request])
        payload = HttpTransport(url).get_json(
            f"/v1/artifacts/{cache_key(request)}"
        )
        assert RunMetrics.from_dict(payload["metrics"]) == outcome

    def test_execution_policy_rides_submission(self, fabric):
        url, scheduler = fabric
        execution = ExecutionPolicy(
            timeout=60.0, retries=RetryPolicy(max_retries=2, backoff_base=0.01)
        )
        client = FabricClient(url, execution=execution)
        reply = client.submit(requests_for(("epsilon",)))
        cell = scheduler.queue.cells[reply["keys"][0]]
        assert cell.timeout == 60.0
        assert cell.retry.max_retries == 2

    def test_empty_batch_short_circuits(self, fabric):
        url, _ = fabric
        assert FabricClient(url).run_many([]) == []

    def test_closed_client_refuses(self, fabric):
        url, _ = fabric
        client = FabricClient(url)
        client.close()
        with pytest.raises(FabricError, match="closed"):
            client.run_many(requests_for(("zeta",)))


class TestEventStream:
    def submit(self, url, names=("eta",)):
        client = FabricClient(url, poll_interval=0.02)
        reply = client.submit(requests_for(names))
        return client, reply["sweep_id"]

    def test_since_pagination(self, fabric):
        url, _ = fabric
        _, sweep_id = self.submit(url)
        transport = HttpTransport(url)
        all_events = transport.get_lines(f"/v1/sweeps/{sweep_id}/events")
        assert [e["seq"] for e in all_events] == list(range(len(all_events)))
        tail = transport.get_lines(f"/v1/sweeps/{sweep_id}/events?since=1")
        assert tail == all_events[1:]

    def test_since_past_end_clamped(self, fabric):
        url, _ = fabric
        _, sweep_id = self.submit(url)
        transport = HttpTransport(url)
        assert transport.get_lines(f"/v1/sweeps/{sweep_id}/events?since=9999") == []


class TestLeaseExpiryEndToEnd:
    """Drive the scheduler core with a fake clock (no HTTP): a vanished
    worker's cell is re-queued and eventually settles as WorkerLost."""

    def test_expiry_requeues_and_narrates(self, tmp_path):
        clock = FakeClock()
        scheduler = FabricScheduler(
            tmp_path / "state", lease_seconds=5.0, clock=clock
        )
        try:
            reply = scheduler.submit(
                envelope(
                    requests=[r.to_dict() for r in requests_for(("theta",))[:1]],
                    execution=ExecutionPolicy(
                        retries=RetryPolicy(max_retries=1, backoff_base=0.01)
                    ).to_dict(),
                )
            )
            sweep_id = reply["sweep_id"]
            claimed = scheduler.claim(envelope(worker="doomed"))
            assert claimed["cell"] is not None

            clock.now = 6.0  # lease (5s) expired; next status call notices
            status = scheduler.status(sweep_id)
            assert status["pending"] == 1
            kinds = [e["kind"] for e in scheduler.events_since(sweep_id, 0)]
            assert "retrying" in kinds

            # Second claim + second expiry exhausts the 1-retry budget.
            assert scheduler.claim(envelope(worker="doomed-2"))["cell"] is not None
            clock.now = 12.0
            status = scheduler.status(sweep_id, include_outcomes=True)
            assert status["complete"] is True
            (outcome,) = status["outcomes"]
            assert outcome["kind"] == "failure"
            assert outcome["payload"]["error_type"] == "WorkerLost"
            assert outcome["payload"]["attempts"] == 2
        finally:
            scheduler.close()

    def test_restart_regenerates_event_history(self, tmp_path):
        clock = FakeClock()
        scheduler = FabricScheduler(tmp_path / "state", clock=clock)
        reply = scheduler.submit(
            envelope(
                requests=[r.to_dict() for r in requests_for(("iota",))[:2]],
                execution=None,
            )
        )
        sweep_id = reply["sweep_id"]
        claimed = scheduler.claim(envelope(worker="w"))
        key = claimed["cell"]["key"]
        metrics = RunMetrics(
            workload="iota",
            config="Unsafe",
            attack_model=AttackModel.SPECTRE,
            cycles=10,
            instructions=8,
        )
        from repro.fabric.wire import encode_outcome

        scheduler.complete(key, envelope(worker="w", outcome=encode_outcome(metrics)))
        scheduler.close()

        reborn = FabricScheduler(tmp_path / "state", clock=clock)
        try:
            kinds = [e["kind"] for e in reborn.events_since(sweep_id, 0)]
            # Regenerated narration: both cells queued, the settled one
            # terminal again (at-least-once delivery).
            assert kinds.count("queued") == 2
            assert kinds.count("finished") == 1
            status = reborn.status(sweep_id)
            assert status["done"] == 1
            assert status["pending"] == 1
        finally:
            reborn.close()


class TestHardening:
    """Wire-v3 hardening: admission control, /v1/health, idempotency-token
    dedup on submissions and completions, artifact CRC-32."""

    def submit_payload(self, names=("lam",), token=None, retries=None):
        execution = None
        if retries is not None:
            execution = ExecutionPolicy(retries=retries).to_dict()
        payload = envelope(
            requests=[r.to_dict() for r in requests_for(names)],
            execution=execution,
        )
        if token is not None:
            payload["token"] = token
        return payload

    def shaped_payload(self, iterations, token=None):
        """A 2-cell submission whose *shape* (not just name) varies with
        ``iterations`` — names are rebranded out of the content-addressed
        cache key, so distinct shapes are what make distinct cells."""
        from repro.workloads import make_indirect_stream

        requests = [
            RunRequest(
                workload=make_indirect_stream(
                    f"wl-{iterations}", table_words=64, iterations=iterations, seed=0
                ),
                config=config,
                attack_model=AttackModel.SPECTRE,
                max_instructions=2_000,
            )
            for config in CONFIGS
        ]
        payload = envelope(requests=[r.to_dict() for r in requests], execution=None)
        if token is not None:
            payload["token"] = token
        return payload

    def test_admission_full_raises_then_admits_after_drain(self, tmp_path):
        scheduler = FabricScheduler(tmp_path / "state", max_pending=2)
        try:
            from repro.fabric.scheduler import AdmissionFull

            scheduler.submit(self.shaped_payload(16))  # 2 cells pending
            with pytest.raises(AdmissionFull) as excinfo:
                scheduler.submit(self.shaped_payload(18))
            assert excinfo.value.retry_after > 0
            # Drain one cell; the *resubmission* of the same two cells is
            # admitted (its keys are already known, so incoming is 0).
            claimed = scheduler.claim(envelope(worker="w"))
            from repro.fabric.wire import encode_outcome

            scheduler.complete(
                claimed["cell"]["key"],
                envelope(
                    worker="w",
                    outcome=encode_outcome(
                        RunMetrics(
                            workload="wl-16",
                            config="Unsafe",
                            attack_model=AttackModel.SPECTRE,
                            cycles=1,
                            instructions=1,
                        )
                    ),
                ),
            )
            scheduler.submit(self.shaped_payload(16))
        finally:
            scheduler.close()

    def test_admission_over_http_is_429_with_retry_after(self, tmp_path):
        scheduler = FabricScheduler(tmp_path / "state", max_pending=1)
        server = make_server(scheduler, port=0)
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.02}, daemon=True
        )
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            transport = HttpTransport(url)
            status, _, _ = transport.exchange(
                "POST", "/v1/sweeps", self.submit_payload(("xi",))
            )
            assert status == 429
            _, text, headers = transport.exchange(
                "POST", "/v1/sweeps", self.submit_payload(("xi",))
            )
            assert float(headers["retry-after"]) >= 1
            assert "max_pending" in text
        finally:
            server.shutdown()
            server.server_close()
            scheduler.close()
            thread.join(timeout=5)

    def test_health_endpoint(self, fabric):
        url, scheduler = fabric
        FabricClient(url).submit(requests_for(("omicron",)))
        reply = HttpTransport(url).get_json("/v1/health")
        assert reply["ok"] is True
        assert reply["pending"] == len(CONFIGS)
        assert reply["leased"] == 0
        assert reply["done"] == 0
        assert reply["uptime"] >= 0
        assert reply["max_pending"] is None
        assert reply["lease_seconds"] == scheduler.lease_seconds
        assert reply["compactions"] == scheduler.queue.compactions

    def test_duplicate_submission_token_resolves_to_original_sweep(self, fabric):
        url, scheduler = fabric
        transport = HttpTransport(url)
        first = transport.post_json(
            "/v1/sweeps", self.submit_payload(("pi",), token="sub-1")
        )
        again = transport.post_json(
            "/v1/sweeps", self.submit_payload(("pi",), token="sub-1")
        )
        assert again["sweep_id"] == first["sweep_id"]
        assert again["keys"] == first["keys"]
        assert again.get("deduplicated") is True
        assert len(scheduler.queue.sweeps) == 1

    def test_duplicate_completion_token_replays_without_renarration(self, tmp_path):
        scheduler = FabricScheduler(tmp_path / "state")
        try:
            from repro.fabric.wire import encode_outcome

            reply = scheduler.submit(self.submit_payload(("rho",)))
            sweep_id = reply["sweep_id"]
            claimed = scheduler.claim(envelope(worker="w"))
            key = claimed["cell"]["key"]
            outcome = RunMetrics(
                workload="rho",
                config="Unsafe",
                attack_model=AttackModel.SPECTRE,
                cycles=10,
                instructions=8,
            )
            completion = envelope(
                worker="w", outcome=encode_outcome(outcome), token="w:k:1"
            )
            first = scheduler.complete(key, completion)
            assert first["decision"] == "done"
            events_before = scheduler.events_since(sweep_id, 0)

            replay = scheduler.complete(key, completion)
            assert replay["decision"] == "done"
            assert replay.get("replayed") is True
            # The duplicated delivery must not re-narrate the terminal event.
            assert scheduler.events_since(sweep_id, 0) == events_before
        finally:
            scheduler.close()

    def test_artifact_payload_carries_matching_crc(self, fabric, tmp_path):
        from repro.fabric.wire import payload_crc32

        url, _ = fabric
        run_worker(url, tmp_path)
        request = requests_for(("sigma",))[0]
        client = FabricClient(url, poll_interval=0.02)
        client.run_many([request])
        payload = HttpTransport(url).get_json(f"/v1/artifacts/{cache_key(request)}")
        assert payload["crc32"] == payload_crc32(payload["metrics"])


class TestWorkerCaches:
    def test_local_cache_answers_without_execution(self, fabric, tmp_path):
        url, scheduler = fabric
        requests = requests_for(("kappa",))
        client = FabricClient(url, poll_interval=0.02)

        agent1, thread1 = run_worker(url, tmp_path)
        client.run_many(requests)
        thread1.join(timeout=10)
        assert agent1.stats["executed"] == len(requests)

        # Wipe the scheduler's artifact store, keep the worker-local cache:
        # a re-submission must be answered from the worker's cache, with
        # zero simulator executions.
        import shutil

        shutil.rmtree(scheduler.store.root)
        for cell in list(scheduler.queue.cells.values()):
            cell.state = "pending"
            cell.outcome = None
        agent2, thread2 = run_worker(url, tmp_path)
        client.run_many(requests)
        thread2.join(timeout=10)
        assert agent2.stats["executed"] == 0
        assert agent2.stats["local_cache_hits"] == len(requests)
