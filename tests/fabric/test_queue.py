"""Unit tests for the durable fabric queue: leases, retries, crash
recovery, torn journals."""

import dataclasses
import json

import pytest

from repro.common.config import AttackModel
from repro.fabric.queue import FabricQueue, worker_lost_failure
from repro.fabric.wire import CELL_DONE, CELL_LEASED, CELL_PENDING
from repro.sim.api import FAILURE_CRASH, FAILURE_HANG, RunFailure, RunMetrics
from repro.sim.engine import RetryPolicy

RETRY_ONCE = RetryPolicy(max_retries=1, backoff_base=0.01)
NO_RETRY = RetryPolicy(max_retries=0)


def request_dict(name="wl", config="Hybrid"):
    """The minimal request shape the queue itself touches (full RunRequest
    bodies ride through it opaquely — the scheduler tests cover those)."""
    return {
        "workload": {"name": name},
        "config": {"name": config},
        "attack_model": "spectre",
    }


def metrics(name="wl", config="Hybrid", cycles=100):
    return RunMetrics(
        workload=name,
        config=config,
        attack_model=AttackModel.SPECTRE,
        cycles=cycles,
        instructions=80,
    )


def failure(name="wl", config="Hybrid", kind=FAILURE_CRASH, attempts=1):
    return RunFailure(
        workload=name,
        config=config,
        attack_model=AttackModel.SPECTRE,
        error_type="RuntimeError",
        message="boom",
        kind=kind,
        attempts=attempts,
    )


def make_queue(tmp_path, *, retry=NO_RETRY, cells=("k1", "k2"), timeout=None):
    queue = FabricQueue(tmp_path / "queue.jsonl")
    queue.submit(
        "sweep-0",
        [(key, request_dict(name=f"wl-{key}")) for key in cells],
        retry=retry,
        timeout=timeout,
    )
    return queue


class TestLifecycle:
    def test_submit_then_claim_fifo(self, tmp_path):
        queue = make_queue(tmp_path)
        first = queue.claim("w1", lease_seconds=10, now=0.0)
        second = queue.claim("w2", lease_seconds=10, now=0.0)
        assert (first.key, second.key) == ("k1", "k2")
        assert first.state == CELL_LEASED
        assert first.attempts == 1
        assert queue.claim("w3", lease_seconds=10, now=0.0) is None

    def test_duplicate_sweep_id_rejected(self, tmp_path):
        queue = make_queue(tmp_path)
        with pytest.raises(ValueError, match="already submitted"):
            queue.submit("sweep-0", [("k9", request_dict())], retry=NO_RETRY)

    def test_complete_settles_and_orders_outcomes(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.claim("w1", lease_seconds=10, now=0.0)
        queue.claim("w1", lease_seconds=10, now=0.0)
        assert queue.complete("k2", metrics(cycles=2)) == "done"
        assert queue.complete("k1", metrics(cycles=1)) == "done"
        outcomes = queue.sweep_outcomes("sweep-0")
        assert [o.cycles for o in outcomes] == [1, 2]

    def test_duplicate_completion_is_stale(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.claim("w1", lease_seconds=10, now=0.0)
        assert queue.complete("k1", metrics()) == "done"
        assert queue.complete("k1", metrics(cycles=999)) == "stale"
        assert queue.cells["k1"].outcome.cycles == 100

    def test_shared_cell_across_sweeps_settles_both(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("sweep-1", [("k1", request_dict())], retry=NO_RETRY)
        queue.claim("w1", lease_seconds=10, now=0.0)
        queue.complete("k1", metrics())
        assert queue.sweep_outcomes("sweep-1")[0] is not None

    def test_heartbeat_extends_only_own_lease(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.claim("w1", lease_seconds=10, now=0.0)
        assert queue.heartbeat("k1", "w1", lease_seconds=10, now=5.0)
        assert not queue.heartbeat("k1", "intruder", lease_seconds=10, now=5.0)
        assert not queue.heartbeat("k2", "w1", lease_seconds=10, now=5.0)
        assert queue.cells["k1"].lease.deadline == 15.0


class TestLeaseExpiry:
    def test_expired_lease_requeues_with_budget(self, tmp_path):
        queue = make_queue(tmp_path, retry=RETRY_ONCE, cells=("k1",))
        queue.claim("w1", lease_seconds=10, now=0.0)
        expired = queue.expire_leases(now=10.1)
        assert [c.key for c in expired] == ["k1"]
        cell = queue.cells["k1"]
        assert cell.state == CELL_PENDING
        assert cell.attempts == 1
        assert cell.last_failure.error_type == "WorkerLost"
        assert cell.last_failure.kind == FAILURE_CRASH

    def test_live_lease_not_expired(self, tmp_path):
        queue = make_queue(tmp_path, cells=("k1",))
        queue.claim("w1", lease_seconds=10, now=0.0)
        assert queue.expire_leases(now=9.9) == []
        assert queue.cells["k1"].state == CELL_LEASED

    def test_expiry_without_budget_settles_worker_lost(self, tmp_path):
        queue = make_queue(tmp_path, retry=NO_RETRY, cells=("k1",))
        queue.claim("w1", lease_seconds=10, now=0.0)
        queue.expire_leases(now=11.0)
        cell = queue.cells["k1"]
        assert cell.done
        assert isinstance(cell.outcome, RunFailure)
        assert cell.outcome.error_type == "WorkerLost"

    def test_worker_lost_failure_identity_from_request(self, tmp_path):
        queue = make_queue(tmp_path, cells=("k1",))
        cell = queue.claim("w9", lease_seconds=10, now=0.0)
        lost = worker_lost_failure(cell, "w9")
        assert lost.workload == "wl-k1"
        assert "w9" in lost.message


class TestRetries:
    def test_transient_failure_requeues_then_settles(self, tmp_path):
        queue = make_queue(tmp_path, retry=RETRY_ONCE, cells=("k1",))
        queue.claim("w1", lease_seconds=10, now=0.0)
        assert queue.complete("k1", failure(kind=FAILURE_CRASH)) == "retry"
        assert queue.cells["k1"].state == CELL_PENDING
        queue.claim("w2", lease_seconds=10, now=1.0)
        assert queue.cells["k1"].attempts == 2
        assert queue.complete("k1", failure(kind=FAILURE_CRASH)) == "done"
        assert queue.cells["k1"].outcome.attempts == 2

    def test_deterministic_failure_not_retried(self, tmp_path):
        queue = make_queue(tmp_path, retry=RETRY_ONCE, cells=("k1",))
        queue.claim("w1", lease_seconds=10, now=0.0)
        assert queue.complete("k1", failure(kind=FAILURE_HANG)) == "done"


class TestDurability:
    def reload(self, tmp_path):
        queue = FabricQueue(tmp_path / "queue.jsonl")
        queue.load()
        return queue

    def test_done_cells_survive_restart(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.claim("w1", lease_seconds=10, now=0.0)
        queue.complete("k1", metrics(cycles=42))
        queue.close()

        reloaded = self.reload(tmp_path)
        assert reloaded.cells["k1"].done
        assert reloaded.cells["k1"].outcome.cycles == 42
        assert reloaded.cells["k2"].state == CELL_PENDING
        assert reloaded.sweeps["sweep-0"].cells == ["k1", "k2"]

    def test_leases_do_not_survive_restart(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.claim("w1", lease_seconds=10, now=0.0)
        queue.close()

        reloaded = self.reload(tmp_path)
        cell = reloaded.cells["k1"]
        assert cell.state == CELL_PENDING
        assert cell.lease is None
        # The claim-time attempt increment is lease bookkeeping, not a
        # journalled attempt — only *failed* attempts are durable.
        assert cell.attempts == 0

    def test_retry_budget_survives_restart(self, tmp_path):
        queue = make_queue(tmp_path, retry=RETRY_ONCE, cells=("k1",))
        queue.claim("w1", lease_seconds=10, now=0.0)
        assert queue.complete("k1", failure()) == "retry"
        queue.close()

        reloaded = self.reload(tmp_path)
        cell = reloaded.cells["k1"]
        assert cell.state == CELL_PENDING
        assert cell.attempts == 1  # the journalled failed attempt
        reloaded.claim("w2", lease_seconds=10, now=0.0)
        # Attempt 2 fails; budget (1 retry) is exhausted *because* the
        # pre-restart attempt was remembered.
        assert reloaded.complete("k1", failure()) == "done"

    def test_torn_trailing_line_skipped(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.claim("w1", lease_seconds=10, now=0.0)
        queue.complete("k1", metrics())
        queue.close()

        path = tmp_path / "queue.jsonl"
        path.write_text(path.read_text() + '{"kind": "done", "key": "k2", "outc')

        reloaded = self.reload(tmp_path)
        assert reloaded.cells["k1"].done
        assert reloaded.cells["k2"].state == CELL_PENDING

    def test_unknown_record_kind_rejected_but_tolerated_on_load(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.close()
        path = tmp_path / "queue.jsonl"
        path.write_text(
            path.read_text() + json.dumps({"kind": "mystery", "key": "k1"}) + "\n"
        )
        reloaded = self.reload(tmp_path)  # load() skips what it can't apply
        assert reloaded.cells["k1"].state == CELL_PENDING
        with pytest.raises(ValueError, match="unknown queue record kind"):
            reloaded._apply({"kind": "mystery", "key": "k1"})

    def test_settle_stamps_queue_attempt_count(self, tmp_path):
        queue = make_queue(tmp_path, retry=RETRY_ONCE, cells=("k1",))
        queue.claim("w1", lease_seconds=10, now=0.0)
        queue.complete("k1", failure(attempts=1))
        queue.claim("w2", lease_seconds=10, now=1.0)
        # Worker reports its local attempt count (1); the queue knows this
        # was really attempt 2 and stamps the settled outcome accordingly.
        queue.complete("k1", failure(attempts=1))
        settled = queue.cells["k1"].outcome
        assert settled.attempts == 2
        assert settled == dataclasses.replace(failure(attempts=1), attempts=2)


class TestIdempotencyTokens:
    def test_duplicate_token_replays_decision_without_resettling(self, tmp_path):
        queue = make_queue(tmp_path, cells=("k1",))
        queue.claim("w1", lease_seconds=10, now=0.0)
        assert queue.complete("k1", metrics(cycles=7), token="t-1") == "done"
        # The duplicated delivery replays "done" — and must NOT overwrite
        # the settled outcome with its (identical or not) payload.
        assert queue.complete("k1", metrics(cycles=999), token="t-1") == "done"
        assert queue.cells["k1"].outcome.cycles == 7

    def test_duplicate_token_does_not_burn_retry_budget(self, tmp_path):
        queue = make_queue(tmp_path, retry=RETRY_ONCE, cells=("k1",))
        queue.claim("w1", lease_seconds=10, now=0.0)
        assert queue.complete("k1", failure(), token="t-1") == "retry"
        # Re-delivery of the same failed attempt: replays "retry" without
        # appending a second attempt record.
        assert queue.complete("k1", failure(), token="t-1") == "retry"
        assert queue.cells["k1"].attempts == 1
        queue.claim("w2", lease_seconds=10, now=1.0)
        assert queue.complete("k1", failure(), token="t-2") == "done"

    def test_tokenless_duplicate_still_stale(self, tmp_path):
        queue = make_queue(tmp_path, cells=("k1",))
        queue.claim("w1", lease_seconds=10, now=0.0)
        assert queue.complete("k1", metrics(), token="t-1") == "done"
        assert queue.complete("k1", metrics()) == "stale"

    def test_token_replay_survives_restart(self, tmp_path):
        queue = make_queue(tmp_path, cells=("k1",))
        queue.claim("w1", lease_seconds=10, now=0.0)
        queue.complete("k1", metrics(cycles=7), token="t-1")
        queue.close()

        reloaded = FabricQueue(tmp_path / "queue.jsonl")
        reloaded.load()
        assert reloaded.complete("k1", metrics(cycles=999), token="t-1") == "done"
        assert reloaded.cells["k1"].outcome.cycles == 7

    def test_submission_token_round_trips_restart(self, tmp_path):
        queue = FabricQueue(tmp_path / "queue.jsonl")
        queue.submit(
            "sweep-0", [("k1", request_dict())], retry=NO_RETRY, token="sub-abc"
        )
        assert queue.sweep_by_token("sub-abc").sweep_id == "sweep-0"
        assert queue.sweep_by_token("sub-zzz") is None
        queue.close()

        reloaded = FabricQueue(tmp_path / "queue.jsonl")
        reloaded.load()
        assert reloaded.sweep_by_token("sub-abc").sweep_id == "sweep-0"


class TestCompaction:
    def churn(self, queue, rounds, now=0.0):
        """Burn journal records: failed attempts fold away in a snapshot."""
        for round_number in range(rounds):
            queue.claim("w1", lease_seconds=10, now=now + round_number)
            queue.complete("k1", failure(), token=f"t-{now}-{round_number}")

    def test_journal_size_bounded_across_three_cycles(self, tmp_path):
        queue = make_queue(
            tmp_path, retry=RetryPolicy(max_retries=100, backoff_base=0.0),
            cells=("k1",),
        )
        path = tmp_path / "queue.jsonl"
        sizes = []
        for cycle in range(3):
            self.churn(queue, rounds=20, now=cycle * 100.0)
            queue.compact()
            sizes.append(path.stat().st_size)
        assert queue.compactions == 3
        # Snapshot size grows only with *state* (here: one more token per
        # churn round), never with history — 20 failed attempts fold into
        # one record, so consecutive snapshots stay within a small factor
        # while the un-compacted journal would have tripled.
        assert sizes[2] < sizes[0] * 3
        reloaded = FabricQueue(path)
        reloaded.load()
        assert reloaded.cells["k1"].attempts == 60
        assert reloaded.cells["k1"].state == CELL_PENDING

    def test_compacted_journal_reloads_identical_state(self, tmp_path):
        queue = make_queue(tmp_path, retry=RETRY_ONCE, cells=("k1", "k2"))
        queue.claim("w1", lease_seconds=10, now=0.0)
        queue.claim("w1", lease_seconds=10, now=0.0)
        queue.complete("k1", failure(), token="t-1")  # retry
        queue.complete("k2", metrics(cycles=5), token="t-2")  # done
        queue.compact()
        queue.close()

        reloaded = FabricQueue(tmp_path / "queue.jsonl")
        reloaded.load()
        assert reloaded.cells["k1"].state == CELL_PENDING
        assert reloaded.cells["k1"].attempts == 1
        assert reloaded.cells["k1"].last_failure == failure()
        assert reloaded.cells["k1"].tokens == {"t-1": "retry"}
        assert reloaded.cells["k2"].done
        assert reloaded.cells["k2"].outcome.cycles == 5
        assert reloaded.cells["k2"].tokens == {"t-2": "done"}
        assert reloaded.sweeps["sweep-0"].cells == ["k1", "k2"]

    def test_auto_compaction_triggers_and_stays_consistent(self, tmp_path):
        queue = FabricQueue(tmp_path / "queue.jsonl", compact_every=5)
        queue.submit(
            "sweep-0",
            [(f"k{i}", request_dict(name=f"wl-{i}")) for i in range(4)],
            retry=NO_RETRY,
        )
        for i in range(4):
            queue.claim("w1", lease_seconds=10, now=float(i))
            queue.complete(f"k{i}", metrics(cycles=i + 1), token=f"t-{i}")
        assert queue.compactions >= 1
        queue.close()

        reloaded = FabricQueue(tmp_path / "queue.jsonl")
        reloaded.load()
        assert all(reloaded.cells[f"k{i}"].done for i in range(4))
        assert [reloaded.cells[f"k{i}"].outcome.cycles for i in range(4)] == [1, 2, 3, 4]

    def test_torn_snapshot_tmp_discarded_on_load(self, tmp_path):
        """kill -9 mid-snapshot: the tmp file is garbage but the journal is
        still complete — load must use the journal and drop the tmp."""
        queue = make_queue(tmp_path, cells=("k1",))
        queue.claim("w1", lease_seconds=10, now=0.0)
        queue.complete("k1", metrics(cycles=9))
        queue.close()
        tmp = tmp_path / "queue.jsonl.compact"
        tmp.write_text('{"kind": "cell", "key": "k1", "requ')  # torn snapshot

        reloaded = FabricQueue(tmp_path / "queue.jsonl")
        reloaded.load()
        assert not tmp.exists()
        assert reloaded.cells["k1"].outcome.cycles == 9

    def test_crash_during_rename_recovers(self, tmp_path, monkeypatch):
        """kill -9 between snapshot fsync and rename: os.replace never ran,
        the old journal is untouched, and a restart recovers everything."""
        import repro.fabric.queue as queue_module

        queue = make_queue(tmp_path, cells=("k1", "k2"))
        queue.claim("w1", lease_seconds=10, now=0.0)
        queue.complete("k1", metrics(cycles=3))

        def crash(*_args):
            raise OSError("simulated kill -9 at the rename point")

        monkeypatch.setattr(queue_module.os, "replace", crash)
        with pytest.raises(OSError):
            queue.compact()
        monkeypatch.undo()

        reloaded = FabricQueue(tmp_path / "queue.jsonl")
        reloaded.load()
        assert reloaded.cells["k1"].outcome.cycles == 3
        assert reloaded.cells["k2"].state == CELL_PENDING
        assert reloaded.sweeps["sweep-0"].cells == ["k1", "k2"]

    def test_queue_usable_after_compaction(self, tmp_path):
        """Compaction closes and reopens the journal handle; appends after
        it must land in the *new* journal and survive a restart."""
        queue = make_queue(tmp_path, cells=("k1", "k2"))
        queue.claim("w1", lease_seconds=10, now=0.0)
        queue.complete("k1", metrics(cycles=1))
        queue.compact()
        queue.claim("w1", lease_seconds=10, now=1.0)
        queue.complete("k2", metrics(cycles=2))
        queue.close()

        reloaded = FabricQueue(tmp_path / "queue.jsonl")
        reloaded.load()
        assert reloaded.cells["k2"].outcome.cycles == 2

    def test_compact_every_validation(self, tmp_path):
        with pytest.raises(ValueError, match="compact_every"):
            FabricQueue(tmp_path / "q.jsonl", compact_every=0)
