"""Transport hardening tests: retry/backoff determinism (hypothesis),
circuit-breaker transitions, 429 compliance, and the torn-JSONL rule —
all against scripted in-memory transports, no sockets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.transport import (
    CircuitBreaker,
    CircuitOpenError,
    FabricError,
    HttpTransport,
    RetryingTransport,
    TransportPolicy,
)

PATHS = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789/-_", min_size=1, max_size=40
)


class ScriptedTransport:
    """An ``exchange``-compatible fake: each script entry is either
    ``FabricError`` (raise one), or a ``(status, text, headers)`` tuple.
    An exhausted script answers 200 ``{}``."""

    base_url = "http://scripted"

    def __init__(self, *script):
        self.script = list(script)
        self.calls = []

    def exchange(self, method, path, payload=None, *, idempotent=False):
        self.calls.append((method, path, idempotent))
        if not self.script:
            return 200, "{}", {}
        action = self.script.pop(0)
        if action is FabricError:
            raise FabricError("scripted transport failure")
        return action


def retrying(*script, policy=None, clock=None):
    sleeps = []
    kwargs = {"policy": policy or TransportPolicy(), "sleep": sleeps.append}
    if clock is not None:
        kwargs["clock"] = clock
    transport = RetryingTransport(ScriptedTransport(*script), **kwargs)
    return transport, sleeps


class TestBackoffDeterminism:
    @settings(max_examples=60, deadline=None)
    @given(
        path=PATHS,
        attempt=st.integers(min_value=2, max_value=12),
        seed_base=st.floats(min_value=0.001, max_value=1.0),
    )
    def test_delay_reproducible_per_path_attempt(self, path, attempt, seed_base):
        """Two independently built transports over the same policy agree on
        every (path, attempt) delay — the schedule is a pure function."""
        policy = TransportPolicy(backoff_base=seed_base)
        first = RetryingTransport(ScriptedTransport(), policy=policy)
        second = RetryingTransport(ScriptedTransport(), policy=policy)
        assert first.delay(path, attempt) == second.delay(path, attempt)

    @settings(max_examples=60, deadline=None)
    @given(path=PATHS, attempt=st.integers(min_value=2, max_value=40))
    def test_delay_respects_cap(self, path, attempt):
        policy = TransportPolicy(backoff_base=0.05, backoff_max=0.4, jitter=0.1)
        transport = RetryingTransport(ScriptedTransport(), policy=policy)
        delay = transport.delay(path, attempt)
        assert 0.0 <= delay <= policy.backoff_max * (1.0 + policy.jitter)

    @settings(max_examples=40, deadline=None)
    @given(
        path=st.sampled_from(["/v1/ping", "/v1/cells/claim", "/v1/sweeps"]),
        attempt=st.integers(min_value=2, max_value=8),
    )
    def test_delay_varies_by_path(self, path, attempt):
        """Jitter is keyed on the path: distinct endpoints do not share an
        exact retry instant (anti-thundering-herd)."""
        transport = RetryingTransport(
            ScriptedTransport(), policy=TransportPolicy(jitter=0.5)
        )
        other = "/some/other/path"
        assert transport.delay(path, attempt) != transport.delay(other, attempt)


class TestRetryLoop:
    def test_get_retries_transient_then_succeeds(self):
        transport, sleeps = retrying(FabricError, FabricError, (200, '{"ok":1}', {}))
        assert transport.get_json("/v1/ping") == {"ok": 1}
        assert transport.stats["retries"] == 2
        assert len(sleeps) == 2
        # The waits are exactly the deterministic schedule, in order.
        assert sleeps == [transport.delay("/v1/ping", 2), transport.delay("/v1/ping", 3)]

    def test_non_idempotent_post_never_retried(self):
        transport, sleeps = retrying(FabricError)
        with pytest.raises(FabricError):
            transport.post_json("/v1/cells/claim", {})
        assert sleeps == []
        assert transport.stats["retries"] == 0

    def test_idempotent_post_retried(self):
        transport, _ = retrying(FabricError, (200, "{}", {}))
        assert transport.post_json("/v1/cells/k/complete", {}, idempotent=True) == {}
        assert transport.stats["retries"] == 1

    def test_retry_budget_exhausted_raises(self):
        policy = TransportPolicy(retries=2, breaker_threshold=0)
        transport, sleeps = retrying(
            FabricError, FabricError, FabricError, policy=policy
        )
        with pytest.raises(FabricError):
            transport.get_json("/v1/ping")
        assert len(sleeps) == 2  # two retries, then the third failure surfaces

    def test_undecodable_json_is_fabric_error(self):
        transport, _ = retrying((200, "garbage{{", {}), policy=TransportPolicy(retries=0, breaker_threshold=0))
        with pytest.raises(FabricError, match="undecodable"):
            transport.get_json("/v1/ping")

    def test_corrupt_json_body_refetched(self):
        """A well-framed 200 whose JSON body is garbage (in-flight byte
        corruption) is retried like a connection error — for retry-safe
        requests — instead of surfacing the garbage."""
        garbage = (200, "}{corrupt", {"content-type": "application/json"})
        transport, _ = retrying(garbage, (200, '{"ok":1}', {}))
        assert transport.get_json("/v1/ping") == {"ok": 1}
        assert transport.stats["retries"] == 1

    def test_corrupt_json_body_not_retried_for_plain_post(self):
        garbage = (200, "}{corrupt", {"content-type": "application/json"})
        transport, sleeps = retrying(garbage)
        with pytest.raises(FabricError, match="undecodable"):
            transport.post_json("/v1/cells/claim", {})
        assert sleeps == []

    def test_429_retried_even_for_non_idempotent_post(self):
        """Admission control: the request was not processed, so the retry is
        safe regardless of idempotency — and Retry-After is honoured."""
        transport, sleeps = retrying(
            (429, '{"error":"full"}', {"retry-after": "7"}),
            (200, '{"sweep_id":"s"}', {}),
        )
        assert transport.post_json("/v1/sweeps", {}) == {"sweep_id": "s"}
        assert sleeps and sleeps[0] >= 7.0

    def test_429_does_not_trip_breaker(self):
        policy = TransportPolicy(retries=1, breaker_threshold=1)
        transport, _ = retrying(
            (429, "{}", {}), (200, "{}", {}), policy=policy
        )
        transport.post_json("/v1/sweeps", {})
        assert transport.breaker.state == CircuitBreaker.CLOSED


class TestCircuitBreaker:
    def test_open_half_open_closed_cycle_exact(self):
        clock = [0.0]
        breaker = CircuitBreaker(2, 10.0, clock=lambda: clock[0])
        assert breaker.allow() and breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # 1 < threshold
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN  # threshold hit
        assert not breaker.allow()
        clock[0] = 9.999
        assert not breaker.allow()  # reset timer not yet elapsed
        clock[0] = 10.0
        assert breaker.allow()  # exactly at the timer: half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # only one probe until it settles
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.failures == 0

    def test_half_open_failure_reopens_with_fresh_timer(self):
        clock = [0.0]
        breaker = CircuitBreaker(1, 5.0, clock=lambda: clock[0])
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock[0] = 5.0
        assert breaker.allow()  # half-open
        breaker.record_failure()  # probe failed
        assert breaker.state == CircuitBreaker.OPEN
        clock[0] = 9.0  # 4s after reopening — timer restarted, still open
        assert not breaker.allow()
        clock[0] = 10.0
        assert breaker.allow()

    def test_threshold_zero_disables(self):
        breaker = CircuitBreaker(0, 1.0, clock=lambda: 0.0)
        for _ in range(50):
            breaker.record_failure()
        assert breaker.allow()
        assert breaker.state == CircuitBreaker.CLOSED

    @settings(max_examples=40, deadline=None)
    @given(
        threshold=st.integers(min_value=1, max_value=6),
        failures=st.integers(min_value=0, max_value=12),
    )
    def test_trips_exactly_at_threshold(self, threshold, failures):
        breaker = CircuitBreaker(threshold, 1.0, clock=lambda: 0.0)
        for _ in range(failures):
            breaker.record_failure()
        assert (breaker.state == CircuitBreaker.OPEN) == (failures >= threshold)

    def test_transport_fastfails_when_open(self):
        clock = [0.0]
        policy = TransportPolicy(retries=0, breaker_threshold=1, breaker_reset=60.0)
        transport, _ = retrying(
            FabricError, (200, "{}", {}), policy=policy, clock=lambda: clock[0]
        )
        with pytest.raises(FabricError):
            transport.get_json("/v1/ping")
        with pytest.raises(CircuitOpenError):
            transport.get_json("/v1/ping")
        assert transport.stats["breaker_fastfails"] == 1
        clock[0] = 60.0  # half-open probe succeeds and closes the breaker
        assert transport.get_json("/v1/ping") == {}
        assert transport.breaker.state == CircuitBreaker.CLOSED


class TestGetLines:
    def test_torn_trailing_line_skipped(self):
        body = '{"seq": 0}\n{"seq": 1}\n{"seq": 2, "kind": "fini'
        transport = RetryingTransport(ScriptedTransport((200, body, {})))
        records = transport.get_lines("/v1/sweeps/s/events")
        assert [r["seq"] for r in records] == [0, 1]

    def test_torn_midstream_line_raises(self):
        body = '{"seq": 0}\n{"seq": 1, "kind": "fini\n{"seq": 2}'
        transport = RetryingTransport(
            ScriptedTransport((200, body, {})),
            policy=TransportPolicy(retries=0, breaker_threshold=0),
        )
        with pytest.raises(FabricError, match="mid-stream"):
            transport.get_lines("/v1/sweeps/s/events")

    def test_raw_http_transport_shares_the_torn_tail_rule(self):
        """Regression: HttpTransport.get_lines used to raise on a torn tail
        (scheduler restarted mid-stream); it now skips it like the journal."""
        transport = HttpTransport("http://127.0.0.1:1")
        transport.exchange = lambda *a, **k: (200, '{"seq": 0}\n{"to', {})
        assert transport.get_lines("/v1/x") == [{"seq": 0}]


class TestPolicy:
    def test_round_trip(self):
        policy = TransportPolicy(retries=7, backoff_max=1.5, breaker_threshold=2)
        assert TransportPolicy.from_dict(policy.to_dict()) == policy

    def test_validation(self):
        with pytest.raises(ValueError):
            TransportPolicy(retries=-1)
        with pytest.raises(ValueError):
            TransportPolicy(breaker_reset=0.0)
