"""Fabric acceptance tests, per the PR contract:

* a 20-cell sweep routed through a scheduler subprocess and two worker
  subprocesses — with injected crash and timeout faults — produces
  **bit-identical** outcomes to the same sweep run by a local in-process
  ``Session``;
* ``kill -9`` of the scheduler mid-sweep, followed by a restart on the
  same state directory, resumes from the durable queue **without
  re-running completed cells** (proved by the workers' execution ledger).

These are real-process tests (``subprocess`` + loopback HTTP), so they
carry the ``slow`` marker; CI runs them in a dedicated ``fabric-e2e`` job.
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.common.config import AttackModel
from repro.sim import CachePolicy, ExecutionPolicy, Session
from repro.sim.api import RunMetrics, RunRequest
from repro.sim.configs import config_by_name
from repro.sim.engine import RetryPolicy
from repro.testing.faults import FaultPlan, FaultSpec
from repro.workloads import make_indirect_stream

pytestmark = pytest.mark.slow

REPO_ROOT = Path(__file__).resolve().parents[2]
CONFIGS = [config_by_name("Unsafe"), config_by_name("Hybrid")]
MODELS = [AttackModel.SPECTRE, AttackModel.FUTURISTIC]


def twenty_cells():
    """5 workloads x 2 configs x 2 models = the contract's 20 cells."""
    workloads = [
        make_indirect_stream(
            f"e2e-{i}", table_words=64, iterations=12, seed=100 + i
        )
        for i in range(5)
    ]
    return [
        RunRequest(
            workload=workload,
            config=config,
            attack_model=model,
            max_instructions=2_000,
        )
        for workload in workloads
        for config in CONFIGS
        for model in MODELS
    ]


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def child_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.update(extra)
    return env


def start_scheduler(state_dir, port):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "fabric", "serve",
            "--state-dir", str(state_dir), "--port", str(port),
            "--lease-seconds", "10",
        ],
        env=child_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=REPO_ROOT,
    )
    ready = proc.stdout.readline()
    assert re.search(r"listening on http://", ready), (
        f"scheduler failed to start: {ready!r}"
    )
    return proc


def start_worker(url, cache_dir, *, max_idle="30", env_extra=None):
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "fabric", "work", url,
            "--cache-dir", str(cache_dir), "--max-idle", max_idle,
        ],
        env=child_env(**(env_extra or {})),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=REPO_ROOT,
    )


def reap(*procs):
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)


def fabric_session(url, *, timeout=None, retries=0):
    return Session(
        execution=ExecutionPolicy(fabric=url, timeout=timeout, retries=retries),
        cache=CachePolicy(enabled=False),
    )


def count_done(state_dir):
    path = Path(state_dir) / "queue.jsonl"
    if not path.exists():
        return set()
    done = set()
    for line in path.read_text().splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if record.get("kind") == "done":
            done.add(record["key"])
    return done


def ledger_counts(path):
    counts = {}
    if Path(path).exists():
        for line in Path(path).read_text().splitlines():
            key = line.split()[0]
            counts[key] = counts.get(key, 0) + 1
    return counts


def test_twenty_cell_sweep_with_faults_matches_local(tmp_path):
    """Crash + hang(timeout) faults on the fabric; retries absorb both; the
    final 20 outcomes are bit-identical to an undisturbed local sweep."""
    requests = twenty_cells()
    assert len(requests) == 20

    plan = FaultPlan(
        {
            # First attempt of every e2e-0 cell crashes; retry succeeds.
            "e2e-0": FaultSpec("crash", times=1),
            # First attempt of e2e-1/Hybrid wedges until the 3s wall-clock
            # kill classifies it as a timeout; retry succeeds.
            "e2e-1/Hybrid": FaultSpec("hang", times=1, seconds=60.0),
        },
        state_dir=tmp_path / "fault-state",
    )
    plan_path = tmp_path / "fault-plan.json"
    plan_path.write_text(json.dumps(plan.to_dict()))

    port = free_port()
    url = f"http://127.0.0.1:{port}"
    scheduler = start_scheduler(tmp_path / "state", port)
    workers = [
        start_worker(
            url,
            tmp_path / f"worker-{i}",
            env_extra={"REPRO_FAULT_PLAN": str(plan_path)},
        )
        for i in range(2)
    ]
    try:
        retry = RetryPolicy(max_retries=2, backoff_base=0.01)
        with fabric_session(url, timeout=3.0, retries=retry) as session:
            outcomes = session.run_many(requests)
    finally:
        reap(scheduler, *workers)

    assert all(isinstance(o, RunMetrics) for o in outcomes), [
        str(o) for o in outcomes if not isinstance(o, RunMetrics)
    ]

    with Session(cache=CachePolicy(enabled=False)) as local:
        reference = local.run_many(requests)
    assert [o.to_dict() for o in outcomes] == [o.to_dict() for o in reference]


def test_kill_dash_nine_resume_without_rerunning(tmp_path):
    """kill -9 the scheduler once cells have settled; restart it on the
    same state dir; the sweep finishes and the execution ledger shows no
    completed cell was executed again."""
    requests = twenty_cells()[:10]
    ledger = tmp_path / "exec.ledger"
    state_dir = tmp_path / "state"

    # Pace execution (~0.25s/cell) so the kill lands mid-sweep.
    plan = FaultPlan(
        {f"e2e-{i}": FaultSpec("slow", seconds=0.25) for i in range(5)},
        state_dir=tmp_path / "fault-state",
    )
    plan_path = tmp_path / "fault-plan.json"
    plan_path.write_text(json.dumps(plan.to_dict()))
    worker_env = {
        "REPRO_FAULT_PLAN": str(plan_path),
        "REPRO_FABRIC_EXEC_LOG": str(ledger),
    }

    port = free_port()
    url = f"http://127.0.0.1:{port}"
    scheduler = start_scheduler(state_dir, port)
    worker = start_worker(url, tmp_path / "worker-cache", env_extra=worker_env)

    outcomes = []
    errors = []

    def submit():
        try:
            with fabric_session(url) as session:
                outcomes.extend(session.run_many(requests))
        except Exception as exc:  # surfaced in the main thread below
            errors.append(exc)

    client = threading.Thread(target=submit, daemon=True)
    client.start()
    restarted = None
    try:
        deadline = time.monotonic() + 60
        while len(count_done(state_dir)) < 3:
            assert time.monotonic() < deadline, "no progress before kill"
            assert scheduler.poll() is None
            time.sleep(0.05)

        os.kill(scheduler.pid, signal.SIGKILL)
        scheduler.wait(timeout=10)
        done_at_kill = count_done(state_dir)
        ledger_at_kill = ledger_counts(ledger)
        assert len(done_at_kill) >= 3

        time.sleep(1.0)  # a real restart window, with client + worker live
        restarted = start_scheduler(state_dir, port)

        client.join(timeout=120)
        assert not client.is_alive(), "client never finished after restart"
        assert not errors, errors
    finally:
        reap(scheduler, *( [restarted] if restarted else [] ), worker)

    assert len(outcomes) == 10
    assert all(isinstance(o, RunMetrics) for o in outcomes), [
        str(o) for o in outcomes if not isinstance(o, RunMetrics)
    ]

    # The durable-queue guarantee: cells settled before the kill were not
    # executed again afterwards — their ledger counts did not move.
    final_ledger = ledger_counts(ledger)
    for key in done_at_kill:
        assert final_ledger.get(key) == ledger_at_kill.get(key), (
            f"cell {key} re-executed after scheduler restart"
        )

    with Session(cache=CachePolicy(enabled=False)) as local:
        reference = local.run_many(requests)
    assert [o.to_dict() for o in outcomes] == [o.to_dict() for o in reference]
