"""Ratchet baseline: diffing, persistence, staleness."""

from repro.lint.baseline import Baseline
from repro.lint.findings import Finding


def _finding(message: str) -> Finding:
    return Finding("src/x.py", 3, "stat-key", message)


def test_empty_baseline_marks_everything_new():
    diff = Baseline().diff([_finding("a"), _finding("b")])
    assert len(diff.new) == 2
    assert not diff.baselined
    assert not diff.stale


def test_baselined_findings_filtered():
    known = _finding("known")
    baseline = Baseline.from_findings([known])
    diff = baseline.diff([known, _finding("fresh")])
    assert [f.message for f in diff.new] == ["fresh"]
    assert [f.message for f in diff.baselined] == ["known"]


def test_stale_entries_reported():
    gone = _finding("fixed meanwhile")
    baseline = Baseline.from_findings([gone])
    diff = baseline.diff([])
    assert diff.stale == [gone.fingerprint]


def test_line_moves_do_not_invalidate_baseline():
    baseline = Baseline.from_findings([Finding("src/x.py", 3, "stat-key", "m")])
    diff = baseline.diff([Finding("src/x.py", 300, "stat-key", "m")])
    assert not diff.new
    assert len(diff.baselined) == 1


def test_write_load_roundtrip(tmp_path):
    path = tmp_path / "baseline.json"
    original = Baseline.from_findings([_finding("persisted")])
    original.write(path)
    loaded = Baseline.load(path)
    assert set(loaded.entries) == set(original.entries)


def test_load_missing_file_is_empty(tmp_path):
    baseline = Baseline.load(tmp_path / "absent.json")
    assert baseline.entries == {}
