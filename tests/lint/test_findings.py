"""Finding model: fingerprints, rendering, severities."""

import pytest

from repro.lint.findings import ERROR, WARNING, Finding


def test_fingerprint_ignores_line_number():
    a = Finding("src/x.py", 10, "stat-key", "bad key")
    b = Finding("src/x.py", 99, "stat-key", "bad key")
    assert a.fingerprint == b.fingerprint


def test_fingerprint_depends_on_checker_path_message():
    base = Finding("src/x.py", 1, "stat-key", "bad key")
    assert base.fingerprint != Finding("src/y.py", 1, "stat-key", "bad key").fingerprint
    assert base.fingerprint != Finding("src/x.py", 1, "determinism", "bad key").fingerprint
    assert base.fingerprint != Finding("src/x.py", 1, "stat-key", "other").fingerprint


def test_render_and_dict_roundtrip():
    finding = Finding("src/x.py", 7, "event-schema", "boom", severity=WARNING)
    assert finding.render() == "src/x.py:7: warning: [event-schema] boom"
    payload = finding.to_dict()
    assert payload["line"] == 7
    assert payload["fingerprint"] == finding.fingerprint


def test_whole_file_finding_renders_without_line():
    finding = Finding("tests/golden/golden_stats.json", 0, "stat-key", "stale")
    assert finding.render().startswith("tests/golden/golden_stats.json: ")


def test_unknown_severity_rejected():
    with pytest.raises(ValueError):
        Finding("src/x.py", 1, "stat-key", "m", severity="fatal")


def test_ordering_is_by_location():
    first = Finding("a.py", 1, "stat-key", "m")
    later = Finding("a.py", 2, "stat-key", "m")
    other = Finding("b.py", 1, "stat-key", "m")
    assert sorted([other, later, first]) == [first, later, other]


def test_severity_not_part_of_identity():
    a = Finding("src/x.py", 1, "stat-key", "m", severity=ERROR)
    b = Finding("src/x.py", 1, "stat-key", "m", severity=WARNING)
    assert a == b
