"""``cache-schema``: serialized-surface drift vs. SCHEMA_VERSION."""

from repro.lint.baseline import Baseline
from repro.lint.checkers.cache_schema import write_fingerprint
from repro.lint.engine import run_lint

CHECKER = "cache-schema"

_CACHE_V1 = (
    "SCHEMA_VERSION = 1\n"
    "def cache_key(request):\n"
    "    material = {\n"
    "        'schema': SCHEMA_VERSION,\n"
    "        'config': request.config,\n"
    "    }\n"
    "    return material\n"
)

_API = (
    "from dataclasses import dataclass, field\n"
    "@dataclass(frozen=True)\n"
    "class RunRequest:\n"
    "    workload: str\n"
    "    config: str\n"
    "    label: str = field(default='', compare=False)\n"
    "@dataclass(frozen=True)\n"
    "class RunMetrics:\n"
    "    cycles: int\n"
)


_TRACE_V1 = (
    "TRACE_SCHEMA_VERSION = 1\n"
    "def trace_key(request):\n"
    "    material = {\n"
    "        'schema': TRACE_SCHEMA_VERSION,\n"
    "        'instructions': request.instructions,\n"
    "        'initial_memory': request.initial_memory,\n"
    "        'max_instructions': request.max_instructions,\n"
    "    }\n"
    "    return material\n"
)


def _lint(ctx):
    return run_lint(ctx, Baseline(), select=[CHECKER])


def _files(cache=_CACHE_V1, api=_API, trace=_TRACE_V1):
    return {
        "src/repro/sim/cache.py": cache,
        "src/repro/sim/api.py": api,
        "src/repro/replay/trace.py": trace,
    }


def test_missing_fingerprint_is_flagged(make_ctx):
    result = _lint(make_ctx(_files()))
    assert len(result.findings) == 1
    assert "--update-fingerprints" in result.findings[0].message


def test_pinned_fingerprint_matches(make_ctx):
    ctx = make_ctx(_files())
    write_fingerprint(ctx)
    assert _lint(ctx).findings == []


def test_field_added_without_version_bump_is_flagged(make_ctx):
    write_fingerprint(make_ctx(_files()))
    grown = _API.replace("    config: str\n", "    config: str\n    seed: int = 0\n")
    result = _lint(make_ctx(_files(api=grown)))
    assert len(result.findings) == 1
    finding = result.findings[0]
    assert "RunRequest" in finding.message
    assert "'seed'" in finding.message
    assert "SCHEMA_VERSION" in finding.message


def test_compare_false_fields_are_invisible(make_ctx):
    # Adding a compare=False field mirrors _canonical: no key change, no
    # finding.
    write_fingerprint(make_ctx(_files()))
    grown = _API.replace(
        "class RunMetrics:\n",
        "class RunMetrics:\n    note: str = field(default='', compare=False)\n",
    )
    assert _lint(make_ctx(_files(api=grown))).findings == []


def test_version_bump_asks_for_fingerprint_refresh(make_ctx):
    write_fingerprint(make_ctx(_files()))
    bumped = _CACHE_V1.replace("SCHEMA_VERSION = 1", "SCHEMA_VERSION = 2")
    grown = _API.replace("    config: str\n", "    config: str\n    seed: int = 0\n")
    result = _lint(make_ctx(_files(cache=bumped, api=grown)))
    assert len(result.findings) == 1
    assert "refresh it with" in result.findings[0].message


def test_refresh_after_bump_is_clean(make_ctx):
    bumped = _CACHE_V1.replace("SCHEMA_VERSION = 1", "SCHEMA_VERSION = 2")
    ctx = make_ctx(_files(cache=bumped))
    write_fingerprint(ctx)
    assert _lint(ctx).findings == []


def test_material_key_change_is_flagged(make_ctx):
    write_fingerprint(make_ctx(_files()))
    changed = _CACHE_V1.replace("'config': request.config,\n", "")
    result = _lint(make_ctx(_files(cache=changed)))
    assert len(result.findings) == 1
    assert "cache_key material" in result.findings[0].message


def test_trace_material_change_without_bump_is_flagged(make_ctx):
    write_fingerprint(make_ctx(_files()))
    changed = _TRACE_V1.replace(
        "        'max_instructions': request.max_instructions,\n", ""
    )
    result = _lint(make_ctx(_files(trace=changed)))
    assert len(result.findings) == 1
    finding = result.findings[0]
    assert "trace_key material" in finding.message
    assert "TRACE_SCHEMA_VERSION" in finding.message


def test_trace_version_bump_asks_for_fingerprint_refresh(make_ctx):
    write_fingerprint(make_ctx(_files()))
    bumped = _TRACE_V1.replace(
        "TRACE_SCHEMA_VERSION = 1", "TRACE_SCHEMA_VERSION = 2"
    ).replace("        'max_instructions': request.max_instructions,\n", "")
    result = _lint(make_ctx(_files(trace=bumped)))
    assert len(result.findings) == 1
    assert "refresh it with" in result.findings[0].message


def test_trace_refresh_after_bump_is_clean(make_ctx):
    bumped = _TRACE_V1.replace("TRACE_SCHEMA_VERSION = 1", "TRACE_SCHEMA_VERSION = 2")
    ctx = make_ctx(_files(trace=bumped))
    write_fingerprint(ctx)
    assert _lint(ctx).findings == []


def test_inline_suppression_respected(make_ctx):
    write_fingerprint(make_ctx(_files()))
    grown = _API.replace(
        "class RunRequest:\n",
        "class RunRequest:  # sdolint: disable=cache-schema\n",
    ).replace("    config: str\n", "    config: str\n    seed: int = 0\n")
    result = _lint(make_ctx(_files(api=grown)))
    assert result.findings == []
    assert result.suppressed == 1
