"""The real repository passes its own gate.

This is the acceptance check ISSUE.md asks for: ``repro lint`` over the
live tree yields no new error-severity finding — the committed baseline
covers everything else (currently one justified advisory).
"""

from repro.lint.baseline import Baseline
from repro.lint.engine import run_lint
from repro.lint.findings import ERROR

from tests.lint.conftest import REPO_ROOT


def test_repo_has_no_gating_findings(repo_ctx):
    baseline = Baseline.load(REPO_ROOT / "sdolint-baseline.json")
    result = run_lint(repo_ctx, baseline)
    assert result.gating == [], "\n".join(f.render() for f in result.gating)


def test_oblivious_code_is_taint_free(repo_ctx):
    # Stronger than the gate: the DO paths carry zero findings, so the
    # taint lattice's clean-projection rules match the repo idioms exactly.
    result = run_lint(repo_ctx, Baseline(), select=["oblivious-timing"])
    assert result.findings == [], "\n".join(f.render() for f in result.findings)


def test_sim_core_is_determinism_clean(repo_ctx):
    result = run_lint(repo_ctx, Baseline(), select=["determinism"])
    assert result.findings == [], "\n".join(f.render() for f in result.findings)


def test_stat_keys_have_no_errors(repo_ctx):
    result = run_lint(repo_ctx, Baseline(), select=["stat-key"])
    errors = [f for f in result.findings if f.severity == ERROR]
    assert errors == [], "\n".join(f.render() for f in errors)


def test_schema_checkers_are_clean(repo_ctx):
    result = run_lint(repo_ctx, Baseline(), select=["cache-schema", "event-schema"])
    errors = [f for f in result.findings if f.severity == ERROR]
    assert errors == [], "\n".join(f.render() for f in errors)
