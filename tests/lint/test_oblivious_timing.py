"""``oblivious-timing``: seeded Definition-2 violations are caught, the
repo's real DO idioms are not, and inline suppressions are honored."""

from repro.lint.baseline import Baseline
from repro.lint.engine import run_lint

CHECKER = "oblivious-timing"


def _lint(ctx):
    return run_lint(ctx, Baseline(), select=[CHECKER])


def test_data_dependent_latency_in_variant_is_flagged(make_ctx):
    ctx = make_ctx(
        {
            "src/repro/core/leaky.py": (
                "class LeakyVariant(DOVariant):\n"
                "    def execute(self, args):\n"
                "        success, presult = self._compute(args)\n"
                "        latency = 4 if presult else 9\n"
                "        return VariantResult(success=success, presult=presult,"
                " latency=latency)\n"
            )
        }
    )
    result = _lint(ctx)
    assert len(result.findings) == 1
    finding = result.findings[0]
    assert finding.checker == CHECKER
    assert "latency=" in finding.message
    assert finding.line == 5


def test_reservation_under_tainted_control_is_flagged(make_ctx):
    ctx = make_ctx(
        {
            "src/repro/core/branchy.py": (
                "class BranchyOp(SdoOperation):\n"
                "    def issue(self, pc, args):\n"
                "        outcome = self.variants[0].execute(args)\n"
                "        if outcome.success:\n"
                "            self.ports.grant(pc)\n"
            )
        }
    )
    result = _lint(ctx)
    assert len(result.findings) == 1
    assert "operand-dependent control" in result.findings[0].message


def test_address_taint_reaches_reservation(make_ctx):
    ctx = make_ctx(
        {
            "src/repro/memory/probe.py": (
                "class Probe:\n"
                "    def oblivious_probe(self, addr, now):\n"
                "        wait = addr % 4\n"
                "        self.banks.reserve(now + wait)\n"
            )
        }
    )
    result = _lint(ctx)
    assert len(result.findings) == 1
    assert "reserve()" in result.findings[0].message


def test_signature_projection_is_clean(make_ctx):
    # The repo's core idiom: execute a (tainted) variant, forward only the
    # signature-stamped latency/resources.  Must NOT be flagged.
    ctx = make_ctx(
        {
            "src/repro/core/clean.py": (
                "class CleanOp(SdoOperation):\n"
                "    def issue(self, pc, args):\n"
                "        index = self.predictor.predict(pc)\n"
                "        outcome = self.variants[index].execute(args)\n"
                "        return IssueOutcome(\n"
                "            variant_index=index,\n"
                "            presult=outcome.presult,\n"
                "            latency=outcome.latency,\n"
                "            resources=outcome.resources,\n"
                "            _success_sealed=outcome.success,\n"
                "        )\n"
            )
        }
    )
    assert _lint(ctx).findings == []


def test_prediction_dependent_timing_is_allowed(make_ctx):
    # Timing keyed on the predicted level is the whole point of SDO.
    ctx = make_ctx(
        {
            "src/repro/memory/pred.py": (
                "class Pred:\n"
                "    def oblivious_lookup(self, addr, predicted_level, now):\n"
                "        depth = int(predicted_level)\n"
                "        self.ports.grant(now + depth)\n"
            )
        }
    )
    assert _lint(ctx).findings == []


def test_inline_suppression_respected(make_ctx):
    ctx = make_ctx(
        {
            "src/repro/core/suppressed.py": (
                "class Sneaky(DOVariant):\n"
                "    def execute(self, args):\n"
                "        success, presult = self._compute(args)\n"
                "        latency = 4 if presult else 9\n"
                "        return VariantResult(success=success,"
                " latency=latency)  # sdolint: disable=oblivious-timing\n"
            )
        }
    )
    result = _lint(ctx)
    assert result.findings == []
    assert result.suppressed == 1


def test_out_of_scope_functions_ignored(make_ctx):
    # Same flow, but neither an SDO subclass nor an oblivious-named
    # function: the checker must not fire outside its scope.
    ctx = make_ctx(
        {
            "src/repro/memory/normal.py": (
                "class NormalPath:\n"
                "    def load(self, addr, now):\n"
                "        wait = addr % 4\n"
                "        self.banks.reserve(now + wait)\n"
            )
        }
    )
    assert _lint(ctx).findings == []
