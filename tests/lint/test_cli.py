"""``repro lint`` CLI: exit codes, formats, baseline plumbing."""

import json

from repro.lint.cli import main

from tests.lint.conftest import REPO_ROOT


def test_repo_lints_clean_via_cli(capsys):
    assert main(["--root", str(REPO_ROOT)]) == 0
    out = capsys.readouterr().out
    assert "sdolint:" in out


def test_json_format_is_machine_readable(capsys):
    assert main(["--root", str(REPO_ROOT), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["gating"] == 0
    assert isinstance(payload["new"], list)
    assert isinstance(payload["baselined"], list)


def test_unknown_checker_id_is_an_error(capsys):
    assert main(["--root", str(REPO_ROOT), "--select", "no-such-checker"]) == 2
    assert "unknown checker" in capsys.readouterr().out


def test_select_single_checker(capsys):
    assert main(["--root", str(REPO_ROOT), "--select", "event-schema"]) == 0


def test_violation_fails_and_baseline_absorbs_it(tmp_path, capsys):
    # A tiny tree with a seeded determinism violation: the gate fails,
    # --write-baseline ratchets it in, and the next run passes.
    bad = tmp_path / "src" / "repro" / "pipeline"
    bad.mkdir(parents=True)
    (bad / "jitter.py").write_text(
        "import random\n\n\ndef jitter():\n    return random.random()\n"
    )
    baseline = tmp_path / "sdolint-baseline.json"
    argv = [
        "--root", str(tmp_path), "--baseline", str(baseline),
        "--select", "determinism",
    ]
    assert main(argv) == 1
    assert "unseeded global RNG" in capsys.readouterr().out
    assert main(argv + ["--write-baseline"]) == 0
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


def test_stale_baseline_entries_reported(tmp_path, capsys):
    src = tmp_path / "src" / "repro" / "pipeline"
    src.mkdir(parents=True)
    jitter = src / "jitter.py"
    jitter.write_text("import random\n\n\ndef jitter():\n    return random.random()\n")
    baseline = tmp_path / "sdolint-baseline.json"
    argv = [
        "--root", str(tmp_path), "--baseline", str(baseline),
        "--select", "determinism",
    ]
    assert main(argv + ["--write-baseline"]) == 0
    jitter.write_text("def jitter():\n    return 4\n")
    assert main(argv) == 0
    assert "no longer matches" in capsys.readouterr().out
