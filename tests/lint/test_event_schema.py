"""``event-schema``: the run-event vocabulary stays closed."""

from repro.lint.baseline import Baseline
from repro.lint.engine import run_lint
from repro.lint.findings import ERROR

CHECKER = "event-schema"

_EVENTS = (
    "QUEUED = 'queued'\n"
    "STARTED = 'started'\n"
    "FINISHED = 'finished'\n"
    "FAILED = 'failed'\n"
    "TERMINAL_EVENTS = frozenset({FINISHED, FAILED})\n"
    "class ProgressLine:\n"
    "    _TAGS = {\n"
    "        FINISHED: 'ok',\n"
    "        FAILED: 'FAILED',\n"
    "    }\n"
)

_API = (
    "FAILURE_CRASH = 'crash'\n"
    "FAILURE_TIMEOUT = 'timeout'\n"
    "FAILURE_KINDS = frozenset({FAILURE_CRASH, FAILURE_TIMEOUT})\n"
    "TRANSIENT_FAILURE_KINDS = frozenset({FAILURE_CRASH})\n"
)

_ENGINE = (
    "from repro.sim.events import QUEUED, STARTED, FINISHED, FAILED\n"
    "from repro.sim.api import FAILURE_CRASH\n"
    "class Engine:\n"
    "    def go(self, index, request):\n"
    "        self._emit(QUEUED, index, request)\n"
    "        self._emit(STARTED, index, request)\n"
    "        self._emit(FINISHED, index, request)\n"
    "        self._emit(FAILED, index, request, failure_kind=FAILURE_CRASH)\n"
)


def _lint(ctx):
    return run_lint(ctx, Baseline(), select=[CHECKER])


def _errors(result):
    return [f for f in result.findings if f.severity == ERROR]


def _files(events=_EVENTS, engine=_ENGINE, api=_API):
    return {
        "src/repro/sim/events.py": events,
        "src/repro/sim/engine.py": engine,
        "src/repro/sim/api.py": api,
    }


def test_consistent_vocabulary_is_clean(make_ctx):
    assert _errors(_lint(make_ctx(_files()))) == []


def test_undeclared_emitted_kind_is_flagged(make_ctx):
    engine = _ENGINE + "        self._emit('exploded', index, request)\n"
    errors = _errors(_lint(make_ctx(_files(engine=engine))))
    assert len(errors) == 1
    assert "'exploded'" in errors[0].message


def test_terminal_event_without_progress_tag_is_flagged(make_ctx):
    events = _EVENTS.replace(
        "TERMINAL_EVENTS = frozenset({FINISHED, FAILED})",
        "CANCELLED = 'cancelled'\n"
        "TERMINAL_EVENTS = frozenset({FINISHED, FAILED, CANCELLED})",
    )
    errors = _errors(_lint(make_ctx(_files(events=events))))
    assert len(errors) == 1
    assert "'cancelled'" in errors[0].message
    assert "ProgressLine._TAGS" in errors[0].message


def test_transient_kind_outside_taxonomy_is_flagged(make_ctx):
    api = _API.replace(
        "TRANSIENT_FAILURE_KINDS = frozenset({FAILURE_CRASH})",
        "TRANSIENT_FAILURE_KINDS = frozenset({FAILURE_CRASH, 'oom'})",
    )
    errors = _errors(_lint(make_ctx(_files(api=api))))
    assert len(errors) == 1
    assert "'oom'" in errors[0].message


def test_declared_constant_missing_from_failure_kinds_is_flagged(make_ctx):
    api = _API.replace(
        "FAILURE_KINDS = frozenset({FAILURE_CRASH, FAILURE_TIMEOUT})",
        "FAILURE_KINDS = frozenset({FAILURE_CRASH})",
    ).replace(
        "TRANSIENT_FAILURE_KINDS = frozenset({FAILURE_CRASH})\n",
        "TRANSIENT_FAILURE_KINDS = frozenset({FAILURE_CRASH})\n",
    )
    errors = _errors(_lint(make_ctx(_files(api=api))))
    assert len(errors) == 1
    assert "FAILURE_TIMEOUT" in errors[0].message


def test_unemitted_kind_is_a_warning_not_error(make_ctx):
    engine = "\n".join(
        line for line in _ENGINE.splitlines() if "STARTED," not in line or "_emit" not in line
    ) + "\n"
    result = _lint(make_ctx(_files(engine=engine)))
    assert _errors(result) == []
    warnings = [f for f in result.findings if f.severity == "warning"]
    assert any("STARTED" in f.message for f in warnings)


def test_inline_suppression_respected(make_ctx):
    engine = _ENGINE + (
        "        self._emit('exploded', index, request)"
        "  # sdolint: disable=event-schema\n"
    )
    result = _lint(make_ctx(_files(engine=engine)))
    assert _errors(result) == []
    assert result.suppressed == 1
