"""Inline ``# sdolint: disable=…`` parsing and application."""

from repro.lint.source import SourceFile, parse_suppressions


def test_single_id():
    text = "x = 1  # sdolint: disable=stat-key\n"
    assert parse_suppressions(text) == {1: frozenset({"stat-key"})}


def test_multiple_ids_and_whitespace():
    text = "y = 2  # sdolint: disable=stat-key, determinism\n"
    assert parse_suppressions(text)[1] == frozenset({"stat-key", "determinism"})


def test_all_wildcard():
    source = SourceFile.__new__(SourceFile)
    source.suppressions = parse_suppressions("z = 3  # sdolint: disable=all\n")
    assert source.is_suppressed(1, "anything")
    assert not source.is_suppressed(2, "anything")


def test_unrelated_comments_ignored():
    assert parse_suppressions("a = 1  # type: ignore\n# plain comment\n") == {}


def test_line_attribution():
    text = "a = 1\nb = 2  # sdolint: disable=oblivious-timing\nc = 3\n"
    suppressions = parse_suppressions(text)
    assert set(suppressions) == {2}


def test_tokenize_error_tolerated():
    # Unterminated string: tokenize raises, parser should swallow it.
    assert parse_suppressions("x = 'unterminated\n") == {}


def test_is_suppressed_matches_checker(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text("value = compute()  # sdolint: disable=determinism\n")
    source = SourceFile.load(path, tmp_path)
    assert source.is_suppressed(1, "determinism")
    assert not source.is_suppressed(1, "stat-key")
