"""``stat-key``: non-literal keys, fixture cross-checks, stall identity."""

import json

from repro.lint.baseline import Baseline
from repro.lint.engine import run_lint
from repro.lint.findings import ERROR

CHECKER = "stat-key"


def _lint(ctx):
    return run_lint(ctx, Baseline(), select=[CHECKER])


def _errors(result):
    return [f for f in result.findings if f.severity == ERROR]


def test_fstring_key_is_flagged(make_ctx):
    ctx = make_ctx(
        {
            "src/repro/memory/hier.py": (
                "class H:\n"
                "    def hit(self, level):\n"
                "        self.stats.bump(f'hits_{level}')\n"
            )
        }
    )
    errors = _errors(_lint(ctx))
    assert len(errors) == 1
    assert "not statically resolvable" in errors[0].message
    assert errors[0].line == 3


def test_key_constant_subscript_resolves(make_ctx):
    ctx = make_ctx(
        {
            "src/repro/memory/hier.py": (
                "_HIT = {1: 'hits_l1', 2: 'hits_l2'}\n"
                "class H:\n"
                "    def hit(self, level):\n"
                "        self.stats.bump(_HIT[level])\n"
            )
        }
    )
    assert _errors(_lint(ctx)) == []


def test_loop_over_key_constant_resolves(make_ctx):
    ctx = make_ctx(
        {
            "src/repro/pipeline/fold.py": (
                "REASONS = ('frontend', 'memory')\n"
                "class F:\n"
                "    def fold(self):\n"
                "        for reason in REASONS:\n"
                "            self.stats.set(reason, 1)\n"
            )
        }
    )
    assert _errors(_lint(ctx)) == []


def test_self_attribute_literal_key_resolves(make_ctx):
    ctx = make_ctx(
        {
            "src/repro/pipeline/attr.py": (
                "class A:\n"
                "    def __init__(self, fast):\n"
                "        self._key = 'fast_cycles' if fast else 'slow_cycles'\n"
                "    def tick(self):\n"
                "        self.stats.bump(self._key)\n"
            )
        }
    )
    assert _errors(_lint(ctx)) == []


def test_golden_key_never_bumped_is_flagged(make_ctx):
    golden = json.dumps(
        {"cells": {"A/spectre": {"stats": {"core.typo_counter": 1}}}}
    )
    ctx = make_ctx(
        {
            "src/repro/pipeline/mod.py": (
                "class M:\n"
                "    def tick(self):\n"
                "        self.stats.bump('real_counter')\n"
            )
        },
        extra={"tests/golden/golden_stats.json": golden},
    )
    errors = _errors(_lint(ctx))
    assert len(errors) == 1
    assert "core.typo_counter" in errors[0].message


def test_read_of_unbumped_key_is_flagged(make_ctx):
    ctx = make_ctx(
        {
            "src/repro/pipeline/mod.py": (
                "class M:\n"
                "    def tick(self):\n"
                "        self.stats.bump('real_counter')\n"
            )
        },
        read_scan={
            "tests/eval/test_read.py": (
                "def test_read(metrics):\n"
                "    assert metrics.stats.get('core.real_countr', 0) == 0\n"
            )
        },
    )
    errors = _errors(_lint(ctx))
    assert len(errors) == 1
    assert "core.real_countr" in errors[0].message


def test_stall_identity_mismatch_flagged(make_ctx):
    ctx = make_ctx(
        {
            "src/repro/pipeline/core.py": (
                "STALL_REASONS = ('frontend',)\n"
                "class Core:\n"
                "    def _stall_reason(self):\n"
                "        if self.empty:\n"
                "            return 'frontend'\n"
                "        return 'memory'\n"
                "    def _fold_cycle_accounting(self):\n"
                "        for reason in STALL_REASONS:\n"
                "            self.stats.set(reason, 1)\n"
            )
        }
    )
    errors = _errors(_lint(ctx))
    assert len(errors) == 1
    assert "'memory'" in errors[0].message
    assert "STALL_REASONS" in errors[0].message


def test_inline_suppression_respected(make_ctx):
    ctx = make_ctx(
        {
            "src/repro/memory/hier.py": (
                "class H:\n"
                "    def hit(self, level):\n"
                "        self.stats.bump(f'hits_{level}')"
                "  # sdolint: disable=stat-key\n"
            )
        }
    )
    result = _lint(ctx)
    assert _errors(result) == []
    assert result.suppressed == 1


def test_non_sim_core_modules_not_scanned(make_ctx):
    # eval/ is host-side: dynamic keys there are fine.
    ctx = make_ctx(
        {
            "src/repro/eval/report.py": (
                "class R:\n"
                "    def note(self, name):\n"
                "        self.stats.bump(f'report_{name}')\n"
            )
        }
    )
    assert _errors(_lint(ctx)) == []
