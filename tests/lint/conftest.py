"""Shared fixtures for sdolint tests.

``make_ctx`` builds a :class:`LintContext` from an in-memory mapping of
repo-relative paths to source text, materialized under ``tmp_path`` so
checkers that read non-Python files (golden fixture, fingerprint pin) see
a real tree.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.context import LintContext
from repro.lint.source import SourceFile

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def make_ctx(tmp_path):
    def _make(
        files: dict[str, str],
        read_scan: dict[str, str] | None = None,
        extra: dict[str, str] | None = None,
    ) -> LintContext:
        for rel, text in {**files, **(read_scan or {}), **(extra or {})}.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
        sources = [SourceFile.load(tmp_path / rel, tmp_path) for rel in files]
        scans = [
            SourceFile.load(tmp_path / rel, tmp_path) for rel in (read_scan or {})
        ]
        return LintContext(tmp_path, sources, scans)

    return _make


@pytest.fixture(scope="session")
def repo_ctx():
    """The real repository, loaded once per session."""
    from repro.lint.engine import load_context

    return load_context(REPO_ROOT)
