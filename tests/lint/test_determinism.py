"""``determinism``: ambient-state reads in the simulation core."""

from repro.lint.baseline import Baseline
from repro.lint.engine import run_lint

CHECKER = "determinism"


def _lint(ctx):
    return run_lint(ctx, Baseline(), select=[CHECKER])


def test_global_random_flagged(make_ctx):
    ctx = make_ctx(
        {
            "src/repro/pipeline/jitter.py": (
                "import random\n"
                "def jitter():\n"
                "    return random.random()\n"
            )
        }
    )
    result = _lint(ctx)
    assert len(result.findings) == 1
    assert "unseeded global RNG" in result.findings[0].message


def test_seeded_random_instance_allowed(make_ctx):
    ctx = make_ctx(
        {
            "src/repro/pipeline/seeded.py": (
                "import random\n"
                "def make_rng(seed):\n"
                "    return random.Random(seed)\n"
            )
        }
    )
    assert _lint(ctx).findings == []


def test_wall_clock_flagged(make_ctx):
    ctx = make_ctx(
        {
            "src/repro/memory/clocky.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()\n"
            )
        }
    )
    result = _lint(ctx)
    assert len(result.findings) == 1
    assert "wall clock" in result.findings[0].message


def test_set_iteration_flagged(make_ctx):
    ctx = make_ctx(
        {
            "src/repro/core/order.py": (
                "def drain(pending):\n"
                "    for item in set(pending):\n"
                "        yield item\n"
            )
        }
    )
    result = _lint(ctx)
    assert len(result.findings) == 1
    assert "sorted" in result.findings[0].message


def test_comprehension_over_set_flagged(make_ctx):
    ctx = make_ctx(
        {
            "src/repro/core/order.py": (
                "def drain(pending):\n"
                "    return [item for item in {1, 2, 3}]\n"
            )
        }
    )
    assert len(_lint(ctx).findings) == 1


def test_sorted_set_iteration_allowed(make_ctx):
    ctx = make_ctx(
        {
            "src/repro/core/order.py": (
                "def drain(pending):\n"
                "    for item in sorted(set(pending)):\n"
                "        yield item\n"
            )
        }
    )
    assert _lint(ctx).findings == []


def test_host_side_modules_allowlisted(make_ctx):
    ctx = make_ctx(
        {
            "src/repro/analysis/profiler2.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
            "src/repro/sim/engine.py": (
                "import time\n"
                "def now():\n"
                "    return time.monotonic()\n"
            ),
        }
    )
    assert _lint(ctx).findings == []


def test_inline_suppression_respected(make_ctx):
    ctx = make_ctx(
        {
            "src/repro/pipeline/jitter.py": (
                "import random\n"
                "def jitter():\n"
                "    return random.random()  # sdolint: disable=determinism\n"
            )
        }
    )
    result = _lint(ctx)
    assert result.findings == []
    assert result.suppressed == 1
