"""Tests for the per-cycle observability counters the core always maintains:
stall attribution, active-cycle counters, and occupancy statistics."""

import pytest

from repro.common.config import MachineConfig
from repro.sim.api import RunRequest, execute
from repro.sim.configs import EVALUATED_CONFIGS
from repro.workloads import make_indirect_stream


@pytest.fixture(scope="module")
def results():
    workload = make_indirect_stream(
        "obs_kernel", table_words=512, iterations=60, seed=11
    )
    return {
        config.name: execute(RunRequest(workload=workload, config=config))
        for config in EVALUATED_CONFIGS
    }


@pytest.mark.parametrize("config", [c.name for c in EVALUATED_CONFIGS])
class TestStallAttribution:
    def test_stall_cycles_sum_to_non_commit_cycles(self, results, config):
        """Every cycle either commits or is charged to exactly one reason."""
        metrics = results[config]
        stall_sum = sum(
            v for k, v in metrics.stats.items() if k.startswith("core.stall.")
        )
        active = metrics.stats["core.commit_active_cycles"]
        assert stall_sum == metrics.cycles - active

    def test_active_cycle_counters_bounded_by_cycles(self, results, config):
        metrics = results[config]
        for counter in (
            "core.commit_active_cycles",
            "core.issue_active_cycles",
            "core.dispatch_active_cycles",
        ):
            assert 0 <= metrics.stats[counter] <= metrics.cycles

    def test_occupancy_integrals_consistent(self, results, config):
        """Mean occupancy (integral / cycles) must fit inside the structure,
        and peaks must dominate means."""
        metrics = results[config]
        core_config = MachineConfig().core
        capacities = {
            "rob": core_config.rob_entries,
            "lq": core_config.lq_entries,
            "sq": core_config.sq_entries,
        }
        for unit, capacity in capacities.items():
            mean = metrics.stats[f"core.occ.{unit}"] / metrics.cycles
            peak = metrics.stats[f"core.occ.{unit}_peak"]
            assert 0 <= mean <= capacity
            assert mean <= peak <= capacity


class TestProtectionDecisions:
    def test_unsafe_never_restricts(self, results):
        stats = results["Unsafe"].stats
        assert stats.get("protection.decisions.load_oblivious", 0) == 0
        assert stats.get("protection.decisions.load_delay", 0) == 0
        assert stats.get("protection.decisions.load_normal", 0) > 0

    def test_stt_delays_instead_of_predicting(self, results):
        stats = results["STT{ld}"].stats
        assert stats.get("protection.decisions.load_delay", 0) > 0
        assert stats.get("protection.decisions.load_oblivious", 0) == 0

    def test_sdo_configs_issue_oblivious_loads(self, results):
        stats = results["Hybrid"].stats
        assert stats.get("protection.decisions.load_oblivious", 0) > 0

    def test_stt_overhead_shows_as_memory_stalls(self, results):
        """STT's issue delays destroy MLP: by the time a delayed load reaches
        the ROB head it is non-speculative and issues, so the overhead is
        charged as serialized memory stalls (the Figure 6 overhead made
        visible per-cycle), not as head-of-ROB delay."""
        unsafe, stt = results["Unsafe"], results["STT{ld}"]
        assert stt.cycles > unsafe.cycles
        assert (
            stt.stats.get("core.stall.memory", 0)
            > unsafe.stats.get("core.stall.memory", 0)
        )
