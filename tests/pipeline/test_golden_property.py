"""Property-based equivalence: random programs, every protection scheme.

The single most important invariant in the repository: for *any* program,
the speculative out-of-order core — under Unsafe, STT, or STT+SDO, in
either attack model — commits exactly the instruction stream and values the
in-order functional interpreter produces.  (The Core enforces this at every
commit via its built-in golden check; these tests drive it with randomly
generated programs so the whole speculation/squash/taint machinery gets
adversarial coverage.)
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.config import AttackModel
from repro.isa import Interpreter, Program
from repro.isa.instructions import Instruction, Opcode
from repro.pipeline.core import Core
from repro.sim.configs import config_by_name, make_protection

_DATA_BASE = 4096
_DATA_WORDS = 64


def _random_program(rng: random.Random, length: int) -> Program:
    """A random but well-formed program: loops, branches, loads, stores, FP.

    All memory addresses are generated as ``base + 8 * (value & 63)`` with
    the base register masked first, so every access lands in a small data
    region and dependent (pointer-like) access chains arise naturally.
    """
    instructions: list[Instruction] = []

    def emit(opcode, **kwargs):
        instructions.append(Instruction(opcode, **kwargs))

    emit(Opcode.LI, rd=1, imm=rng.randrange(64))
    emit(Opcode.LI, rd=2, imm=rng.randrange(64))
    emit(Opcode.LI, rd=10, imm=511)  # mask register (64 words * 8)
    body_start = len(instructions)
    int_ops = [Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.MUL]
    for _ in range(length):
        roll = rng.random()
        if roll < 0.35:
            emit(rng.choice(int_ops),
                 rd=rng.randrange(1, 8),
                 rs1=rng.randrange(1, 8),
                 rs2=rng.randrange(1, 8))
        elif roll < 0.55:
            # Masked load: address = (reg & 511) + base (8-aligned not
            # required; the memory model is word-keyed by exact address).
            emit(Opcode.AND, rd=9, rs1=rng.randrange(1, 8), rs2=10)
            emit(Opcode.LOAD, rd=rng.randrange(1, 8), rs1=9, imm=_DATA_BASE)
        elif roll < 0.68:
            emit(Opcode.AND, rd=9, rs1=rng.randrange(1, 8), rs2=10)
            emit(Opcode.STORE, rs1=rng.randrange(1, 8), rs2=9, imm=_DATA_BASE)
        elif roll < 0.82:
            # Forward conditional branch over 1-3 instructions (patched below).
            emit(rng.choice([Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE]),
                 rs1=rng.randrange(1, 8), rs2=rng.randrange(1, 8),
                 target=-(rng.randrange(1, 4)))  # placeholder: skip distance
        elif roll < 0.92:
            emit(Opcode.FLI, rd=100 + rng.randrange(4), imm=rng.uniform(0.5, 2.0))
            emit(Opcode.FMUL, rd=100 + rng.randrange(4),
                 rs1=100 + rng.randrange(4), rs2=100 + rng.randrange(4))
        else:
            emit(Opcode.ADDI, rd=rng.randrange(1, 8),
                 rs1=rng.randrange(1, 8), imm=rng.randrange(-8, 8))
    # Patch placeholder branch targets to real forward indices.
    for index, inst in enumerate(instructions):
        if inst.is_branch and inst.target is not None and inst.target < 0:
            skip = min(-inst.target, len(instructions) - index - 1)
            instructions[index] = Instruction(
                inst.opcode, rs1=inst.rs1, rs2=inst.rs2, target=index + 1 + skip
            )
    # A bounded backward loop over the whole body.
    counter, limit = 20, 21
    instructions.insert(0, Instruction(Opcode.LI, rd=counter, imm=0))
    instructions.insert(1, Instruction(Opcode.LI, rd=limit, imm=rng.randrange(2, 4)))
    #

    # (inserting shifted branch targets by 2)
    fixed = []
    for inst in instructions[2:]:
        if inst.is_branch and inst.target is not None:
            fixed.append(Instruction(inst.opcode, rs1=inst.rs1, rs2=inst.rs2,
                                     target=inst.target + 2))
        else:
            fixed.append(inst)
    instructions = instructions[:2] + fixed
    loop_back_to = 2
    instructions.append(Instruction(Opcode.ADDI, rd=counter, rs1=counter, imm=1))
    instructions.append(
        Instruction(Opcode.BLT, rs1=counter, rs2=limit, target=loop_back_to)
    )
    instructions.append(Instruction(Opcode.HALT))

    memory = {
        _DATA_BASE + offset: rng.randrange(512)
        for offset in range(0, 512 + 8)
    }
    return Program(instructions, memory, name="random")


#: (configuration, attack model) pairs: every Table II row at least once,
#: the interesting ones under both models.
GRID = [
    ("Unsafe", AttackModel.SPECTRE),
    ("STT{ld}", AttackModel.SPECTRE),
    ("STT{ld}", AttackModel.FUTURISTIC),
    ("STT{ld+fp}", AttackModel.FUTURISTIC),
    ("Static L1", AttackModel.SPECTRE),
    ("Static L2", AttackModel.FUTURISTIC),
    ("Static L3", AttackModel.SPECTRE),
    ("Hybrid", AttackModel.SPECTRE),
    ("Hybrid", AttackModel.FUTURISTIC),
    ("Perfect", AttackModel.FUTURISTIC),
]


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000), length=st.integers(5, 30))
@pytest.mark.parametrize("config_name,model", GRID)
def test_random_programs_commit_golden_stream(config_name, model, seed, length):
    rng = random.Random(seed)
    program = _random_program(rng, length)
    config = config_by_name(config_name)
    core = Core(
        program,
        protection=make_protection(config, model),
        check_golden=True,  # every commit compared against the ISS
    )
    result = core.run(max_instructions=20_000, max_cycles=400_000)
    assert core.halted, f"did not halt under {config_name}/{model}"

    golden = Interpreter(program)
    golden.run(max_instructions=100_000)
    assert result.instructions == golden.instructions_retired
    # Architectural register state lives in the PRF behind the rename map.
    for arch in range(32):
        core_value = core.prf.value[core.rename_map.lookup(arch)]
        assert core_value == golden.state.read_reg(arch), f"r{arch}"
    for addr, value in golden.state.memory.items():
        assert core.committed.read_mem(addr) == value
