"""Tests for the core's forward-progress watchdog and termination reasons."""

import json

import pytest

from repro.common.config import MachineConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline import Core, DeadlockError, SimulationHang, UnsafeProtection
from repro.pipeline.protection import IssueDecision, LoadIssueAction
from repro.workloads import make_indirect_stream

WORKLOAD = make_indirect_stream("watchdog_unit", table_words=128, iterations=20, seed=7)


class WedgedProtection(UnsafeProtection):
    """Delays every load forever: the canonical way to wedge a core."""

    supports_fast_forward = False

    def load_issue_decision(self, uop):
        return IssueDecision(LoadIssueAction.DELAY)


def make_core(protection=None):
    machine = MachineConfig()
    return Core(
        WORKLOAD.program,
        config=machine,
        protection=protection or UnsafeProtection(),
        hierarchy=MemoryHierarchy(machine),
    )


class TestWatchdog:
    def test_wedged_core_trips_within_the_window(self):
        core = make_core(WedgedProtection())
        window = 2_000
        with pytest.raises(SimulationHang) as excinfo:
            core.run(max_instructions=1_000, hang_window=window)
        diag = excinfo.value.diagnostics
        # The watchdog must fire as soon as the window is exceeded, not
        # after some unrelated budget runs out.
        assert diag.hang_window == window
        assert diag.cycle - diag.last_commit_cycle > window
        assert diag.cycle <= diag.last_commit_cycle + window + 2

    def test_snapshot_names_the_blocked_rob_head(self):
        core = make_core(WedgedProtection())
        with pytest.raises(SimulationHang) as excinfo:
            core.run(max_instructions=1_000, hang_window=2_000)
        diag = excinfo.value.diagnostics
        assert diag.rob_head is not None and "load" in diag.rob_head
        assert diag.rob_head_state["opcode"] == "load"
        assert diag.rob_head_state["delayed_cycles"] > 2_000
        assert diag.stall_reason == "stt_delay"
        assert diag.protection == "WedgedProtection"
        # The exception message is the human-facing snapshot.
        message = str(excinfo.value)
        assert "ROB head" in message and "load" in message
        assert "stt_delay" in message

    def test_simulation_hang_is_a_deadlock_error(self):
        """Existing callers catch DeadlockError; the richer exception must
        still land in those handlers."""
        assert issubclass(SimulationHang, DeadlockError)

    def test_diagnostics_are_json_ready(self):
        core = make_core(WedgedProtection())
        with pytest.raises(SimulationHang) as excinfo:
            core.run(max_instructions=1_000, hang_window=2_000)
        payload = excinfo.value.diagnostics.as_dict()
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["stall_reason"] == "stt_delay"
        assert round_tripped["hang_window"] == 2_000
        assert round_tripped["rob_head_state"]["opcode"] == "load"

    def test_invalid_hang_window_rejected(self):
        core = make_core()
        with pytest.raises(ValueError):
            core.run(hang_window=0)
        with pytest.raises(ValueError):
            core.run(hang_window=-5)

    def test_healthy_run_never_trips(self):
        result = make_core().run(max_instructions=10_000, hang_window=2_000)
        assert result.halted


class TestTermination:
    def test_clean_halt(self):
        result = make_core().run()
        assert result.termination == "halted"
        assert result.halted

    def test_max_cycles_budget_is_not_a_hang(self):
        """Running out of cycle budget is an explicit, distinct outcome —
        not an exception, and not silently identical to a clean halt."""
        result = make_core().run(max_cycles=40)
        assert result.termination == "max_cycles"
        assert not result.halted
        assert result.cycles <= 40

    def test_max_instructions_budget(self):
        result = make_core().run(max_instructions=5)
        assert result.termination == "max_instructions"
        assert not result.halted
        assert result.instructions >= 5
