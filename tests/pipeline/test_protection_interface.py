"""Tests for the protection hook interface and its Unsafe default."""

import dataclasses

import pytest

from repro.common.config import MemLevel
from repro.isa.instructions import Instruction, Opcode
from repro.pipeline.protection import (
    FpIssueAction,
    IssueDecision,
    LoadIssueAction,
    UnsafeProtection,
)
from repro.pipeline.uop import DynInst, OblState, UopState


def make_load(seq=0):
    return DynInst(seq, seq, Instruction(Opcode.LOAD, rd=1, rs1=2, imm=0))


class TestUnsafeDefaults:
    def test_everything_is_permitted(self):
        protection = UnsafeProtection()
        uop = make_load()
        assert protection.load_issue_decision(uop).action is LoadIssueAction.NORMAL
        assert protection.fp_issue_decision(uop) is FpIssueAction.NORMAL
        assert protection.may_resolve_branch(uop)
        assert protection.output_safe(uop)
        assert not protection.sources_tainted(uop)
        assert protection.is_root_safe(123)

    def test_lifecycle_hooks_are_noops(self):
        protection = UnsafeProtection()
        uop = make_load()
        protection.begin_cycle(0)
        protection.on_rename(uop)
        protection.on_complete(uop)
        protection.on_commit(uop)
        protection.on_squash(uop)
        protection.on_load_outcome(uop, MemLevel.L2)
        assert uop.taint_root is None

    def test_attach_records_core(self):
        protection = UnsafeProtection()

        class FakeCore:
            pass

        core = FakeCore()
        protection.attach(core)
        assert protection.core is core


class TestIssueDecision:
    def test_oblivious_carries_level(self):
        decision = IssueDecision(LoadIssueAction.OBLIVIOUS, predicted_level=MemLevel.L2)
        assert decision.predicted_level is MemLevel.L2

    def test_frozen(self):
        decision = IssueDecision(LoadIssueAction.NORMAL)
        with pytest.raises(dataclasses.FrozenInstanceError):
            decision.action = LoadIssueAction.DELAY


class TestDynInstDefaults:
    def test_fresh_uop_state(self):
        uop = make_load(7)
        assert uop.state is UopState.FETCHED
        assert uop.obl_state is OblState.NONE
        assert not uop.safe
        assert not uop.completed
        assert uop.taint_root is None
        assert uop.predicted_level is None

    def test_passthrough_predicates(self):
        load = make_load()
        assert load.is_load and not load.is_store and not load.is_branch
        fdiv = DynInst(0, 0, Instruction(Opcode.FDIV, rd=101, rs1=102, rs2=103))
        assert fdiv.is_fp_transmitter
        branch = DynInst(0, 0, Instruction(Opcode.BNE, rs1=1, rs2=2, target=0))
        assert branch.is_branch

    def test_completed_property_tracks_state(self):
        uop = make_load()
        uop.state = UopState.COMPLETED
        assert uop.completed
        uop.state = UopState.RETIRED
        assert uop.completed

    def test_repr_is_informative(self):
        text = repr(make_load(42))
        assert "42" in text and "load" in text
