"""Tests for the out-of-order core: correctness against the golden model,
speculation, store-to-load forwarding, and structural stalls."""

import pytest

from repro.common.config import CoreConfig, MachineConfig
from repro.isa import assemble, Interpreter
from repro.pipeline.core import Core, DeadlockError, GoldenModelMismatch


def run_core(source, memory=None, **core_kwargs):
    program = assemble(source, memory or {})
    core = Core(program, **core_kwargs)
    result = core.run()
    return core, result


class TestBasicExecution:
    def test_matches_iss_on_arithmetic(self):
        source = """
            li r1, 6
            li r2, 7
            mul r3, r1, r2
            sub r4, r3, r1
            store r4, r0, 100
            halt
        """
        core, result = run_core(source)
        assert core.halted
        assert core.committed.read_mem(100) == 36

    def test_ipc_exceeds_one_on_independent_work(self):
        body = "\n".join(f"addi r{1 + i % 8}, r0, {i}" for i in range(200))
        _, result = run_core(body + "\nhalt")
        assert result.ipc > 1.5

    def test_dependent_chain_is_serial(self):
        body = "\n".join("addi r1, r1, 1" for _ in range(100))
        _, result = run_core("li r1, 0\n" + body + "\nhalt")
        assert result.cycles >= 100  # 1-cycle ALU chain lower bound

    def test_halts_exactly_once(self):
        _, result = run_core("nop\nhalt")
        assert result.instructions == 2

    def test_max_instructions_cap(self):
        program = assemble("spin: jmp spin\nhalt")
        core = Core(program, check_golden=False)
        result = core.run(max_instructions=64)
        assert not core.halted
        assert result.instructions >= 64


class TestBranches:
    def test_mispredict_recovers_architecturally(self):
        # Data-dependent branch pattern the predictor cannot know initially.
        source = """
            li r1, 0
            li r2, 50
            li r5, 0
        loop:
            andi r3, r1, 3
            beq r3, r0, skip
            addi r5, r5, 1
        skip:
            addi r1, r1, 1
            blt r1, r2, loop
            store r5, r0, 400
            halt
        """
        core, result = run_core(source)
        golden = Interpreter(assemble(source))
        golden.run()
        assert core.committed.read_mem(400) == golden.state.read_mem(400)
        assert result.stats["core.branch_squashes"] > 0

    def test_wrong_path_instructions_execute_and_squash(self):
        """Transient execution is real: wrong-path loads reach the cache."""
        source = """
            li r1, 1
            li r2, 2
            li r9, 4096
            load r3, r9, 0        ; slow (cold) load
            blt r3, r2, out       ; depends on the slow load; predicted...
            load r4, r9, 8192     ; only on the not-taken path
        out:
            halt
        """
        core, result = run_core(source, memory={4096: 0})
        # The branch is ultimately taken (0 < 2), but while it was
        # unresolved the fall-through path's load may have executed.
        assert result.stats["core.squashed_uops"] >= 0  # machinery exercised
        assert core.halted


class TestStoreLoadForwarding:
    def test_forward_from_in_flight_store(self):
        source = """
            li r1, 77
            li r2, 512
            store r1, r2, 0
            load r3, r2, 0       ; must see 77 via SQ forwarding
            store r3, r0, 600
            halt
        """
        core, result = run_core(source)
        assert core.committed.read_mem(600) == 77
        assert result.stats["core.sq_forwards"] >= 1

    def test_store_data_arriving_late(self):
        """Store address ready early, data late (split AGU path)."""
        source = """
            li r2, 512
            li r9, 4096
            load r1, r9, 0       ; slow data for the store
            store r1, r2, 0
            load r3, r2, 0
            store r3, r0, 600
            halt
        """
        core, _ = run_core(source, memory={4096: 123})
        assert core.committed.read_mem(600) == 123

    def test_younger_store_wins(self):
        source = """
            li r1, 1
            li r2, 2
            li r3, 512
            store r1, r3, 0
            store r2, r3, 0
            load r4, r3, 0
            store r4, r0, 600
            halt
        """
        core, _ = run_core(source)
        assert core.committed.read_mem(600) == 2


class TestStructuralLimits:
    def test_tiny_rob_still_correct(self):
        config = MachineConfig(core=CoreConfig(rob_entries=8, iq_entries=4))
        source = """
            li r1, 0
            li r2, 30
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            store r1, r0, 200
            halt
        """
        core, result = run_core(source, config=config)
        assert core.committed.read_mem(200) == 30
        structural_stalls = (
            result.stats.get("core.rob_full_stalls", 0)
            + result.stats.get("core.iq_full_stalls", 0)
        )
        assert structural_stalls > 0

    def test_single_lq_entry(self):
        config = MachineConfig(core=CoreConfig(lq_entries=1, sq_entries=1))
        memory = {1000 + 8 * i: i for i in range(8)}
        source = """
            li r1, 0
            li r2, 8
            li r12, 3
        loop:
            shl r9, r1, r12
            load r4, r9, 1000
            add r3, r3, r4
            addi r1, r1, 1
            blt r1, r2, loop
            store r3, r0, 2000
            halt
        """
        core, _ = run_core(source, memory=memory, config=config)
        assert core.committed.read_mem(2000) == sum(range(8))

    def test_deadlock_detection_fires(self):
        program = assemble("spin: jmp spin\nhalt")
        core = Core(program, check_golden=False)
        core._fetch_halted = True  # wedge the machine artificially
        core.rob.push  # (no-op reference; the wedge is the halt flag)
        with pytest.raises(DeadlockError):
            core.run(max_cycles=200_000)


class TestGoldenModelCheck:
    def test_detects_injected_corruption(self):
        source = """
            li r1, 5
            addi r2, r1, 1
            store r2, r0, 100
            halt
        """
        program = assemble(source)
        core = Core(program)
        # Swap the golden model for one executing a *different* program, to
        # prove the per-commit comparison is live.
        from repro.isa.iss import Interpreter

        core._golden = Interpreter(assemble("li r1, 6\nhalt"))
        with pytest.raises(GoldenModelMismatch):
            core.run()

    def test_check_can_be_disabled(self):
        core, result = run_core("li r1, 1\nhalt", check_golden=False)
        assert core._golden is None
        assert result.instructions == 2


class TestFloatingPoint:
    def test_fp_program_correct(self):
        source = """
            fli f0, 2.0
            fli f1, 3.0
            fmul f2, f0, f1
            fdiv f3, f2, f0
            fsqrt f4, f2
            fstore f3, r0, 800
            halt
        """
        core, _ = run_core(source)
        assert core.committed.read_mem(800) == 3.0

    def test_subnormal_operand_takes_slow_path(self):
        fast_src = """
            fli f0, 1.0
            fli f1, 2.0
            fdiv f2, f1, f0
            fstore f2, r0, 800
            halt
        """
        slow_src = """
            fli f0, 1e-40
            fli f1, 2.0
            fdiv f2, f1, f0
            fstore f2, r0, 800
            halt
        """
        _, fast = run_core(fast_src)
        _, slow = run_core(slow_src)
        assert slow.cycles > fast.cycles  # operand-dependent timing (Unsafe)
