"""Fast-forward equivalence: cycle skipping must be invisible in results.

The core's event-driven fast-forward (`Core._fast_forward`) jumps over
provably idle cycles, accruing the per-cycle accounting in closed form.
These tests pin the tentpole claim: the skipping loop is **bit-identical**
to the naive one-step-per-cycle loop — same cycles, same instructions, and
the same complete stats dict (every ``core.stall.*`` and ``core.occ.*`` key
included) — across protection schemes, attack models and workload shapes,
and against the committed golden fixture.
"""

import json
from pathlib import Path

import pytest

from repro.common.config import AttackModel, MachineConfig
from repro.pipeline.core import Core
from repro.sim.configs import config_by_name, make_protection
from repro.workloads import (
    make_indirect_stream,
    make_mixed_kernel,
    make_pointer_chase,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
GOLDEN_FIXTURE = REPO_ROOT / "tests" / "golden" / "golden_stats.json"

#: Shapes chosen to exercise different idle patterns: a mixed kernel
#: (branches + FP + loads), a cold pointer chase (serial DRAM misses — the
#: dominant fast-forward case), and a cold indirect stream (tainted loads,
#: STT delay windows).
WORKLOADS = {
    "mixed": make_mixed_kernel(
        "ff_mixed", table_words=4096, iterations=60, seed=7
    ),
    "pointer_chase": make_pointer_chase(
        "ff_chase", nodes=2048, iterations=120, seed=8, warm_table=False
    ),
    "indirect_dram": make_indirect_stream(
        "ff_ind", table_words=262144, iterations=80, seed=9, warm_table=False
    ),
}
CONFIG_NAMES = (
    "Unsafe", "STT{ld}", "STT{ld+fp}", "Hybrid", "Perfect",
    "SpecBox", "DelayOnMiss", "Fence",
)


def _run(workload, config_name, attack_model, fast_forward):
    config = config_by_name(config_name)
    machine = MachineConfig(protection=config.protection_config(attack_model))
    core = Core(
        workload.program, machine, make_protection(config, attack_model)
    )
    core.fast_forward = fast_forward
    return core.run(), core


@pytest.mark.parametrize("model", [AttackModel.SPECTRE, AttackModel.FUTURISTIC])
@pytest.mark.parametrize("config_name", CONFIG_NAMES)
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_fast_forward_is_bit_identical(workload_name, config_name, model):
    workload = WORKLOADS[workload_name]
    naive, _ = _run(workload, config_name, model, fast_forward=False)
    fast, core = _run(workload, config_name, model, fast_forward=True)
    assert fast.cycles == naive.cycles
    assert fast.instructions == naive.instructions
    assert fast.stats == naive.stats
    # Spell out the per-cycle-accounting families the accrual replays in
    # closed form, so a drift there fails with the offending key's name.
    stall_keys = [k for k in naive.stats if k.startswith("core.stall.")]
    occ_keys = [k for k in naive.stats if k.startswith("core.occ.")]
    assert stall_keys and occ_keys
    for key in (*stall_keys, *occ_keys):
        assert fast.stats[key] == naive.stats[key], key
    # The naive core never skipped; telemetry is the only allowed difference.
    assert core.ff_skipped_cycles + core.ff_windows >= 0


def test_fast_forward_actually_skips_on_dram_bound_work():
    """Guard against the predicate silently never firing (which would keep
    the equivalence tests green while losing the entire speedup)."""
    _, core = _run(
        WORKLOADS["pointer_chase"], "STT{ld}", AttackModel.SPECTRE, True
    )
    assert core.ff_windows > 0
    assert core.ff_skipped_cycles > core.cycle // 2, (
        f"only {core.ff_skipped_cycles} of {core.cycle} cycles skipped on a "
        "DRAM-latency-bound workload"
    )


def test_stall_attribution_invariant_holds_with_skipping():
    """`cycles == commit_active_cycles + sum(core.stall.*)` must survive the
    closed-form accrual exactly."""
    for config_name in ("Unsafe", "STT{ld}", "Hybrid"):
        result, _ = _run(
            WORKLOADS["indirect_dram"], config_name, AttackModel.SPECTRE, True
        )
        stalls = sum(
            v for k, v in result.stats.items() if k.startswith("core.stall.")
        )
        assert result.cycles == result.stats["core.commit_active_cycles"] + stalls


def test_tracer_disables_skipping():
    """Traced runs must see every cycle: attaching a CycleTracer forces the
    naive loop (documented in the README)."""
    from repro.analysis.trace import CycleTracer

    workload = WORKLOADS["pointer_chase"]
    config = config_by_name("STT{ld}")
    machine = MachineConfig(
        protection=config.protection_config(AttackModel.SPECTRE)
    )
    core = Core(
        workload.program, machine, make_protection(config, AttackModel.SPECTRE)
    )
    CycleTracer().attach(core)
    core.run()
    assert core.ff_windows == 0
    assert core.ff_skipped_cycles == 0


def test_naive_loop_matches_golden_fixture(monkeypatch):
    """The committed fixture pins the default (skipping) path; running the
    same cells with skipping force-disabled must reproduce it bit for bit,
    closing the loop fixture == fast-forward == naive."""
    import importlib.util

    from repro.common.config import AttackModel as Model
    from repro.sim.api import RunRequest, execute

    spec = importlib.util.spec_from_file_location(
        "refresh_golden_stats", REPO_ROOT / "scripts" / "refresh_golden_stats.py"
    )
    refresh = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(refresh)

    fixture_cells = json.loads(GOLDEN_FIXTURE.read_text())["cells"]
    monkeypatch.setattr(Core, "fast_forward", False)
    workload = make_indirect_stream(
        "golden_stats_kernel", table_words=1024, iterations=80, seed=42
    )
    for cell, expected in fixture_cells.items():
        if cell == refresh.STRESS_CELL_KEY:
            request = RunRequest(
                workload=refresh.stress_workload(),
                config=config_by_name("Static L1"),
                attack_model=Model.SPECTRE,
                machine=refresh.stress_machine(),
            )
        else:
            config_name, model = cell.split("/")
            request = RunRequest(
                workload=workload,
                config=config_by_name(config_name),
                attack_model=Model(model),
            )
        assert execute(request).to_dict() == expected, cell
