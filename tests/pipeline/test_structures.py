"""Tests for rename map, physical register file, ROB, and LSQ structures."""

import pytest

from repro.isa.instructions import FP_BASE, Instruction, Opcode
from repro.pipeline.lsq import LoadQueue, StoreQueue
from repro.pipeline.registers import PhysRegFile, RenameMap
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.uop import DynInst


def make_uop(seq, opcode=Opcode.ADDI, **kwargs):
    return DynInst(seq, pc=seq, inst=Instruction(opcode, **kwargs))


class TestRenameMap:
    def test_initial_mappings_ready(self):
        prf = PhysRegFile(100)
        rename = RenameMap(prf)
        for arch in (0, 1, 31, FP_BASE, FP_BASE + 15):
            preg = rename.lookup(arch)
            assert prf.ready[preg]

    def test_rename_dest_allocates_fresh(self):
        prf = PhysRegFile(100)
        rename = RenameMap(prf)
        old_mapping = rename.lookup(5)
        new_preg, old_preg = rename.rename_dest(5)
        assert old_preg == old_mapping
        assert rename.lookup(5) == new_preg
        assert not prf.ready[new_preg]

    def test_r0_stays_pinned(self):
        prf = PhysRegFile(100)
        rename = RenameMap(prf)
        new_preg, _ = rename.rename_dest(0)
        assert rename.lookup(0) == RenameMap.ZERO_PREG
        assert new_preg != RenameMap.ZERO_PREG  # sink register allocated

    def test_rollback(self):
        prf = PhysRegFile(100)
        rename = RenameMap(prf)
        original = rename.lookup(3)
        _, old = rename.rename_dest(3)
        rename.rollback_dest(3, old)
        assert rename.lookup(3) == original

    def test_exhaustion_returns_none(self):
        prf = PhysRegFile(48)  # exactly the architectural registers
        rename = RenameMap(prf)
        assert prf.free_count() == 0
        assert rename.rename_dest(1) is None

    def test_free_recycles(self):
        prf = PhysRegFile(49)  # one spare
        rename = RenameMap(prf)
        new_preg, old = rename.rename_dest(1)
        assert rename.rename_dest(2) is None
        prf.free(old)
        assert rename.rename_dest(2) is not None


class TestReorderBuffer:
    def test_fifo_order(self):
        rob = ReorderBuffer(4)
        uops = [make_uop(i) for i in range(3)]
        for uop in uops:
            rob.push(uop)
        assert rob.head is uops[0]
        assert rob.pop_head() is uops[0]
        assert rob.head is uops[1]

    def test_capacity(self):
        rob = ReorderBuffer(2)
        rob.push(make_uop(0))
        rob.push(make_uop(1))
        assert rob.full
        with pytest.raises(RuntimeError):
            rob.push(make_uop(2))

    def test_squash_younger_than_returns_youngest_first(self):
        rob = ReorderBuffer(8)
        uops = [make_uop(i) for i in range(5)]
        for uop in uops:
            rob.push(uop)
        squashed = rob.squash_younger_than(2)
        assert [u.seq for u in squashed] == [4, 3]
        assert [u.seq for u in rob] == [0, 1, 2]

    def test_older_than(self):
        rob = ReorderBuffer(8)
        for i in range(4):
            rob.push(make_uop(i))
        assert [u.seq for u in rob.older_than(2)] == [0, 1]


class TestStoreQueue:
    def _store(self, seq, addr=None, value=None):
        uop = make_uop(seq, Opcode.STORE, rs1=1, rs2=2, imm=0)
        uop.addr = addr
        uop.store_value = value
        return uop

    def test_addresses_known_gate(self):
        sq = StoreQueue(4)
        sq.push(self._store(0, addr=8))
        sq.push(self._store(1, addr=None))
        assert sq.all_addresses_known_before(1)
        assert not sq.all_addresses_known_before(2)

    def test_forward_source_picks_youngest_older(self):
        sq = StoreQueue(4)
        older = self._store(0, addr=8, value=1)
        newer = self._store(2, addr=8, value=2)
        sq.push(older)
        sq.push(newer)
        assert sq.forward_source(8, seq=3) is newer
        assert sq.forward_source(8, seq=1) is older
        assert sq.forward_source(8, seq=0) is None
        assert sq.forward_source(16, seq=3) is None

    def test_squash(self):
        sq = StoreQueue(4)
        sq.push(self._store(0, addr=8))
        sq.push(self._store(5, addr=16))
        sq.squash_younger_than(2)
        assert len(sq) == 1

    def test_overflow(self):
        sq = StoreQueue(1)
        sq.push(self._store(0))
        with pytest.raises(RuntimeError):
            sq.push(self._store(1))


class TestLoadQueue:
    def test_loads_of_line(self):
        lq = LoadQueue(4)
        load = make_uop(0, Opcode.LOAD, rd=1, rs1=2, imm=0)
        load.line = 7
        load.issue_cycle = 3
        lq.push(load)
        pending = make_uop(1, Opcode.LOAD, rd=1, rs1=2, imm=0)
        pending.line = 7  # not yet issued
        lq.push(pending)
        assert lq.loads_of_line(7) == [load]

    def test_squash_and_remove(self):
        lq = LoadQueue(4)
        a, b = make_uop(0, Opcode.LOAD, rd=1, rs1=2), make_uop(3, Opcode.LOAD, rd=1, rs1=2)
        lq.push(a)
        lq.push(b)
        lq.squash_younger_than(1)
        assert list(lq) == [a]
        lq.remove(a)
        assert len(lq) == 0
