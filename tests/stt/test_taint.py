"""Tests for the untaint frontier and STT taint propagation."""

import math


from repro.common.config import AttackModel
from repro.isa.instructions import Instruction, Opcode
from repro.pipeline.uop import DynInst, OblState
from repro.stt.taint import UntaintFrontier


def branch(seq):
    return DynInst(seq, seq, Instruction(Opcode.BLT, rs1=1, rs2=2, target=0))


def load(seq):
    return DynInst(seq, seq, Instruction(Opcode.LOAD, rd=1, rs1=2, imm=0))


def fp(seq):
    return DynInst(seq, seq, Instruction(Opcode.FMUL, rd=101, rs1=102, rs2=103))


class TestSpectreFrontier:
    def test_empty_frontier_is_infinite(self):
        frontier = UntaintFrontier(AttackModel.SPECTRE)
        assert frontier.value() == math.inf
        assert frontier.is_safe(12345)
        assert frontier.is_safe(None)

    def test_unresolved_branch_blocks_younger_roots(self):
        frontier = UntaintFrontier(AttackModel.SPECTRE)
        b = branch(10)
        frontier.register(b)
        assert frontier.is_safe(5)  # older than the branch
        assert frontier.is_safe(10)  # the frontier instruction itself
        assert not frontier.is_safe(11)  # younger: tainted

    def test_resolution_advances_frontier(self):
        frontier = UntaintFrontier(AttackModel.SPECTRE)
        b = branch(10)
        frontier.register(b)
        b.resolved = True
        assert frontier.is_safe(11)

    def test_squashed_branch_stops_blocking(self):
        frontier = UntaintFrontier(AttackModel.SPECTRE)
        b = branch(10)
        frontier.register(b)
        b.squashed = True
        assert frontier.value() == math.inf

    def test_loads_do_not_block_in_spectre(self):
        frontier = UntaintFrontier(AttackModel.SPECTRE)
        frontier.register(load(5))
        assert frontier.is_safe(100)

    def test_min_over_many(self):
        frontier = UntaintFrontier(AttackModel.SPECTRE)
        branches = [branch(s) for s in (30, 10, 20)]
        for b in branches:
            frontier.register(b)
        assert frontier.value() == 10
        branches[1].resolved = True
        assert frontier.value() == 20


class TestFuturisticFrontier:
    def test_incomplete_load_blocks(self):
        frontier = UntaintFrontier(AttackModel.FUTURISTIC)
        ld = load(7)
        frontier.register(ld)
        assert not frontier.is_safe(8)

    def test_completed_normal_load_unblocks(self):
        frontier = UntaintFrontier(AttackModel.FUTURISTIC)
        ld = load(7)
        frontier.register(ld)
        from repro.pipeline.uop import UopState

        ld.state = UopState.COMPLETED
        assert frontier.is_safe(8)

    def test_obl_load_blocks_until_safe(self):
        from repro.pipeline.uop import UopState

        frontier = UntaintFrontier(AttackModel.FUTURISTIC)
        ld = load(7)
        frontier.register(ld)
        ld.state = UopState.COMPLETED
        ld.obl_state = OblState.DONE
        assert not frontier.is_safe(8)  # could still fail-squash
        ld.safe = True
        assert frontier.is_safe(8)

    def test_pending_validation_blocks(self):
        from repro.pipeline.uop import UopState

        frontier = UntaintFrontier(AttackModel.FUTURISTIC)
        ld = load(7)
        frontier.register(ld)
        ld.state = UopState.COMPLETED
        ld.needs_validation = True
        assert not frontier.is_safe(8)
        ld.validation_done = True
        assert frontier.is_safe(8)

    def test_pending_squash_blocks(self):
        from repro.pipeline.uop import UopState

        frontier = UntaintFrontier(AttackModel.FUTURISTIC)
        ld = load(7)
        frontier.register(ld)
        ld.state = UopState.COMPLETED
        ld.pending_squash = True
        assert not frontier.is_safe(8)

    def test_fast_predicted_fp_blocks_until_safe(self):
        from repro.pipeline.uop import UopState

        frontier = UntaintFrontier(AttackModel.FUTURISTIC)
        op = fp(9)
        frontier.register(op)
        op.state = UopState.COMPLETED
        op.fp_predicted_fast = True
        assert not frontier.is_safe(10)
        op.safe = True
        assert frontier.is_safe(10)

    def test_fp_not_registered_in_spectre(self):
        frontier = UntaintFrontier(AttackModel.SPECTRE)
        frontier.register(fp(9))
        assert len(frontier) == 0
