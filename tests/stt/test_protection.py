"""Behavioural tests for STT on the live pipeline.

These test the *semantics* STT promises: tainted transmitters do not issue
while tainted, taint propagates through dataflow, untainting follows the
attack model, and branch resolution is delayed while predicates are tainted.
"""


from repro.common.config import AttackModel
from repro.isa import assemble
from repro.pipeline.core import Core
from repro.pipeline.protection import LoadIssueAction
from repro.stt.protection import SttProtection


def run(source, memory=None, model=AttackModel.SPECTRE, fp=False):
    program = assemble(source, memory or {})
    protection = SttProtection(attack_model=model, fp_transmitters=fp)
    core = Core(program, protection=protection)
    result = core.run()
    return core, protection, result


#: A kernel with a slow-resolving branch over a dependent load chain.  The
#: second load's address comes from the first load, and an older branch is
#: still unresolved when it becomes ready -> STT must delay it.
TAINTED_KERNEL = """
    li r1, 0
    li r2, 20
    li r6, 64
    li r7, 1000000
loop:
    mul r8, r1, r6
    load r5, r8, 65536      ; slow condition load (cold lines)
    bge r5, r7, skip        ; branch unresolved while r5 in flight
    load r3, r0, 4096       ; access under the branch (clean address)
    and r3, r3, r6
    load r4, r3, 4096       ; address depends on speculative data: TAINTED
skip:
    addi r1, r1, 1
    blt r1, r2, loop
    store r4, r0, 9000
    halt
"""


class TestDelayedExecution:
    def test_tainted_loads_are_delayed(self):
        core, protection, result = run(TAINTED_KERNEL)
        assert result.stats["core.load_delay_cycles"] > 0

    def test_unsafe_runs_faster(self):
        program = assemble(TAINTED_KERNEL)
        unsafe = Core(program).run()
        _, _, stt = run(TAINTED_KERNEL)
        assert stt.cycles >= unsafe.cycles

    def test_futuristic_delays_at_least_spectre(self):
        _, _, spectre = run(TAINTED_KERNEL, model=AttackModel.SPECTRE)
        _, _, futuristic = run(TAINTED_KERNEL, model=AttackModel.FUTURISTIC)
        assert (
            futuristic.stats["core.load_delay_cycles"]
            >= spectre.stats["core.load_delay_cycles"]
        )

    def test_results_still_architecturally_correct(self):
        core, _, _ = run(TAINTED_KERNEL)
        assert core.halted  # golden check active throughout


class TestTaintAssignment:
    def test_load_output_gets_own_seq_as_root(self):
        source = """
            li r1, 64
            load r2, r1, 0
            add r3, r2, r1
            halt
        """
        program = assemble(source, {64: 5})
        protection = SttProtection()
        core = Core(program, protection=protection)
        # Step until the load has renamed.
        for _ in range(20):
            core.step()
            if core.halted:
                break
        assert protection.stats["access_taints"] >= 1

    def test_non_access_inherits_youngest_root(self):
        protection = SttProtection()
        source = """
            li r1, 64
            load r2, r1, 0
            load r3, r1, 8
            add r4, r2, r3
            halt
        """
        core = Core(assemble(source, {}), protection=protection)
        # Find the renamed uops after a few cycles.
        for _ in range(6):
            core.step()
        uops = {u.pc: u for u in core.rob}
        if 3 in uops and uops[3].src_taint_root is not None:
            # add's root must be the younger of the two loads.
            assert uops[3].src_taint_root == uops[2].taint_root

    def test_untainted_sources_issue_normally(self):
        protection = SttProtection()
        decision_actions = []
        source = """
            li r1, 64
            load r2, r1, 0
            halt
        """
        core = Core(assemble(source, {}), protection=protection)
        original = protection.load_issue_decision

        def spy(uop):
            decision = original(uop)
            decision_actions.append(decision.action)
            return decision

        protection.load_issue_decision = spy
        core.run()
        assert all(a is LoadIssueAction.NORMAL for a in decision_actions)


class TestImplicitChannelRule:
    def test_tainted_branch_resolution_is_delayed(self):
        source = """
            li r1, 0
            li r2, 12
            li r6, 64
            li r7, 1000000
        loop:
            mul r8, r1, r6
            load r5, r8, 65536   ; slow load keeps bge unresolved
            bge r5, r7, skip
            load r3, r8, 4096    ; clean address: executes speculatively,
                                 ; output tainted (root = itself)
            blt r3, r6, skip     ; branch predicate TAINTED by r3
            addi r4, r4, 1
        skip:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """
        _, _, result = run(source)
        assert result.stats.get("core.delayed_resolutions", 0) > 0

    def test_predictor_updates_only_after_resolution(self):
        """The branch predictor's update count never exceeds resolved
        branches (no tainted-outcome training)."""
        core, _, result = run(TAINTED_KERNEL)
        assert core.bpred.predictions >= core.bpred.mispredictions


class TestFpTransmitters:
    FP_KERNEL = """
        li r1, 0
        li r2, 15
        li r6, 64
        li r7, 1000000
        fli f1, 1.5
    loop:
        mul r8, r1, r6
        load r5, r8, 65536      ; slow condition load
        bge r5, r7, skip        ; long window
        fload f0, r8, 4096      ; clean address: issues under the branch
        fmul f2, f0, f1         ; operand tainted -> {ld+fp} delays this
        fadd f3, f3, f2
    skip:
        addi r1, r1, 1
        blt r1, r2, loop
        fstore f3, r0, 9000
        halt
    """

    def test_ld_config_never_delays_fp(self):
        _, _, result = run(self.FP_KERNEL, fp=False)
        assert result.stats.get("core.fp_delay_cycles", 0) == 0

    def test_ldfp_config_delays_tainted_fp(self):
        _, _, result = run(self.FP_KERNEL, fp=True)
        assert result.stats["core.fp_delay_cycles"] > 0

    def test_names(self):
        assert SttProtection().name == "STT{ld}"
        assert SttProtection(fp_transmitters=True).name == "STT{ld+fp}"
