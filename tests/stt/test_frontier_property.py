"""Property tests on the untaint frontier: monotonicity per root.

STT's correctness leans on an untaint being irreversible: once a root is
declared safe, no later event may re-taint it (values may already have been
revealed).  We drive the frontier with random sequences of register/resolve
events and assert per-root monotonicity plus consistency with a brute-force
reference ("no unfinished squash-capable uop strictly older than the root").
"""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.common.config import AttackModel
from repro.isa.instructions import Instruction, Opcode
from repro.pipeline.uop import DynInst, UopState
from repro.stt.taint import UntaintFrontier


def _branch(seq):
    return DynInst(seq, seq, Instruction(Opcode.BLT, rs1=1, rs2=2, target=0))


def _load(seq):
    return DynInst(seq, seq, Instruction(Opcode.LOAD, rd=1, rs1=2, imm=0))


@st.composite
def event_scripts(draw):
    """A random interleaving of register and finish events, program order
    respected for registration (seq increases)."""
    count = draw(st.integers(2, 30))
    kinds = draw(st.lists(st.sampled_from(["branch", "load"]), min_size=count, max_size=count))
    finish_order = draw(st.permutations(list(range(count))))
    return kinds, finish_order


class TestFrontierProperties:
    @given(event_scripts(), st.sampled_from([AttackModel.SPECTRE, AttackModel.FUTURISTIC]))
    @settings(max_examples=60, deadline=None)
    def test_per_root_safety_is_monotone(self, script, model):
        kinds, finish_order = script
        frontier = UntaintFrontier(model)
        uops = []
        for seq, kind in enumerate(kinds):
            uop = _branch(seq) if kind == "branch" else _load(seq)
            uops.append(uop)
            frontier.register(uop)
        roots = list(range(len(uops) + 2))
        ever_safe = {root: frontier.is_safe(root) for root in roots}
        for index in finish_order:
            uop = uops[index]
            if uop.is_branch:
                uop.resolved = True
            else:
                uop.state = UopState.COMPLETED
            for root in roots:
                safe_now = frontier.is_safe(root)
                if ever_safe[root]:
                    assert safe_now, f"root {root} re-tainted ({model})"
                ever_safe[root] = ever_safe[root] or safe_now
        # Everything finished: every root is safe.
        assert all(frontier.is_safe(root) for root in roots)

    @given(event_scripts())
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce_reference_spectre(self, script):
        kinds, finish_order = script
        frontier = UntaintFrontier(AttackModel.SPECTRE)
        uops = []
        for seq, kind in enumerate(kinds):
            uop = _branch(seq) if kind == "branch" else _load(seq)
            uops.append(uop)
            frontier.register(uop)

        def reference_safe(root):
            return not any(
                u.is_branch and not u.resolved and u.seq < root for u in uops
            )

        for index in finish_order:
            uop = uops[index]
            if uop.is_branch:
                uop.resolved = True
            else:
                uop.state = UopState.COMPLETED
            for root in range(len(uops) + 1):
                assert frontier.is_safe(root) == reference_safe(root)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_squashed_uops_never_block(self, seqs):
        frontier = UntaintFrontier(AttackModel.FUTURISTIC)
        for seq in sorted(set(seqs)):
            uop = _load(seq)
            uop.squashed = True
            frontier.register(uop)
        assert frontier.value() == math.inf
