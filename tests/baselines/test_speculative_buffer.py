"""The hierarchy's speculative buffer: SpecBox's transparent-load substrate.

The invariant the scheme rests on: a speculative (buffered) load leaves
**no cache-state trace** until it commits — the caches see neither fills
nor replacement updates — while still paying the real address-dependent
walk timing.  Release at commit makes the fill architectural; drop on
squash erases the entry.
"""

import pytest

from repro.common.config import MachineConfig, MemLevel
from repro.memory.hierarchy import MemoryHierarchy

COLD = 0x900000


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(MachineConfig())


class TestSpeculativeLoadTransparency:
    def test_no_cache_trace_before_release(self, hierarchy):
        response = hierarchy.speculative_load(COLD, 0)
        assert response.level is MemLevel.DRAM
        assert hierarchy.residence_level(COLD) is MemLevel.DRAM
        assert not hierarchy.line_in_l1(COLD)

    def test_walk_timing_matches_normal_path(self, hierarchy):
        """Transparency hides *state*, not *time*: the probe-only walk costs
        the same as a normal cold walk would."""
        normal = MemoryHierarchy(MachineConfig()).load(COLD, 0)
        speculative = hierarchy.speculative_load(COLD, 0)
        assert speculative.complete_at == normal.complete_at

    def test_flush_reload_cannot_see_a_buffered_line(self, hierarchy):
        from repro.security.channels import CacheTimingReceiver

        receiver = CacheTimingReceiver(hierarchy)
        receiver.flush([COLD])
        hierarchy.speculative_load(COLD, 0)
        [probe] = receiver.reload([COLD], now=1000)
        assert not probe.hit

    def test_release_makes_the_fill_architectural(self, hierarchy):
        hierarchy.speculative_load(COLD, 0)
        hierarchy.release_speculative(COLD, 500)
        assert hierarchy.line_in_l1(COLD)
        assert hierarchy.residence_level(COLD) is MemLevel.L1

    def test_drop_leaves_nothing(self, hierarchy):
        hierarchy.speculative_load(COLD, 0)
        hierarchy.drop_speculative(COLD)
        assert hierarchy.residence_level(COLD) is MemLevel.DRAM
        assert hierarchy.stats["spec_drops"] == 1

    def test_buffer_hit_is_l1_fast(self, hierarchy):
        first = hierarchy.speculative_load(COLD, 0)
        start = first.complete_at + 1
        second = hierarchy.speculative_load(COLD, start)
        assert hierarchy.stats["spec_buffer_hits"] == 1
        latency = second.complete_at - start
        assert latency <= MachineConfig().l1d.latency + 2  # +TLB

    def test_refcount_survives_partial_drop(self, hierarchy):
        first = hierarchy.speculative_load(COLD, 0)
        hierarchy.speculative_load(COLD, first.complete_at + 1)
        hierarchy.drop_speculative(COLD)
        # One of the two in-flight loads squashed; the other still hits.
        third = hierarchy.speculative_load(COLD, first.complete_at + 100)
        assert hierarchy.stats["spec_buffer_hits"] == 2
        assert third.level is not None
