"""End-to-end behaviour of the competing baseline schemes on a real core."""

import pytest

from repro.common.config import AttackModel, MachineConfig
from repro.pipeline.core import Core
from repro.sim.configs import config_by_name, make_protection
from repro.workloads import make_indirect_stream, make_pointer_chase

WORKLOADS = {
    "indirect": make_indirect_stream(
        "bl_ind", table_words=4096, iterations=60, seed=21, warm_table=False
    ),
    "chase": make_pointer_chase(
        "bl_chase", nodes=1024, iterations=80, seed=22, warm_table=False
    ),
}
MODELS = (AttackModel.SPECTRE, AttackModel.FUTURISTIC)


def _run(workload, config_name, model):
    config = config_by_name(config_name)
    machine = MachineConfig(protection=config.protection_config(model))
    core = Core(
        workload.program, machine, make_protection(config, model)
    )
    metrics = core.run()
    return metrics, core


class TestSpecBox:
    @pytest.mark.parametrize("model", MODELS)
    def test_buffer_lifecycle_balances(self, model):
        metrics, _ = _run(WORKLOADS["chase"], "SpecBox", model)
        stats = metrics.stats
        spec_loads = stats["mem.spec_loads"]
        assert spec_loads > 0
        # Every buffered issue either committed (released) or squashed
        # (dropped); buffer hits piggyback on an existing entry.
        assert stats["stt.spec_commits"] + stats["stt.spec_squashes"] > 0
        assert (
            stats["mem.spec_releases"] + stats["mem.spec_drops"]
            <= spec_loads
        )

    def test_never_delays_loads(self):
        metrics, _ = _run(WORKLOADS["indirect"], "SpecBox", AttackModel.SPECTRE)
        assert metrics.stats.get("protection.decisions.load_delay", 0) == 0
        assert metrics.stats["protection.decisions.load_buffered"] > 0

    def test_architectural_results_match_unsafe(self):
        """Transparent speculation changes timing, never values."""
        unsafe, _ = _run(WORKLOADS["indirect"], "Unsafe", AttackModel.SPECTRE)
        specbox, _ = _run(WORKLOADS["indirect"], "SpecBox", AttackModel.SPECTRE)
        assert specbox.instructions == unsafe.instructions

    def test_slowdown_is_modest(self):
        """SpecBox's cost is commit-time fills and lost wrong-path warming —
        it must sit well below the delay-based schemes on miss-heavy work."""
        unsafe, _ = _run(WORKLOADS["chase"], "Unsafe", AttackModel.SPECTRE)
        specbox, _ = _run(WORKLOADS["chase"], "SpecBox", AttackModel.SPECTRE)
        dom, _ = _run(WORKLOADS["chase"], "DelayOnMiss", AttackModel.SPECTRE)
        assert unsafe.cycles <= specbox.cycles <= dom.cycles


class TestDelayOnMiss:
    @pytest.mark.parametrize("model", MODELS)
    def test_misses_delay_and_hits_proceed(self, model):
        metrics, _ = _run(WORKLOADS["chase"], "DelayOnMiss", model)
        stats = metrics.stats
        assert stats["protection.decisions.load_delay"] > 0
        assert stats["stt.dom_hits_allowed"] > 0
        # DoM never uses the oblivious or buffered issue paths.
        assert stats.get("protection.decisions.load_oblivious", 0) == 0
        assert stats.get("protection.decisions.load_buffered", 0) == 0

    def test_architectural_results_match_unsafe(self):
        unsafe, _ = _run(WORKLOADS["chase"], "Unsafe", AttackModel.SPECTRE)
        dom, _ = _run(WORKLOADS["chase"], "DelayOnMiss", AttackModel.SPECTRE)
        assert dom.instructions == unsafe.instructions
        assert dom.cycles >= unsafe.cycles

    def test_futuristic_is_no_cheaper_than_spectre(self):
        """The Futuristic visibility point is strictly later, so DoM can
        only delay more."""
        spectre, _ = _run(
            WORKLOADS["chase"], "DelayOnMiss", AttackModel.SPECTRE
        )
        futuristic, _ = _run(
            WORKLOADS["chase"], "DelayOnMiss", AttackModel.FUTURISTIC
        )
        assert futuristic.cycles >= spectre.cycles


class TestFence:
    @pytest.mark.parametrize("model", MODELS)
    def test_every_speculative_load_delays(self, model):
        metrics, _ = _run(WORKLOADS["chase"], "Fence", model)
        stats = metrics.stats
        assert stats["protection.decisions.load_delay"] > 0
        # Fence has no escape hatches: no L1-hit allowance, no oblivious
        # or buffered issue paths.
        assert stats.get("stt.dom_hits_allowed", 0) == 0
        assert stats.get("protection.decisions.load_oblivious", 0) == 0
        assert stats.get("protection.decisions.load_buffered", 0) == 0

    def test_architectural_results_match_unsafe(self):
        unsafe, _ = _run(WORKLOADS["chase"], "Unsafe", AttackModel.SPECTRE)
        fence, _ = _run(WORKLOADS["chase"], "Fence", AttackModel.SPECTRE)
        assert fence.instructions == unsafe.instructions
        assert fence.cycles >= unsafe.cycles

    def test_at_least_as_slow_as_delay_on_miss(self):
        """Fence is DoM minus the L1-hit allowance, so on any workload it
        can only delay a superset of DoM's loads."""
        dom, _ = _run(WORKLOADS["chase"], "DelayOnMiss", AttackModel.SPECTRE)
        fence, _ = _run(WORKLOADS["chase"], "Fence", AttackModel.SPECTRE)
        assert fence.cycles >= dom.cycles
