"""Tests for workload generators and the SPEC17-like suite."""

import pytest

from repro.isa import Interpreter
from repro.workloads import (
    SPEC17_SUITE,
    make_compute_kernel,
    make_fp_dense,
    make_fp_stream,
    make_hash_probe,
    make_indirect_stream,
    make_mixed_kernel,
    make_pointer_chase,
    make_stream_kernel,
    make_stride_reuse,
    suite,
    workload_by_name,
)


def functional_run(workload, limit=1_000_000):
    interpreter = Interpreter(workload.program)
    trace = interpreter.run(limit)
    assert interpreter.halted, f"{workload.name} did not halt in {limit} instructions"
    return trace


class TestGeneratorsProduceRunnablePrograms:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: make_indirect_stream("t", table_words=256, iterations=50),
            lambda: make_indirect_stream("t", table_words=256, iterations=30, unroll=3),
            lambda: make_pointer_chase("t", nodes=64, iterations=50),
            lambda: make_pointer_chase("t", nodes=64, iterations=20, value_branch=False),
            lambda: make_hash_probe("t", buckets=64, iterations=40),
            lambda: make_stream_kernel("t", words=256, iterations=60),
            lambda: make_stride_reuse("t", block_words=128, passes=2),
            lambda: make_fp_dense("t", elems=64, iterations=40, companion_words=128),
            lambda: make_fp_stream("t", words=128, iterations=40),
            lambda: make_compute_kernel("t", iterations=60),
            lambda: make_mixed_kernel("t", table_words=128, iterations=40),
        ],
        ids=["indirect", "indirect-unrolled", "chase", "chase-nobranch", "hash",
             "stream", "stride", "fp-dense", "fp-stream", "compute", "mixed"],
    )
    def test_halts_functionally(self, factory):
        workload = factory()
        trace = functional_run(workload)
        assert len(trace) > 50

    def test_pad_ops_add_instructions(self):
        plain = make_indirect_stream("a", table_words=64, iterations=10)
        padded = make_indirect_stream("b", table_words=64, iterations=10, pad_ops=4)
        assert padded.static_instructions > plain.static_instructions

    def test_unroll_multiplies_table_loads(self):
        single = make_indirect_stream("a", table_words=64, iterations=10, unroll=1)
        triple = make_indirect_stream("b", table_words=64, iterations=10, unroll=3)
        single_loads = sum(1 for i in single.program.instructions if i.is_load)
        triple_loads = sum(1 for i in triple.program.instructions if i.is_load)
        assert triple_loads > single_loads

    def test_hash_probe_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            make_hash_probe("t", buckets=100, iterations=10)

    def test_subnormal_fraction_plants_subnormals(self):
        from repro.isa.instructions import is_subnormal

        workload = make_fp_dense(
            "t", elems=256, iterations=10, subnormal_frac=0.5, companion_words=256
        )
        values = [v for v in workload.program.initial_memory.values()
                  if isinstance(v, float)]
        subnormals = sum(1 for v in values if is_subnormal(v))
        assert subnormals > 10

    def test_deterministic_by_seed(self):
        a = make_indirect_stream("t", table_words=64, iterations=10, seed=3)
        b = make_indirect_stream("t", table_words=64, iterations=10, seed=3)
        assert a.program.initial_memory == b.program.initial_memory
        assert [str(i) for i in a.program.instructions] == [
            str(i) for i in b.program.instructions
        ]


class TestSuite:
    def test_suite_names_are_unique(self):
        names = [w.name for w in SPEC17_SUITE]
        assert len(names) == len(set(names))
        assert len(names) >= 10

    def test_lookup_by_name(self):
        assert workload_by_name("mcf_like").name == "mcf_like"
        with pytest.raises(KeyError):
            workload_by_name("nonexistent")

    def test_scaled_suite_is_smaller(self):
        full = {w.name: w for w in suite()}
        scaled = {w.name: w for w in suite(scale=0.25)}
        smaller = sum(
            1 for name in full
            if len(scaled[name].program.initial_memory)
            <= len(full[name].program.initial_memory)
        )
        assert smaller == len(full)

    @pytest.mark.parametrize("workload", SPEC17_SUITE, ids=lambda w: w.name)
    def test_every_suite_member_halts(self, workload):
        functional_run(workload)

    def test_descriptions_present(self):
        for workload in SPEC17_SUITE:
            assert workload.description
