"""Tests for the sensitivity-sweep utilities."""

import pytest

from repro.common.config import MachineConfig
from repro.eval.sweeps import (
    MachineVariant,
    dram_latency_variant,
    l2_size_variant,
    lq_variant,
    rob_variant,
    sweep,
)
from repro.workloads import make_indirect_stream

WORKLOAD = make_indirect_stream("sweep_unit", table_words=2048, iterations=80, seed=6)


class TestVariants:
    def test_rob_variant_mutates_only_rob(self):
        machine = rob_variant(64).build()
        assert machine.core.rob_entries == 64
        assert machine.core.lq_entries == MachineConfig().core.lq_entries

    def test_lq_variant(self):
        assert lq_variant(8).build().core.lq_entries == 8

    def test_dram_variant_scales_row_hit(self):
        machine = dram_latency_variant(200).build()
        assert machine.dram.latency == 200
        assert machine.dram.row_buffer_hit_latency < 200

    def test_l2_variant_preserves_geometry_knobs(self):
        machine = l2_size_variant(128).build()
        assert machine.l2.size == 128 * 1024
        assert machine.l2.assoc == MachineConfig().l2.assoc

    def test_custom_variant(self):
        variant = MachineVariant("id", lambda m: m)
        assert variant.build().core.rob_entries == 192


class TestSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return sweep(
            WORKLOAD,
            variants=[rob_variant(64), rob_variant(192)],
            config_names=("STT{ld}", "Hybrid"),
        )

    def test_shape(self, result):
        assert result.variants == ("ROB=64", "ROB=192")
        assert set(result.table["ROB=64"]) == {"STT{ld}", "Hybrid"}

    def test_each_variant_has_own_baseline(self, result):
        base_64 = result.raw["ROB=64"]["Unsafe"]
        base_192 = result.raw["ROB=192"]["Unsafe"]
        assert base_64.cycles != base_192.cycles or base_64.cycles > 0

    def test_normalized_at_least_one_ish(self, result):
        for variant_row in result.table.values():
            for value in variant_row.values():
                assert value > 0.9

    def test_render(self, result):
        text = result.render()
        assert "ROB=64" in text and "Hybrid" in text

    def test_bigger_rob_does_not_hurt_baseline(self, result):
        assert (
            result.raw["ROB=192"]["Unsafe"].cycles
            <= result.raw["ROB=64"]["Unsafe"].cycles * 1.05
        )
