"""Tests for the figure/table harnesses, using synthetic RunMetrics."""

import pytest

from repro.common.config import AttackModel
from repro.eval import (
    build_figure6,
    build_figure7,
    build_figure8,
    render_table,
    to_csv,
)
from repro.eval.report import geometric_mean
from repro.eval.tables import table1_rows, table2_rows, table3_rows
from repro.sim.api import RunMetrics


def metrics(workload, config, model=AttackModel.SPECTRE, cycles=1000,
            instructions=1000, **stats):
    return RunMetrics(
        workload=workload, config=config, attack_model=model,
        cycles=cycles, instructions=instructions, stats=stats,
    )


def synthetic_sweep():
    """Unsafe + two configs over two workloads, one attack model."""
    out = []
    for workload in ("w1", "w2"):
        out.append(metrics(workload, "Unsafe", cycles=1000))
        out.append(
            metrics(workload, "STT{ld}", cycles=1500,
                    **{"core.load_delay_cycles": 400})
        )
        out.append(
            metrics(
                workload, "Hybrid", cycles=1200,
                **{
                    "core.obl_fail_squashes": 4,
                    "core.sdo_squashed_uops": 80,
                    "core.imprecision_cycles": 50,
                    "core.validation_stall_cycles": 30,
                    "stt.sdo.predictions": 100,
                    "stt.sdo.precise": 80,
                    "stt.sdo.accurate": 95,
                },
            )
        )
    return out


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["x", 1.5], ["yyyy", 2.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.500" in text

    def test_to_csv_quotes_commas(self):
        csv = to_csv(["a"], [["x,y"]])
        assert '"x,y"' in csv

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([0.0])


class TestFigure6:
    def test_normalization_and_average(self):
        figure = build_figure6(synthetic_sweep())
        model = AttackModel.SPECTRE
        assert figure.data[model]["STT{ld}"]["w1"] == pytest.approx(1.5)
        assert figure.average(model, "Hybrid") == pytest.approx(1.2)
        assert figure.overhead(model, "STT{ld}") == pytest.approx(0.5)

    def test_improvement_metric(self):
        figure = build_figure6(synthetic_sweep())
        improvement = figure.improvement_over(
            AttackModel.SPECTRE, "Hybrid", "STT{ld}"
        )
        # (0.5 - 0.2) / 0.5 = 60%
        assert improvement == pytest.approx(0.6)

    def test_missing_baseline_raises(self):
        with pytest.raises(ValueError):
            build_figure6([metrics("w1", "Hybrid")])

    def test_render_contains_rows(self):
        figure = build_figure6(synthetic_sweep())
        text = figure.render(AttackModel.SPECTRE)
        assert "w1" in text and "average" in text


class TestFigure7:
    def test_components_partition_overhead(self):
        figure = build_figure7(synthetic_sweep(), configs=("Hybrid",))
        parts = figure.data[AttackModel.SPECTRE]["Hybrid"]
        assert sum(parts.values()) == pytest.approx(1.0)
        assert parts["imprecise prediction"] > 0
        assert parts["validation stall"] > 0

    def test_zero_overhead_attributes_nothing(self):
        sweep = [
            metrics("w", "Unsafe", cycles=1000),
            metrics("w", "Hybrid", cycles=900,
                    **{"core.imprecision_cycles": 50}),
        ]
        figure = build_figure7(sweep, configs=("Hybrid",))
        assert figure.overhead_cycles[AttackModel.SPECTRE]["Hybrid"] == 0


class TestFigure8:
    def test_points_and_correlation(self):
        figure = build_figure8(synthetic_sweep(), ("Hybrid",))
        point = figure.by_config(AttackModel.SPECTRE)["Hybrid"]
        assert point.squashes == pytest.approx(4.0)  # 4 per 1000 inst
        assert point.normalized_time == pytest.approx(1.2)

    def test_correlation_monotone_points(self):
        sweep = []
        for index, (squashes, cycles) in enumerate([(0, 1000), (5, 1300), (10, 1600)]):
            config = f"C{index}"
            sweep.append(metrics("w", "Unsafe"))
            sweep.append(
                metrics("w", config, cycles=cycles,
                        **{"core.obl_fail_squashes": squashes})
            )
        figure = build_figure8(sweep, ("C0", "C1", "C2"))
        assert figure.correlation(AttackModel.SPECTRE, exclude=()) > 0.99


class TestTables:
    def test_table1_row_names(self):
        names = [name for name, _ in table1_rows()]
        assert names[0] == "Pipeline"
        assert "DRAM" in names

    def test_table2_descriptions(self):
        rows = dict(table2_rows())
        assert "insecure" in rows["Unsafe"].lower()

    def test_table3_aggregation(self):
        rows = table3_rows(synthetic_sweep())
        assert rows == [["Hybrid", 80.0, 95.0, "-", "-"]]

    def test_table3_skips_prediction_free_runs(self):
        rows = table3_rows([metrics("w", "STT{ld}")])
        assert rows == []
