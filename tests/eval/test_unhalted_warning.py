"""Eval outputs must flag cells whose runs never halted — their numbers
describe a truncated execution."""

from repro.common.config import AttackModel
from repro.eval.figure6 import build_figure6
from repro.eval.report import warn_unhalted
from repro.sim.api import RunMetrics


def metrics(workload, config, termination="halted", cycles=1000):
    return RunMetrics(
        workload=workload,
        config=config,
        attack_model=AttackModel.SPECTRE,
        cycles=cycles,
        instructions=500,
        stats={},
        termination=termination,
    )


class TestWarnUnhalted:
    def test_silent_when_all_halted(self, capsys):
        assert warn_unhalted([metrics("w", "Unsafe")], "Figure X") == []
        assert capsys.readouterr().err == ""

    def test_reports_offending_cells(self, capsys):
        results = [
            metrics("good", "Unsafe"),
            metrics("capped", "Hybrid", termination="max_cycles"),
        ]
        offenders = warn_unhalted(results, "Figure X")
        assert [m.workload for m in offenders] == ["capped"]
        err = capsys.readouterr().err
        assert "Figure X" in err
        assert "capped/Hybrid" in err and "max_cycles" in err

    def test_truncates_long_offender_lists(self, capsys):
        results = [
            metrics(f"w{i}", "Hybrid", termination="max_instructions")
            for i in range(8)
        ]
        assert len(warn_unhalted(results, "Figure X")) == 8
        err = capsys.readouterr().err
        assert "… 3 more" in err

    def test_figure6_warns_but_still_builds(self, capsys):
        results = [
            metrics("w", "Unsafe", cycles=1000),
            metrics("w", "Hybrid", termination="max_cycles", cycles=1500),
        ]
        figure = build_figure6(results)
        assert figure.data[AttackModel.SPECTRE]["Hybrid"]["w"] == 1.5
        assert "unhalted" in capsys.readouterr().err
