"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; a broken example is a doc bug.
``reproduce_paper`` is exercised through its main() with a tiny scale via
monkeypatching (the full run is the benchmark harness's job).
"""

import runpy
import sys

import pytest


def run_example(name, monkeypatch, argv=()):
    monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_path(f"examples/{name}", run_name="__main__")


def test_quickstart(monkeypatch, capsys):
    run_example("quickstart.py", monkeypatch)
    out = capsys.readouterr().out
    assert "Unsafe" in out and "Hybrid" in out
    assert "normalized" in out


def test_spectre_v1_attack(monkeypatch, capsys):
    run_example("spectre_v1_attack.py", monkeypatch)
    out = capsys.readouterr().out
    assert "LEAKED" in out  # Unsafe leaks
    assert out.count("blocked") >= 14  # 7 protected configs x 2 models


def test_custom_predictor(monkeypatch, capsys):
    run_example("custom_predictor.py", monkeypatch)
    out = capsys.readouterr().out
    assert "TwoLevel" in out
    assert "Perfect" in out


def test_memory_consistency(monkeypatch, capsys):
    run_example("memory_consistency.py", monkeypatch)
    out = capsys.readouterr().out
    assert "validations issued" in out.lower() or "validations" in out


def test_anatomy_of_overhead(monkeypatch, capsys):
    run_example("anatomy_of_overhead.py", monkeypatch)
    out = capsys.readouterr().out
    assert "MLP" in out
    assert "Pipeline diagram" in out


@pytest.mark.slow
def test_reproduce_paper_quick(monkeypatch, capsys, tmp_path):
    """The full harness at a tiny scale: exercises argument parsing, the
    sweep loop, every figure builder, and CSV output."""
    import repro.workloads as workloads_module

    full_suite = workloads_module.suite

    def tiny_suite(scale=1.0):
        return full_suite(scale=0.08)[:4]

    import examples  # noqa: F401 (path check only)

    monkeypatch.setattr("repro.workloads.suite", tiny_suite)
    monkeypatch.setattr(
        sys, "argv", ["reproduce_paper.py", "--quick", "--out", str(tmp_path)]
    )
    # run_path re-imports; patch at the module the script imports from.
    import repro.workloads

    assert repro.workloads.suite is tiny_suite
    with pytest.raises(SystemExit) as excinfo:
        runpy.run_path("examples/reproduce_paper.py", run_name="__main__")
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert (tmp_path / "table3.csv").exists()
