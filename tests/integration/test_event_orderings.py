"""Integration: the three Obl-Ld event orderings of Section V-C2.

Events: A = Obl-Ld issues, B = wait buffer complete, C = load becomes safe,
D = validation completes.  The orderings A<B<C<D, A<C<B<D and A<C<D<B are
steered by controlling how fast the taint window closes relative to the
predicted-level lookup latency.
"""


from repro.common.config import AttackModel, MachineConfig, MemLevel
from repro.core import SdoProtection
from repro.core.predictors import StaticPredictor
from repro.isa import assemble
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.core import Core
from repro.pipeline.uop import OblState


def run_with_window(window_latency_level, predicted_level, table_resident_level):
    """One protected load whose taint window is controlled by a condition
    load at ``window_latency_level``; the Obl-Ld predicts
    ``predicted_level`` against data at ``table_resident_level``."""
    table_base = 1 << 20
    cond_addr = 1 << 24
    memory = {4096: 512, table_base + 512: 77, cond_addr: 0}
    source = f"""
        li r7, 1000000
        load r5, r0, {cond_addr}   ; condition load: sets the window length
        bge r5, r7, skip
        load r3, r0, 4096          ; access (clean addr): output tainted
        load r4, r3, {table_base}  ; tainted load -> Obl-Ld
        add r10, r10, r4
    skip:
        store r10, r0, 9000
        halt
    """
    program = assemble(source, memory)
    protection = SdoProtection(StaticPredictor(predicted_level), AttackModel.SPECTRE)
    hierarchy = MemoryHierarchy(MachineConfig())
    core = Core(program, protection=protection, hierarchy=hierarchy)
    # Place the condition line at the requested level.
    hierarchy.warm([cond_addr, 4096])
    if window_latency_level is MemLevel.DRAM:
        hierarchy.external_invalidate(cond_addr)
    elif window_latency_level is MemLevel.L3:
        hierarchy.l1.array.invalidate(hierarchy.line_of(cond_addr))
        hierarchy.l2.array.invalidate(hierarchy.line_of(cond_addr))
    elif window_latency_level is MemLevel.L2:
        hierarchy.l1.array.invalidate(hierarchy.line_of(cond_addr))
    # Place the table line.
    hierarchy.warm([table_base + 512])
    if table_resident_level >= MemLevel.L2:
        hierarchy.l1.array.invalidate(hierarchy.line_of(table_base + 512))
    if table_resident_level >= MemLevel.L3:
        hierarchy.l2.array.invalidate(hierarchy.line_of(table_base + 512))

    events = {}
    original_wait = core._obl_wait_buffer
    original_safe = core._on_became_safe

    def record_wait(uop):
        original_wait(uop)
        if uop.obl_state is OblState.DONE and "B" not in events:
            events["B"] = core.cycle

    def record_safe(uop):
        if uop.is_load and "C" not in events:
            events["C"] = core.cycle
        original_safe(uop)

    core._obl_wait_buffer = record_wait
    core._on_became_safe = record_safe
    core.run(max_cycles=100_000)
    assert core.halted
    return core, events


class TestCase1_BBeforeC:
    def test_long_window_completes_before_safe(self):
        """DRAM-latency window, L1 lookup: B long before C; the result is
        forwarded tainted and checked at C."""
        core, events = run_with_window(MemLevel.DRAM, MemLevel.L1, MemLevel.L1)
        assert "B" in events and "C" in events
        assert events["B"] < events["C"]
        assert core.stats["obl_issued"] == 1

    def test_case1_fail_squashes_at_safe(self):
        """B<C with a wrong prediction: poison forwarded, squash at C."""
        core, events = run_with_window(MemLevel.DRAM, MemLevel.L1, MemLevel.L3)
        assert core.stats["obl_fail_squashes"] == 1
        assert core.stats["obl_fail_forwards"] == 1
        assert core.committed.read_mem(9000) == 77  # correct after re-issue


class TestCase23_CBeforeB:
    def test_short_window_goes_safe_before_completion(self):
        """L1-latency window with an L3-deep lookup: C before B."""
        core, events = run_with_window(MemLevel.L2, MemLevel.L3, MemLevel.L3)
        assert "C" in events
        # B may be observed after C (or not at all if validation won).
        if "B" in events:
            assert events["C"] <= events["B"]
        assert core.committed.read_mem(9000) == 77

    def test_fail_with_safe_first_uses_validation_value(self):
        """C<B and the Obl-Ld fails: no squash — the validation supplies the
        value (Section V-C2 Case 2: 'drops the Obl-Ld result')."""
        core, events = run_with_window(MemLevel.L2, MemLevel.L2, MemLevel.L3)
        assert core.stats["obl_fail_squashes"] == 0
        assert core.committed.read_mem(9000) == 77


class TestEarlyForwarding:
    def test_early_forward_happens_when_safe_and_hit_known(self):
        """Safe load, deep prediction, shallow hit: forwarded before the
        deepest response (the Section V-C2 optimization)."""
        core, _ = run_with_window(MemLevel.L2, MemLevel.L3, MemLevel.L1)
        assert core.stats["obl_early_forwards"] >= 1
        assert core.committed.read_mem(9000) == 77
