"""Integration: the full suite commits the golden instruction stream under
representative protections (the Core's built-in check is live throughout)."""

import pytest

from repro.common.config import AttackModel
from repro.sim import CachePolicy, Session
from repro.workloads import suite

_SMALL_SUITE = [w for w in suite(scale=0.12)]
_SESSION = Session(cache=CachePolicy(enabled=False), check_golden=True)


@pytest.mark.parametrize("workload", _SMALL_SUITE, ids=lambda w: w.name)
@pytest.mark.parametrize("config_name", ["Unsafe", "STT{ld}", "Hybrid"])
def test_suite_commits_exactly(workload, config_name):
    metrics = _SESSION.run(workload, config_name, AttackModel.SPECTRE)
    assert metrics.instructions > 100


@pytest.mark.parametrize("config_name", ["STT{ld+fp}", "Static L1", "Perfect"])
def test_futuristic_model_commits_exactly(config_name):
    workload = _SMALL_SUITE[1]  # omnetpp_like: chasing + branches
    metrics = _SESSION.run(workload, config_name, AttackModel.FUTURISTIC)
    assert metrics.instructions > 100
