"""Integration: :meth:`StatGroup.freeze` as typo protection on a live run.

Runs a looping workload long enough to touch every counter its steady state
ever touches, freezes every stat group the core publishes, then resumes the
run to completion.  Any counter created after the freeze would raise
``KeyError`` — so finishing cleanly proves the instrumentation schema is
fully established during warm-up, and the flattened key set is stable from
there on.  This is the dynamic twin of the static ``stat-key`` lint checker.
"""

import random

from repro.common.config import AttackModel, MachineConfig, MemLevel
from repro.core import SdoProtection
from repro.core.predictors import StaticPredictor
from repro.isa import assemble
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.core import (
    TERMINATION_HALTED,
    TERMINATION_MAX_INSTRUCTIONS,
    Core,
)


def _build_core(iterations=60):
    rng = random.Random(7)
    table_bytes = 16 * 1024
    table_base = 1 << 20
    memory = {4096 + 64 * i: rng.randrange(table_bytes) & ~7 for i in range(iterations)}
    for i in range(0, table_bytes, 8):
        memory[table_base + i] = i
    source = f"""
        li r1, 0
        li r2, {iterations}
        li r6, 64
        li r7, 1000000
    loop:
        mul r8, r1, r6
        load r5, r8, 33554432    ; slow condition load (cold)
        bge r5, r7, skip
        load r3, r8, 4096        ; index load
        load r4, r3, {table_base} ; dependent table load -> Obl-Ld
        add r10, r10, r4
        store r10, r0, 9000      ; keep the store path warm every iteration
    skip:
        addi r1, r1, 1
        blt r1, r2, loop
        store r10, r0, 9000
        halt
    """
    program = assemble(source, memory)
    protection = SdoProtection(StaticPredictor(MemLevel.L2), AttackModel.SPECTRE)
    hierarchy = MemoryHierarchy(MachineConfig())
    core = Core(program, protection=protection, hierarchy=hierarchy, check_golden=True)
    hierarchy.warm([table_base + i for i in range(0, table_bytes, 64)])
    hierarchy.warm([4096 + 64 * i for i in range(iterations)])
    return core


def test_no_counter_created_after_warm_up():
    core = _build_core()
    # ~25 loop iterations: every steady-state counter has been touched.
    warm = core.run(max_instructions=200)
    assert warm.termination == TERMINATION_MAX_INSTRUCTIONS

    core.stats.freeze()
    core.hierarchy.stats.freeze()
    core.protection.decision_stats.freeze()

    # Resuming past the freeze must not mint a single new counter; a typo'd
    # or late-created key would raise KeyError out of this call.
    final = core.run()
    assert final.termination == TERMINATION_HALTED
    assert set(final.stats) == set(warm.stats)


def test_freeze_still_catches_a_genuinely_new_counter():
    core = _build_core()
    core.run(max_instructions=200)
    core.stats.freeze()
    try:
        core.stats.bump("not_a_real_counter")
    except KeyError as exc:
        assert "not_a_real_counter" in str(exc)
    else:
        raise AssertionError("frozen StatGroup accepted an unknown counter")
