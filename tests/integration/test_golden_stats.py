"""Golden-stats regression check (also run as a CI gate).

Pins the complete ``RunMetrics.to_dict()`` of a fixed tiny workload —
including the observability counters (``core.stall.*``, ``core.occ.*``,
``protection.decisions.*``) — against a committed fixture.  Simulation is
deterministic, so exact equality is expected; a diff means the timing model
or the stats schema changed.  If the change is intentional, refresh with
``python scripts/refresh_golden_stats.py`` and commit the fixture.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
FIXTURE = REPO_ROOT / "tests" / "golden" / "golden_stats.json"


def _load_refresh_module():
    spec = importlib.util.spec_from_file_location(
        "refresh_golden_stats", REPO_ROOT / "scripts" / "refresh_golden_stats.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def refresh():
    module = _load_refresh_module()
    yield module
    sys.modules.pop("refresh_golden_stats", None)


@pytest.fixture(scope="module")
def fixture_cells():
    assert FIXTURE.exists(), (
        "missing golden fixture; run `python scripts/refresh_golden_stats.py`"
    )
    return json.loads(FIXTURE.read_text())["cells"]


def test_fixture_covers_expected_cells(refresh, fixture_cells):
    expected = {f"{config}/{model}" for config, model in refresh.GOLDEN_CELLS}
    expected.add(refresh.STRESS_CELL_KEY)
    assert set(fixture_cells) == expected


def test_fixture_pins_observability_counters(fixture_cells):
    stats = fixture_cells["Hybrid/spectre"]["stats"]
    assert any(key.startswith("core.stall.") for key in stats)
    assert any(key.startswith("core.occ.") for key in stats)
    assert any(key.startswith("protection.decisions.") for key in stats)


def test_stress_cell_pins_pressure_counters(refresh, fixture_cells):
    """The starved-machine cell observes the occupancy/pressure counters
    that the tiny golden workload never exercises."""
    stats = fixture_cells[refresh.STRESS_CELL_KEY]["stats"]
    for key in (
        "mem.evictions",
        "core.fetch_buffer_full_cycles",
        "core.fetch_off_end_cycles",
        "core.lq_full_stalls",
        "mem.mshr_merges",
        "mem.mshr_stalls",
        "core.no_preg_stalls",
        "mem.obl_fail",
        "core.sq_full_stalls",
        "mem.validations",
    ):
        assert stats.get(key, 0) > 0, f"stress cell failed to observe {key}"


def test_current_stats_match_golden_fixture(refresh, fixture_cells):
    current = refresh.collect()["cells"]
    for cell, expected in fixture_cells.items():
        actual = current[cell]
        assert actual == expected, (
            f"golden-stats drift in {cell}. If the timing model or stats "
            "schema changed intentionally, refresh the fixture with "
            "`python scripts/refresh_golden_stats.py` and commit it."
        )
