"""Integration: memory-consistency machinery under external invalidations.

Section V-C1: Obl-Lds may read lines the L1 never holds, so invalidations
are caught by validation; a value mismatch squashes and re-forwards.  These
tests inject invalidations (and, for the mismatch case, remote writes) while
the victim runs.
"""

import random


from repro.common.config import AttackModel, MachineConfig, MemLevel
from repro.core import SdoProtection
from repro.core.predictors import StaticPredictor
from repro.isa import assemble
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.core import Core


def build_machine(table_bytes=64 * 1024, iterations=80):
    rng = random.Random(5)
    table_base = 1 << 20
    memory = {4096 + 64 * i: (rng.randrange(table_bytes)) & ~7 for i in range(iterations)}
    for i in range(0, table_bytes, 8):
        memory[table_base + i] = i
    source = f"""
        li r1, 0
        li r2, {iterations}
        li r6, 64
        li r7, 1000000
    loop:
        mul r8, r1, r6
        load r5, r8, 33554432    ; slow condition load (cold)
        bge r5, r7, skip
        load r3, r8, 4096        ; index (clean address, tainted output)
        load r4, r3, {table_base} ; tainted table load -> Obl-Ld
        add r10, r10, r4
    skip:
        addi r1, r1, 1
        blt r1, r2, loop
        store r10, r0, 9000
        halt
    """
    program = assemble(source, memory)
    protection = SdoProtection(StaticPredictor(MemLevel.L2), AttackModel.SPECTRE)
    hierarchy = MemoryHierarchy(MachineConfig())
    core = Core(program, protection=protection, hierarchy=hierarchy, check_golden=True)
    hierarchy.warm([table_base + i for i in range(0, table_bytes, 64)])
    hierarchy.warm([4096 + 64 * i for i in range(iterations)])
    return core, table_base, table_bytes


class TestInvalidationWithoutDataChange:
    def test_runs_exactly_with_invalidation_storm(self):
        """Pure invalidations (no remote writes) never break correctness;
        validations simply re-confirm the values."""
        core, table_base, table_bytes = build_machine()
        rng = random.Random(11)
        while not core.halted and core.cycle < 300_000:
            core.step()
            if core.cycle % 25 == 0:
                addr = table_base + (rng.randrange(table_bytes) & ~7)
                core.notify_invalidation(addr)
        assert core.halted  # golden check was live the whole time
        assert core.stats["consistency_marks"] >= 0


class TestValueMismatchSquash:
    def test_remote_write_triggers_mismatch_squash(self):
        """A remote writer changes a value an in-flight Obl-Ld already
        forwarded: the validation detects the mismatch and squashes.

        The golden check is disabled: a remote write is not part of the
        single-core golden program order.  Instead we assert the machinery
        fired and the final accumulated value used *some* consistent value.
        """
        core, table_base, table_bytes = build_machine()
        core._golden = None
        rng = random.Random(13)
        fired = 0
        while not core.halted and core.cycle < 400_000:
            core.step()
            if core.cycle % 15 == 7:
                # Remote store: change the value AND invalidate the line.
                addr = table_base + (rng.randrange(table_bytes) & ~7)
                core.committed.write_mem(addr, rng.randrange(1 << 20))
                core.notify_invalidation(addr)
                fired += 1
        assert core.halted
        assert fired > 0
        # The mechanism is best-effort observable: with enough remote writes
        # hitting in-flight loads, validations must have been issued.
        assert core.stats["validations_issued"] + core.stats["exposures_issued"] > 0
