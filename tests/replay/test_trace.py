"""Trace format durability: round-trips, torn files, and key addressing.

The on-disk trace is the golden reference of every replayed run, so the
format must fail *loudly* (``TraceFormatError``) on anything it cannot
vouch for — truncation, torn writes, bit rot — and the store must turn
those failures into cache misses (fall back to live execution), never into
a wrong trace.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import AttackModel, MachineConfig
from repro.isa.instructions import Opcode
from repro.isa.iss import CommittedOp
from repro.replay.trace import (
    TRACE_SCHEMA_VERSION,
    ArchTrace,
    TraceCursor,
    TraceExhausted,
    TraceFormatError,
    trace_key,
)
from repro.replay.store import TraceStore
from repro.sim.api import RunRequest
from repro.sim.configs import config_by_name
from repro.workloads import make_mixed_kernel

OPCODES = list(Opcode)

_u32 = st.integers(min_value=0, max_value=2**32 - 1)
_i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
_result = st.one_of(
    st.none(),
    _i64,
    st.floats(allow_nan=False, allow_infinity=True, width=64),
)


@st.composite
def committed_ops(draw):
    index = draw(st.integers(min_value=0))
    return CommittedOp(
        seq=index,
        pc=draw(_u32),
        opcode=draw(st.sampled_from(OPCODES)),
        next_pc=draw(_u32),
        taken=draw(st.booleans()),
        mem_addr=draw(st.one_of(st.none(), _i64)),
        result=draw(_result),
    )


def _reseq(records):
    """Record streams are sequential; renumber whatever hypothesis drew."""
    return [dataclasses.replace(op, seq=i) for i, op in enumerate(records)]


@settings(max_examples=50, deadline=None)
@given(st.lists(committed_ops(), max_size=40), st.booleans())
def test_to_bytes_from_bytes_round_trip(records, halted):
    trace = ArchTrace.from_records(_reseq(records), halted=halted)
    clone = ArchTrace.from_bytes(trace.to_bytes())
    assert clone == trace
    assert clone.halted == halted
    assert len(clone) == len(records)


@settings(max_examples=50, deadline=None)
@given(st.lists(committed_ops(), max_size=40))
def test_records_round_trip(records):
    records = _reseq(records)
    trace = ArchTrace.from_records(records, halted=True)
    assert ArchTrace.from_bytes(trace.to_bytes()).records() == records


def _sample_trace(n=16):
    records = [
        CommittedOp(
            seq=i,
            pc=4 * i,
            opcode=Opcode.ADDI,
            next_pc=4 * i + 4,
            taken=bool(i % 2),
            mem_addr=i * 8 if i % 3 == 0 else None,
            result=i * 7,
        )
        for i in range(n)
    ]
    return ArchTrace.from_records(records, halted=True)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_any_truncation_is_detected(data):
    blob = _sample_trace().to_bytes()
    cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    with pytest.raises(TraceFormatError):
        ArchTrace.from_bytes(blob[:cut])


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_any_single_byte_flip_is_detected(data):
    """Bit rot anywhere in the file — header, opcode table, payload — must
    either raise or (header-length games) still never decode silently wrong;
    the CRC plus the length headers make every flip loud."""
    blob = bytearray(_sample_trace().to_bytes())
    pos = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    flip = data.draw(st.integers(min_value=1, max_value=255))
    blob[pos] ^= flip
    with pytest.raises(TraceFormatError):
        ArchTrace.from_bytes(bytes(blob))


def test_bad_magic_rejected():
    blob = b"NOPE" + _sample_trace().to_bytes()[4:]
    with pytest.raises(TraceFormatError, match="magic"):
        ArchTrace.from_bytes(blob)


def test_newer_schema_rejected():
    import struct

    blob = bytearray(_sample_trace().to_bytes())
    struct.pack_into("<H", blob, 4, TRACE_SCHEMA_VERSION + 1)
    with pytest.raises(TraceFormatError, match="newer"):
        ArchTrace.from_bytes(bytes(blob))


def test_cursor_steps_then_exhausts():
    trace = _sample_trace(4)
    cursor = TraceCursor(trace)
    for i in range(4):
        record = cursor.step()
        assert record.seq == i
        assert record.pc == trace.pcs[i]
    assert cursor.position == 4
    with pytest.raises(TraceExhausted):
        cursor.step()


def test_unknown_opcode_name_decodes_to_none():
    """A trace recorded by a build with an opcode this build lacks can never
    silently match: the cursor yields ``None`` where the name is unknown."""
    trace = _sample_trace(2)
    blob = trace.to_bytes()
    renamed = ArchTrace(
        opcode_names=tuple(
            "FUTURE_OP" if name == "ADDI" else name
            for name in trace.opcode_names
        ),
        opcodes=trace.opcodes,
        recflags=trace.recflags,
        pcs=trace.pcs,
        next_pcs=trace.next_pcs,
        mem_addrs=trace.mem_addrs,
        results=trace.results,
        halted=trace.halted,
    )
    assert TraceCursor(renamed).step().opcode is None
    assert TraceCursor(ArchTrace.from_bytes(blob)).step().opcode is Opcode.ADDI


# --------------------------------------------------------------------- store


def test_store_round_trip(tmp_path):
    store = TraceStore(tmp_path)
    trace = _sample_trace()
    key = "ab" + "0" * 62
    store.put(key, trace)
    assert store.has(key)
    assert len(store) == 1
    assert store.get(key) == trace
    assert f"v{TRACE_SCHEMA_VERSION}" in str(store.path_for(key))


def test_store_miss_is_none(tmp_path):
    assert TraceStore(tmp_path).get("cd" + "0" * 62) is None


def test_store_torn_file_is_a_miss(tmp_path):
    store = TraceStore(tmp_path)
    key = "ef" + "0" * 62
    store.put(key, _sample_trace())
    path = store.path_for(key)
    path.write_bytes(path.read_bytes()[:-5])  # torn write
    assert store.get(key) is None


def test_store_corrupt_file_is_a_miss(tmp_path):
    store = TraceStore(tmp_path)
    key = "0f" + "0" * 62
    store.put(key, _sample_trace())
    path = store.path_for(key)
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))
    assert store.get(key) is None


def test_corrupt_store_falls_back_to_live(tmp_path):
    """The durability contract end to end: a store whose file for this
    request is garbage must yield metrics identical to a live run."""
    from repro.replay.replayer import TraceReplayer, replay_or_execute
    from repro.sim.api import execute

    workload = make_mixed_kernel("tr_fb", table_words=512, iterations=10, seed=5)
    request = RunRequest(
        workload=workload,
        config=config_by_name("Unsafe"),
        attack_model=AttackModel.SPECTRE,
    )
    store = TraceStore(tmp_path)
    TraceReplayer(store).ensure(request)
    path = store.path_for(trace_key(request))
    path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
    assert replay_or_execute(request, store).to_dict() == execute(request).to_dict()


# ----------------------------------------------------------------- addressing


def _request(workload, config="Unsafe", model=AttackModel.SPECTRE, **kw):
    return RunRequest(
        workload=workload,
        config=config_by_name(config),
        attack_model=model,
        **kw,
    )


def test_trace_key_ignores_timing_configuration():
    """The record-once/replay-many contract: scheme, attack model, and
    machine parameters must not change the key."""
    workload = make_mixed_kernel("tr_key", table_words=512, iterations=10, seed=6)
    base = trace_key(_request(workload))
    assert trace_key(_request(workload, config="Hybrid")) == base
    assert trace_key(_request(workload, model=AttackModel.FUTURISTIC)) == base
    smaller = MachineConfig(mesh_hop_latency=3)
    assert trace_key(_request(workload, machine=smaller)) == base


def test_trace_key_tracks_architectural_inputs():
    workload = make_mixed_kernel("tr_key2", table_words=512, iterations=10, seed=6)
    other = make_mixed_kernel("tr_key3", table_words=512, iterations=10, seed=7)
    base = trace_key(_request(workload))
    assert trace_key(_request(other)) != base
    assert trace_key(_request(workload, max_instructions=1000)) != base
