"""Replay wired through the sweep engine, Session policy, CLI, and worker.

The backend is opt-in (`ExecutionPolicy(replay=True)` / `repro sweep
--replay`) and must be *invisible* in results: every test here runs the
same cells live and replayed and demands identical outcomes through each
integration layer — serial engine, worker pool, Session, and the
command line.
"""

import pytest

from repro.common.config import AttackModel
from repro.replay.store import TraceStore
from repro.replay.trace import trace_key
from repro.sim.api import RunRequest, Session
from repro.sim.configs import config_by_name
from repro.sim.engine import SweepEngine
from repro.sim.policies import CachePolicy, ExecutionPolicy
from repro.workloads import make_mixed_kernel, make_pointer_chase

WORKLOADS = [
    make_mixed_kernel("er_mixed", table_words=1024, iterations=20, seed=21),
    make_pointer_chase("er_chase", nodes=512, iterations=30, seed=22,
                       warm_table=False),
]
CONFIGS = [config_by_name(name) for name in ("Unsafe", "Hybrid")]


def _requests():
    return [
        RunRequest(workload=w, config=c, attack_model=AttackModel.SPECTRE)
        for w in WORKLOADS
        for c in CONFIGS
    ]


def _dicts(outcomes):
    return [outcome.to_dict() for outcome in outcomes]


@pytest.fixture(scope="module")
def live_outcomes():
    return _dicts(SweepEngine(jobs=1).run(_requests()))


def test_serial_engine_replay_is_identical(tmp_path, live_outcomes):
    store = TraceStore(tmp_path / "traces")
    outcomes = SweepEngine(jobs=1, trace_store=store).run(_requests())
    assert _dicts(outcomes) == live_outcomes
    # One trace per workload, not per cell.
    assert len(store) == len(WORKLOADS)


def test_pool_engine_replay_is_identical(tmp_path, live_outcomes):
    store = TraceStore(tmp_path / "traces")
    outcomes = SweepEngine(jobs=2, trace_store=store).run(_requests())
    assert _dicts(outcomes) == live_outcomes


def test_truncated_trace_falls_back_to_live(tmp_path, live_outcomes, capsys):
    """Torn trace files on disk must cost only speed, never correctness."""
    store = TraceStore(tmp_path / "traces")
    engine = SweepEngine(jobs=1, trace_store=store)
    engine._prepare_traces(_requests(), range(len(_requests())))
    for path in (tmp_path / "traces").rglob("*.trace"):
        path.write_bytes(path.read_bytes()[:40])
    assert _dicts(engine.run(_requests())) == live_outcomes


def test_recording_failure_is_not_fatal(tmp_path, live_outcomes, capsys):
    """`_prepare_traces` is an accelerator: if recording itself blows up,
    the sweep must still complete live."""
    store = TraceStore(tmp_path / "traces")
    engine = SweepEngine(jobs=1, trace_store=store)
    engine.trace_store.put = lambda *a, **k: (_ for _ in ()).throw(OSError("disk"))
    assert _dicts(engine.run(_requests())) == live_outcomes
    assert "cell will run live" in capsys.readouterr().err


def test_session_replay_policy(tmp_path, live_outcomes):
    session = Session(
        execution=ExecutionPolicy(replay=True),
        cache=CachePolicy(enabled=False, cache_dir=str(tmp_path)),
    )
    assert session.trace_store is not None
    assert session.trace_store.root == tmp_path / "traces"
    outcomes = session.run_many(_requests())
    assert _dicts(outcomes) == live_outcomes
    assert len(session.trace_store) == len(WORKLOADS)


def test_session_without_replay_has_no_store():
    session = Session(cache=CachePolicy(enabled=False))
    assert session.trace_store is None
    assert session.engine.trace_store is None


def test_session_replay_store_sits_beside_cache(tmp_path):
    session = Session(
        execution=ExecutionPolicy(replay=True),
        cache=CachePolicy(cache_dir=str(tmp_path / "cache")),
    )
    assert session.trace_store.root == tmp_path / "cache" / "traces"


def test_policy_round_trips_replay_flag():
    policy = ExecutionPolicy(replay=True)
    assert ExecutionPolicy.from_dict(policy.to_dict()).replay is True
    assert ExecutionPolicy.from_dict({"jobs": 1}).replay is False


def test_cli_sweep_replay_flag(capsys, tmp_path):
    from repro.__main__ import main

    cache_dir = tmp_path / "cache"
    args = [
        "sweep",
        "--workloads", "exchange2_like",
        "--configs", "STT{ld}",
        "--models", "spectre",
        "--scale", "0.05",
        "--cache-dir", str(cache_dir),
        "--replay",
    ]
    assert main(args) == 0
    assert "Figure 6" in capsys.readouterr().out
    assert list((cache_dir / "traces").rglob("*.trace")), (
        "--replay should leave recorded traces beside the result cache"
    )


def test_worker_builds_trace_store_beside_cache(tmp_path):
    from repro.fabric.worker import WorkerAgent

    agent = WorkerAgent("http://127.0.0.1:1", cache_dir=tmp_path)
    assert agent.trace_store is not None
    assert agent.trace_store.root == tmp_path / "traces"
    assert agent.stats["trace_replays"] == 0
    cacheless = WorkerAgent("http://127.0.0.1:1")
    assert cacheless.trace_store is None


def test_worker_executes_through_replay_backend(tmp_path, live_outcomes):
    """A worker with a populated trace store resolves a cell through the
    replayed-trace rung: identical metrics, `trace_replays` incremented."""
    import threading

    from repro.fabric.worker import WorkerAgent
    from repro.replay.recorder import record_trace
    from repro.sim.cache import cache_key

    agent = WorkerAgent("http://127.0.0.1:1", cache_dir=tmp_path)
    request = _requests()[0]
    agent.trace_store.put(trace_key(request), record_trace(request))
    key = cache_key(request)
    cell = {"key": key, "request": request.to_dict(), "lease_seconds": 60.0}
    agent._ledger = lambda *_: None
    agent._start_heartbeat = lambda *_: threading.Event()
    outcome, wall = agent._execute(key, cell)
    assert outcome.to_dict() == live_outcomes[0]
    assert agent.stats["trace_replays"] == 1
