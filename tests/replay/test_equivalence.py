"""Replay equivalence: replayed metrics are bit-identical to live ones.

The tentpole claim of the trace-capture/replay backend, mirrored after the
fast-forward equivalence suite: across protection schemes, attack models,
and workload shapes, feeding a recorded architectural trace through the
timing pipeline produces the *same complete* ``RunMetrics`` — cycles,
instructions, and every stats key — as re-running the functional ISS at
every commit.  The ``replay-equivalence`` CI job runs this grid (28 cells)
plus the negative controls proving the gate can actually fire.
"""

import dataclasses

import pytest

from repro.common.config import AttackModel
from repro.pipeline.core import GoldenModelMismatch
from repro.replay.recorder import TraceRecorder, record_trace
from repro.replay.replayer import replay_execute
from repro.replay.trace import ArchTrace, TraceCursor, trace_key
from repro.sim.api import DEFAULT_MAX_INSTRUCTIONS, RunRequest, execute
from repro.sim.configs import config_by_name
from repro.workloads import make_mixed_kernel, make_pointer_chase

#: Two shapes, exercised deliberately small so the full live+replay grid
#: stays cheap: a mixed kernel (branches + FP + loads) and a cold pointer
#: chase (serial DRAM misses, the replay-throughput sweet spot).
WORKLOADS = {
    "mixed": make_mixed_kernel(
        "rp_mixed", table_words=1024, iterations=24, seed=11
    ),
    "pointer_chase": make_pointer_chase(
        "rp_chase", nodes=512, iterations=40, seed=12, warm_table=False
    ),
}
CONFIG_NAMES = (
    "Unsafe", "STT{ld}", "STT{ld+fp}", "Hybrid", "Perfect",
    "SpecBox", "DelayOnMiss",
)
MODELS = (AttackModel.SPECTRE, AttackModel.FUTURISTIC)

#: One recording per workload, shared by all 14 of its grid cells.
_TRACES = {
    name: TraceRecorder().record_program(
        workload.program, DEFAULT_MAX_INSTRUCTIONS
    )
    for name, workload in WORKLOADS.items()
}


def _request(workload_name, config_name, model):
    return RunRequest(
        workload=WORKLOADS[workload_name],
        config=config_by_name(config_name),
        attack_model=model,
    )


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("config_name", CONFIG_NAMES)
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_replay_is_bit_identical(workload_name, config_name, model):
    """The 2 workloads x 7 configs x 2 models = 28-cell equivalence grid."""
    request = _request(workload_name, config_name, model)
    live = execute(request)
    replayed = replay_execute(request, _TRACES[workload_name])
    assert replayed.cycles == live.cycles
    assert replayed.instructions == live.instructions
    assert replayed.to_dict() == live.to_dict()


def test_cells_of_one_workload_share_one_trace():
    """The throughput win rests on this: every scheme x model cell of a
    workload resolves to the same content address."""
    keys = {
        trace_key(_request("mixed", config_name, model))
        for config_name in CONFIG_NAMES
        for model in MODELS
    }
    assert len(keys) == 1


def test_replay_actually_verifies_every_commit():
    """Guard against the cursor silently not being consulted (which would
    keep the grid green while voiding the verification)."""
    request = _request("mixed", "Hybrid", AttackModel.SPECTRE)
    cursor = TraceCursor(_TRACES["mixed"])
    metrics = execute(request, golden=cursor)
    assert cursor.position == metrics.instructions > 0


def test_perturbed_trace_is_caught():
    """Negative control: corrupt one committed result in a checksum-valid
    trace and the replayed run must die with GoldenModelMismatch — the same
    alarm a live golden check raises on a real divergence."""
    request = _request("mixed", "Unsafe", AttackModel.SPECTRE)
    records = record_trace(request).records()
    victim = next(
        i for i, op in enumerate(records)
        if isinstance(op.result, int) and op.result is not None
    )
    records[victim] = dataclasses.replace(
        records[victim], result=records[victim].result ^ 1
    )
    poisoned = ArchTrace.from_records(records, halted=True)
    with pytest.raises(GoldenModelMismatch):
        replay_execute(request, poisoned)


def test_perturbed_pc_is_caught():
    request = _request("pointer_chase", "STT{ld}", AttackModel.SPECTRE)
    records = record_trace(request).records()
    middle = len(records) // 2
    records[middle] = dataclasses.replace(
        records[middle], pc=records[middle].pc + 4
    )
    poisoned = ArchTrace.from_records(records, halted=True)
    with pytest.raises(GoldenModelMismatch):
        replay_execute(request, poisoned)
