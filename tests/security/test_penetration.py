"""The paper's penetration test (Section VIII-A): 'all SDO design variants
block the Spectre V1 attack, to which the Unsafe baseline is vulnerable.'"""

import pytest

from repro.common.config import AttackModel
from repro.security.channels import CacheTimingReceiver
from repro.security.spectre_v1 import build_spectre_v1, run_spectre_v1
from repro.memory.hierarchy import MemoryHierarchy
from repro.common.config import MachineConfig

PROTECTED = [
    "STT{ld}", "STT{ld+fp}",
    "Static L1", "Static L2", "Static L3", "Hybrid", "Perfect",
    "SpecBox", "DelayOnMiss", "Fence",
]
MODELS = [AttackModel.SPECTRE, AttackModel.FUTURISTIC]


class TestSpectreV1:
    def test_unsafe_leaks_the_secret(self):
        result = run_spectre_v1("Unsafe", secret=5)
        assert result.leaked
        assert result.recovered == 5

    @pytest.mark.parametrize("secret", [1, 7, 13])
    def test_unsafe_leaks_arbitrary_secrets(self, secret):
        result = run_spectre_v1("Unsafe", secret=secret)
        assert result.recovered == secret

    @pytest.mark.parametrize("config", PROTECTED)
    @pytest.mark.parametrize("model", MODELS)
    def test_protected_configs_block(self, config, model):
        result = run_spectre_v1(config, model, secret=5)
        assert not result.leaked
        assert result.recovered is None

    def test_secret_validation(self):
        with pytest.raises(ValueError):
            build_spectre_v1(secret=0)
        with pytest.raises(ValueError):
            build_spectre_v1(secret=99)

    def test_victim_program_is_well_formed(self):
        program, probe_base = build_spectre_v1(secret=3)
        assert probe_base > 0
        assert len(program) > 10


class TestReceiver:
    def test_flush_reload_distinguishes_touched_lines(self):
        hierarchy = MemoryHierarchy(MachineConfig())
        receiver = CacheTimingReceiver(hierarchy)
        addrs = [0x100000 + 512 * i for i in range(8)]
        receiver.flush(addrs)
        hierarchy.load(addrs[3], 0)  # the "victim" touches slot 3
        assert receiver.recover_index(0x100000, 512, 8, now=1000) == 3

    def test_no_touch_recovers_nothing(self):
        hierarchy = MemoryHierarchy(MachineConfig())
        receiver = CacheTimingReceiver(hierarchy)
        addrs = [0x100000 + 512 * i for i in range(8)]
        receiver.flush(addrs)
        assert receiver.recover_index(0x100000, 512, 8, now=1000) is None

    def test_ambiguous_hits_recover_nothing(self):
        hierarchy = MemoryHierarchy(MachineConfig())
        receiver = CacheTimingReceiver(hierarchy)
        addrs = [0x100000 + 512 * i for i in range(8)]
        receiver.flush(addrs)
        hierarchy.load(addrs[1], 0)
        hierarchy.load(addrs[6], 100)
        assert receiver.recover_index(0x100000, 512, 8, now=1000) is None

    def test_probe_latencies_reflect_residence(self):
        hierarchy = MemoryHierarchy(MachineConfig())
        receiver = CacheTimingReceiver(hierarchy)
        hierarchy.warm([0x100000])
        results = receiver.reload([0x100000, 0x900000], now=0)
        assert results[0].hit
        assert not results[1].hit
        assert results[0].latency < results[1].latency

    def test_threshold_sits_strictly_between_l2_and_l3_round_trips(self):
        # Regression: the threshold used to equal the L3 round trip exactly,
        # so a marginally fast L3-class latency was misread as a hit.
        config = MachineConfig()
        receiver = CacheTimingReceiver(MemoryHierarchy(config))
        l2_round_trip = config.l1d.latency + config.l2.latency
        l3_round_trip = l2_round_trip + config.l3.latency
        assert l2_round_trip < receiver.threshold < l3_round_trip

    def test_boundary_latencies_classify_as_documented(self):
        # An L2-round-trip latency is a hit; an L3 round trip is a miss —
        # and so is anything even one cycle short of the L3 round trip.
        config = MachineConfig()
        receiver = CacheTimingReceiver(MemoryHierarchy(config))
        l2_round_trip = config.l1d.latency + config.l2.latency
        l3_round_trip = l2_round_trip + config.l3.latency
        assert l2_round_trip < receiver.threshold
        assert not l3_round_trip < receiver.threshold
        assert not (l3_round_trip - 1) < receiver.threshold

    @pytest.mark.parametrize("stride", [0, 1, 8, 63])
    def test_sub_line_stride_is_rejected(self, stride):
        # Regression: stride 0 used to raise a bare ZeroDivisionError, and
        # sub-line strides silently aliased slots onto one cache line.
        receiver = CacheTimingReceiver(MemoryHierarchy(MachineConfig()))
        with pytest.raises(ValueError, match="cache line"):
            receiver.recover_index(0x100000, stride, 8)

    def test_line_sized_stride_is_accepted(self):
        hierarchy = MemoryHierarchy(MachineConfig())
        receiver = CacheTimingReceiver(hierarchy)
        line = hierarchy.config.line_size
        addrs = [0x100000 + line * i for i in range(8)]
        receiver.flush(addrs)
        hierarchy.load(addrs[2], 0)
        assert receiver.recover_index(0x100000, line, 8, now=1000) == 2
