"""Definition 2 checks: DO variants create address-independent resource
traces; the normal path (by design) does not."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import MemLevel
from repro.security.analyzer import check_non_interference, resource_trace_of

_WARM = tuple(0x40000 + 64 * i for i in range(256)) + tuple(
    0x80000 + 64 * i for i in range(256)
)


def _warm(hierarchy):
    hierarchy.warm(_WARM)


def _obl_action(level):
    def make(addr):
        def action(hierarchy):
            hierarchy.oblivious_load(addr, level, now=10)
        return action
    return make


class TestObliviousNonInterference:
    @pytest.mark.parametrize("level", [MemLevel.L1, MemLevel.L2, MemLevel.L3])
    def test_do_variants_are_address_oblivious(self, level):
        """Identical resource traces for cached, uncached, near and far
        addresses — Definition 2."""
        operands = [0x40000, 0x40040, 0x80000, 0x123400, 0x7777000]
        ok, traces = check_non_interference(
            _obl_action(level), operands, prepare=_warm
        )
        assert ok, f"trace divergence at level {level}: {traces}"

    @given(st.integers(0, 1 << 24), st.integers(0, 1 << 24))
    @settings(max_examples=30, deadline=None)
    def test_property_random_address_pairs(self, addr_a, addr_b):
        ok, traces = check_non_interference(
            _obl_action(MemLevel.L2), [addr_a, addr_b], prepare=_warm
        )
        assert ok

    def test_hit_and_miss_indistinguishable(self):
        """The classic leak an Obl-Ld closes: present vs absent data."""
        cached, uncached = 0x40000, 0x9990000
        ok, _ = check_non_interference(
            _obl_action(MemLevel.L3), [cached, uncached], prepare=_warm
        )
        assert ok

    def test_tlb_hit_and_miss_indistinguishable(self):
        """The DO TLB probe must not emit address-dependent events either."""
        in_tlb = 0x40000        # warmed -> TLB entry present
        out_of_tlb = 0x40000000  # never touched
        ok, _ = check_non_interference(
            _obl_action(MemLevel.L1), [in_tlb, out_of_tlb], prepare=_warm
        )
        assert ok


class TestNormalPathLeaks:
    def test_normal_loads_are_distinguishable(self):
        """Sanity: the checker is not vacuous — the normal path's traces DO
        depend on the address (bank indices, hit levels, fills)."""

        def make(addr):
            def action(hierarchy):
                hierarchy.load(addr, now=10)
            return action

        ok, traces = check_non_interference(make, [0x40000, 0x9990000], prepare=_warm)
        assert not ok
        assert traces[0] != traces[1]

    def test_same_address_normal_loads_match(self):
        def make(addr):
            def action(hierarchy):
                hierarchy.load(addr, now=10)
            return action

        ok, _ = check_non_interference(make, [0x40000, 0x40000], prepare=_warm)
        assert ok


class TestOperandValidation:
    @pytest.mark.parametrize("operands", [[], [0x40000]])
    def test_too_few_operands_is_a_clear_error(self, operands):
        # Regression: an empty operand list used to escape as a bare
        # IndexError from ``traces[0]``; one operand passed vacuously.
        with pytest.raises(ValueError, match="at least 2 operands"):
            check_non_interference(_obl_action(MemLevel.L1), operands)


class TestTraceMachinery:
    def test_prepare_events_are_excluded(self):
        def action(hierarchy):
            hierarchy.load(0x40, now=0)

        trace = resource_trace_of(action, prepare=lambda h: h.warm([0x40000]))
        assert trace  # only the observed action's events
        structures = {entry[1] for entry in trace}
        assert "L1D.bank" in structures


class TestDivergenceReporting:
    """The checker pins *where* two traces first split, not just whether."""

    def test_first_divergence_index(self):
        from repro.security.analyzer import first_divergence

        a = ((0, "L1D", "respond", 1), (2, "L2", "respond", 3))
        b = ((0, "L1D", "respond", 1), (2, "L2", "respond", 4))
        assert first_divergence(a, a) is None
        assert first_divergence(a, b) == 1
        # A strict prefix diverges at the shorter trace's length.
        assert first_divergence(a, a[:1]) == 1
        assert first_divergence((), ()) is None

    def test_result_reports_divergence_site(self):
        def make(addr):
            def action(hierarchy):
                hierarchy.load(addr, now=10)
            return action

        result = check_non_interference(make, [0x40000, 0x900000], prepare=_warm)
        assert not result.ok
        divergence = result.divergence
        assert divergence is not None
        assert divergence.operand_index == 1
        assert divergence.event_index == first_event_mismatch(result.traces)
        assert divergence.baseline_event == result.traces[0][divergence.event_index]
        assert divergence.divergent_event == result.traces[1][divergence.event_index]
        assert "diverges at event" in divergence.describe()

    def test_matching_traces_have_no_divergence(self):
        level = MemLevel.L1
        result = check_non_interference(
            _obl_action(level), [0x40000, 0x40040], prepare=_warm
        )
        assert result.ok
        assert result.divergence is None

    def test_tuple_unpacking_back_compat(self):
        """Historical callers unpack ``(ok, traces)``; that must keep
        working."""
        level = MemLevel.L1
        ok, traces = check_non_interference(
            _obl_action(level), [0x40000, 0x40040], prepare=_warm
        )
        assert ok is True
        assert len(traces) == 2

    def test_forward_interference_surfaces_divergence(self):
        from repro.security.forward_interference import run_forward_interference

        unsafe = run_forward_interference("Unsafe")
        assert unsafe.leaked
        assert unsafe.divergence is not None
        fence = run_forward_interference("Fence")
        assert not fence.leaked
        assert fence.divergence is None


def first_event_mismatch(traces):
    for i, (ea, eb) in enumerate(zip(traces[0], traces[1])):
        if ea != eb:
            return i
    return min(len(traces[0]), len(traces[1]))
