"""Definition 2 checks: DO variants create address-independent resource
traces; the normal path (by design) does not."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import MemLevel
from repro.security.analyzer import check_non_interference, resource_trace_of

_WARM = tuple(0x40000 + 64 * i for i in range(256)) + tuple(
    0x80000 + 64 * i for i in range(256)
)


def _warm(hierarchy):
    hierarchy.warm(_WARM)


def _obl_action(level):
    def make(addr):
        def action(hierarchy):
            hierarchy.oblivious_load(addr, level, now=10)
        return action
    return make


class TestObliviousNonInterference:
    @pytest.mark.parametrize("level", [MemLevel.L1, MemLevel.L2, MemLevel.L3])
    def test_do_variants_are_address_oblivious(self, level):
        """Identical resource traces for cached, uncached, near and far
        addresses — Definition 2."""
        operands = [0x40000, 0x40040, 0x80000, 0x123400, 0x7777000]
        ok, traces = check_non_interference(
            _obl_action(level), operands, prepare=_warm
        )
        assert ok, f"trace divergence at level {level}: {traces}"

    @given(st.integers(0, 1 << 24), st.integers(0, 1 << 24))
    @settings(max_examples=30, deadline=None)
    def test_property_random_address_pairs(self, addr_a, addr_b):
        ok, traces = check_non_interference(
            _obl_action(MemLevel.L2), [addr_a, addr_b], prepare=_warm
        )
        assert ok

    def test_hit_and_miss_indistinguishable(self):
        """The classic leak an Obl-Ld closes: present vs absent data."""
        cached, uncached = 0x40000, 0x9990000
        ok, _ = check_non_interference(
            _obl_action(MemLevel.L3), [cached, uncached], prepare=_warm
        )
        assert ok

    def test_tlb_hit_and_miss_indistinguishable(self):
        """The DO TLB probe must not emit address-dependent events either."""
        in_tlb = 0x40000        # warmed -> TLB entry present
        out_of_tlb = 0x40000000  # never touched
        ok, _ = check_non_interference(
            _obl_action(MemLevel.L1), [in_tlb, out_of_tlb], prepare=_warm
        )
        assert ok


class TestNormalPathLeaks:
    def test_normal_loads_are_distinguishable(self):
        """Sanity: the checker is not vacuous — the normal path's traces DO
        depend on the address (bank indices, hit levels, fills)."""

        def make(addr):
            def action(hierarchy):
                hierarchy.load(addr, now=10)
            return action

        ok, traces = check_non_interference(make, [0x40000, 0x9990000], prepare=_warm)
        assert not ok
        assert traces[0] != traces[1]

    def test_same_address_normal_loads_match(self):
        def make(addr):
            def action(hierarchy):
                hierarchy.load(addr, now=10)
            return action

        ok, _ = check_non_interference(make, [0x40000, 0x40000], prepare=_warm)
        assert ok


class TestOperandValidation:
    @pytest.mark.parametrize("operands", [[], [0x40000]])
    def test_too_few_operands_is_a_clear_error(self, operands):
        # Regression: an empty operand list used to escape as a bare
        # IndexError from ``traces[0]``; one operand passed vacuously.
        with pytest.raises(ValueError, match="at least 2 operands"):
            check_non_interference(_obl_action(MemLevel.L1), operands)


class TestTraceMachinery:
    def test_prepare_events_are_excluded(self):
        def action(hierarchy):
            hierarchy.load(0x40, now=0)

        trace = resource_trace_of(action, prepare=lambda h: h.warm([0x40000]))
        assert trace  # only the observed action's events
        structures = {entry[1] for entry in trace}
        assert "L1D.bank" in structures
