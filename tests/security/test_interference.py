"""Forward speculative interference: the penetration test for invisible
speculation ("It's a Trap").  Cache-state confinement (SpecBox) must fail
here, exactly where the delay-based schemes (STT, SDO, delay-on-miss) hold:
the squashed load's DRAM row-open modulates an older committed load."""

import pytest

from repro.common.config import AttackModel
from repro.security.forward_interference import (
    build_forward_interference,
    run_forward_interference,
)

MODELS = [AttackModel.SPECTRE, AttackModel.FUTURISTIC]
VULNERABLE = ["Unsafe", "SpecBox"]
PROTECTED = [
    "STT{ld}", "STT{ld+fp}",
    "Static L1", "Static L2", "Static L3", "Hybrid", "Perfect",
    "DelayOnMiss",
]


class TestForwardInterference:
    @pytest.mark.parametrize("config", VULNERABLE)
    @pytest.mark.parametrize("model", MODELS)
    def test_invisible_speculation_still_interferes(self, config, model):
        result = run_forward_interference(config, model)
        assert result.leaked
        # The secret-1 run is the *faster* one: the squashed load opened the
        # probe's DRAM row, so the committed probe row-hits.
        assert result.delta_cycles < 0

    @pytest.mark.parametrize("config", PROTECTED)
    @pytest.mark.parametrize("model", MODELS)
    def test_delay_based_schemes_close_the_channel(self, config, model):
        result = run_forward_interference(config, model)
        assert not result.leaked

    def test_committed_stream_is_secret_invariant(self):
        result = run_forward_interference("Unsafe")
        counts = set(result.instructions_by_secret.values())
        assert len(counts) == 1

    def test_secret_must_select_a_row(self):
        with pytest.raises(ValueError):
            build_forward_interference(secret=2)
        with pytest.raises(ValueError):
            build_forward_interference(secret=-1)

    def test_victim_program_is_well_formed(self):
        program = build_forward_interference(secret=1)
        assert len(program) > 40  # the delay chain alone is 40 micro-ops
