"""Tests for the tournament branch predictor, BTB, and RAS."""

import pytest
from hypothesis import given, strategies as st

from repro.frontend.branch_predictor import (
    BimodalTable,
    GshareTable,
    TournamentPredictor,
)
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.ras import ReturnAddressStack


class TestBimodal:
    def test_learns_taken(self):
        table = BimodalTable(64)
        for _ in range(3):
            table.update(10, taken=True)
        assert table.predict(10)

    def test_hysteresis(self):
        table = BimodalTable(64)
        for _ in range(4):
            table.update(10, taken=True)
        table.update(10, taken=False)  # one contrary outcome
        assert table.predict(10)  # still taken (2-bit counter)

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BimodalTable(100)


class TestGshare:
    def test_history_distinguishes_contexts(self):
        table = GshareTable(256, history_bits=4)
        # Same PC, two different histories, opposite outcomes.
        for _ in range(4):
            table.update(10, history=0b0000, taken=True)
            table.update(10, history=0b1111, taken=False)
        assert table.predict(10, 0b0000)
        assert not table.predict(10, 0b1111)


class TestTournament:
    def test_learns_a_loop_pattern(self):
        predictor = TournamentPredictor()
        # Branch taken 7 times then not taken, repeatedly (loop exit).
        for _ in range(40):
            for i in range(8):
                taken = i != 7
                prediction = predictor.predict(100)
                predictor.update(100, prediction, taken)
        # After training, body iterations should predict taken.
        correct = 0
        for i in range(8):
            taken = i != 7
            prediction = predictor.predict(100)
            predictor.update(100, prediction, taken)
            correct += prediction.taken == taken
        assert correct >= 6

    def test_mispredict_rate_tracked(self):
        predictor = TournamentPredictor()
        prediction = predictor.predict(5)
        predictor.update(5, prediction, not prediction.taken)
        assert predictor.mispredictions == 1
        assert predictor.mispredict_rate == 1.0

    def test_speculative_history_and_repair(self):
        predictor = TournamentPredictor()
        before = predictor.history
        prediction = predictor.predict(5)
        assert predictor.history != before or prediction.taken is False
        # Suppose the prediction was wrong: repair re-inserts the truth.
        predictor.repair(prediction, taken=True)
        assert predictor.history & 1 == 1
        assert (predictor.history >> 1) == (prediction.history_snapshot & 0x7FF)

    def test_biased_branch_converges(self):
        predictor = TournamentPredictor()
        for _ in range(20):
            prediction = predictor.predict(8)
            predictor.update(8, prediction, True)
        assert predictor.predict(8).taken

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_never_crashes_and_history_bounded(self, outcomes):
        predictor = TournamentPredictor()
        for taken in outcomes:
            prediction = predictor.predict(3)
            predictor.update(3, prediction, taken)
        assert 0 <= predictor.history < (1 << 12)


class TestBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(64)
        assert btb.lookup(10) is None
        btb.install(10, 42)
        assert btb.lookup(10) == 42

    def test_aliasing_eviction(self):
        btb = BranchTargetBuffer(64)
        btb.install(10, 1)
        btb.install(10 + 64, 2)  # same index, different tag
        assert btb.lookup(10) is None
        assert btb.lookup(10 + 64) == 2

    def test_hit_rate(self):
        btb = BranchTargetBuffer(64)
        btb.lookup(1)
        btb.install(1, 5)
        btb.lookup(1)
        assert btb.hit_rate == pytest.approx(0.5)


class TestRas:
    def test_push_pop(self):
        ras = ReturnAddressStack(8)
        ras.push(100)
        ras.push(200)
        assert ras.pop() == 200
        assert ras.pop() == 100

    def test_circular_overwrite(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)  # overwrites 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() == 3  # wrapped: oldest lost

    def test_snapshot_restore(self):
        ras = ReturnAddressStack(4)
        ras.push(7)
        snap = ras.snapshot()
        ras.push(8)
        ras.pop()
        ras.pop()
        ras.restore(snap)
        assert ras.peek() == 7

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)
