"""Tests for the mesh interconnect and the resource observer."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.interconnect import Mesh, slice_node, slice_of_line
from repro.memory.observer import ResourceEvent, ResourceObserver


class TestMesh:
    def test_table1_geometry(self):
        mesh = Mesh((4, 2), hop_latency=1)
        assert mesh.num_nodes == 8

    def test_manhattan_distance(self):
        mesh = Mesh((4, 2))
        assert mesh.hops(0, 0) == 0
        assert mesh.hops(0, 3) == 3
        assert mesh.hops(0, 7) == 4  # (0,0) -> (3,1)
        assert mesh.hops(5, 2) == 2  # (1,1) -> (2,0)

    def test_latency_scales_with_hops(self):
        mesh = Mesh((4, 2), hop_latency=3)
        assert mesh.latency(0, 3) == 9
        assert mesh.round_trip(0, 3) == 18

    def test_max_round_trip_is_the_broadcast_bound(self):
        mesh = Mesh((4, 2))
        worst = mesh.max_round_trip(0)
        assert worst == 2 * 4
        assert all(mesh.round_trip(0, n) <= worst for n in range(8))

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            Mesh((0, 2))

    def test_node_bounds(self):
        with pytest.raises(ValueError):
            Mesh((2, 2)).coords(4)

    @given(st.integers(0, 7), st.integers(0, 7))
    def test_hops_symmetric(self, a, b):
        mesh = Mesh((4, 2))
        assert mesh.hops(a, b) == mesh.hops(b, a)


class TestSliceHash:
    @given(st.integers(0, 1 << 40))
    def test_slice_in_range(self, line):
        assert 0 <= slice_of_line(line, 8) < 8

    def test_consecutive_lines_spread(self):
        slices = {slice_of_line(line, 8) for line in range(64)}
        assert len(slices) > 1

    def test_deterministic(self):
        assert slice_of_line(12345, 8) == slice_of_line(12345, 8)

    def test_slice_node_wraps(self):
        mesh = Mesh((2, 2))
        assert slice_node(5, mesh) == 1


class TestResourceObserver:
    def test_disabled_by_default(self):
        observer = ResourceObserver()
        observer.emit(0, "L1D", "respond")
        assert observer.events == []

    def test_enabled_records(self):
        observer = ResourceObserver(enabled=True)
        observer.emit(5, "L1D.bank", "reserve", 3)
        assert observer.events == [ResourceEvent(5, "L1D.bank", "reserve", 3)]

    def test_trace_filtering(self):
        observer = ResourceObserver(enabled=True)
        observer.emit(0, "L1D.bank", "reserve", 1)
        observer.emit(1, "L2.bank", "reserve", 2)
        observer.emit(2, "L1D", "respond", 0)
        trace = observer.trace(structures=["L1D"])
        assert len(trace) == 2

    def test_normalized_rebases_cycles(self):
        observer = ResourceObserver(enabled=True)
        observer.emit(100, "X", "a")
        observer.emit(105, "X", "b")
        normalized = observer.normalized()
        assert normalized[0][0] == 0
        assert normalized[1][0] == 5

    def test_clear(self):
        observer = ResourceObserver(enabled=True)
        observer.emit(0, "X", "a")
        observer.clear()
        assert observer.events == []

    def test_event_str(self):
        event = ResourceEvent(3, "L3.slice", "reserve_all", 7)
        assert "L3.slice" in str(event)
        assert "reserve_all" in str(event)
