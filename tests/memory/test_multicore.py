"""Tests for the shared-memory system (multi-agent coherence)."""

import random

import pytest

from repro.common.config import AttackModel, MemLevel
from repro.core import SdoProtection
from repro.core.predictors import StaticPredictor
from repro.isa import assemble
from repro.memory.multicore import SharedMemorySystem
from repro.pipeline.core import Core


class TestSharedMemorySystem:
    def test_construction(self):
        system = SharedMemorySystem(num_agents=3)
        assert system.num_agents == 3
        with pytest.raises(ValueError):
            SharedMemorySystem(num_agents=0)

    def test_remote_store_invalidates_sharers(self):
        system = SharedMemorySystem(num_agents=2)
        addr = 0x4000
        system.agent_load(0, addr, now=0)  # agent 0 caches the line
        assert system.hierarchy(0).residence_level(addr) is MemLevel.L1
        invalidated = system.remote_store(1, addr, value=99, now=100)
        assert invalidated == {0}
        assert system.hierarchy(0).residence_level(addr) is MemLevel.DRAM
        assert system.shared_memory[addr] == 99

    def test_store_by_sole_owner_invalidates_nobody(self):
        system = SharedMemorySystem(num_agents=2)
        system.agent_load(1, 0x4000, now=0)
        assert system.remote_store(1, 0x4000, 5) == frozenset()

    def test_attach_core_requires_matching_hierarchy(self):
        system = SharedMemorySystem(num_agents=2)
        foreign = Core(assemble("halt"))
        with pytest.raises(ValueError):
            system.attach_core(0, foreign)

    def test_attached_core_sees_remote_writes(self):
        """A remote store lands in the shared image, so the victim's later
        loads observe it (single serialization point)."""
        system = SharedMemorySystem(num_agents=2)
        program = assemble(
            """
                li r9, 16384
                load r1, r9, 0
                store r1, r0, 9000
                halt
            """,
            {16384: 1},
        )
        core = Core(
            program, hierarchy=system.hierarchy(0), check_golden=False
        )
        system.attach_core(0, core)
        system.remote_store(1, 16384, 42)
        core.run()
        assert core.committed.read_mem(9000) == 42


class TestConsistencyEndToEnd:
    def test_remote_writer_and_obl_ld_victim_stay_consistent(self):
        """A victim running Obl-Lds over a table while a remote agent
        stores to it: validations catch stale forwards; the final committed
        value reflects values that existed in the shared image."""
        rng = random.Random(3)
        table_base, entries = 1 << 20, 512
        memory = {table_base + 8 * i: 1 for i in range(entries)}
        iterations = 60
        for i in range(iterations):
            memory[4096 + 64 * i] = (rng.randrange(entries) * 8)
        source = f"""
            li r1, 0
            li r2, {iterations}
            li r6, 64
            li r7, 1000000
        loop:
            mul r8, r1, r6
            load r5, r8, 33554432    ; slow cold condition load
            bge r5, r7, skip
            load r3, r8, 4096
            load r4, r3, {table_base} ; tainted -> Obl-Ld
            add r10, r10, r4
        skip:
            addi r1, r1, 1
            blt r1, r2, loop
            store r10, r0, 9000
            halt
        """
        system = SharedMemorySystem(num_agents=2)
        program = assemble(source, memory)
        core = Core(
            program,
            hierarchy=system.hierarchy(0),
            protection=SdoProtection(StaticPredictor(MemLevel.L2), AttackModel.SPECTRE),
            check_golden=False,  # remote writes are outside the golden order
        )
        system.attach_core(0, core)
        system.hierarchy(0).warm(
            [table_base + 8 * i for i in range(0, entries, 8)]
            + [4096 + 64 * i for i in range(iterations)]
        )
        writes = 0
        while not core.halted and core.cycle < 400_000:
            core.step()
            if core.cycle % 30 == 11:
                addr = table_base + 8 * rng.randrange(entries)
                system.remote_store(1, addr, rng.choice([1, 2]), now=core.cycle)
                writes += 1
        assert core.halted
        assert writes > 0
        # Every table value ever present is 1 or 2, so any consistent
        # interleaving sums within these bounds.
        total = core.committed.read_mem(9000)
        assert 0 < total <= 2 * iterations
