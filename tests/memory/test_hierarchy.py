"""Tests for the composed memory hierarchy: timing, state, oblivious path."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import MachineConfig, MemLevel
from repro.memory.hierarchy import MemoryHierarchy


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(MachineConfig())


class TestNormalPath:
    def test_cold_load_goes_to_dram(self, hierarchy):
        response = hierarchy.load(0x1000, 0)
        assert response.level is MemLevel.DRAM
        assert response.complete_at > MachineConfig().level_latency(MemLevel.L3)

    def test_fill_promotes_to_l1(self, hierarchy):
        first = hierarchy.load(0x1000, 0)
        second = hierarchy.load(0x1000, first.complete_at + 1)
        assert second.level is MemLevel.L1
        latency = second.complete_at - (first.complete_at + 1)
        assert latency <= MachineConfig().l1d.latency + 2  # +TLB

    def test_latency_ordering_across_levels(self, hierarchy):
        """Deeper residences must cost more."""
        machine = MachineConfig()
        # Put a line in each level by filling then selectively invalidating.
        base = 0x40000
        timings = {}
        for level in (MemLevel.L1, MemLevel.L2, MemLevel.L3, MemLevel.DRAM):
            h = MemoryHierarchy(machine)
            addr = base
            if level is not MemLevel.DRAM:
                h.warm([addr])
                if level >= MemLevel.L2:
                    h.l1.array.invalidate(h.line_of(addr))
                if level >= MemLevel.L3:
                    h.l2.array.invalidate(h.line_of(addr))
            response = h.load(addr, 0)
            assert response.level is level
            timings[level] = response.complete_at
        assert (
            timings[MemLevel.L1]
            < timings[MemLevel.L2]
            < timings[MemLevel.L3]
            < timings[MemLevel.DRAM]
        )

    def test_line_granularity_sharing(self, hierarchy):
        hierarchy.load(0x1000, 0)
        response = hierarchy.load(0x1008, 500)  # same 64B line
        assert response.level is MemLevel.L1

    def test_store_is_write_allocate(self, hierarchy):
        hierarchy.store(0x2000, 0)
        assert hierarchy.residence_level(0x2000) is MemLevel.L1
        assert hierarchy.l1.array.is_dirty(hierarchy.line_of(0x2000))

    def test_bank_contention_serializes(self):
        hierarchy = MemoryHierarchy(MachineConfig())
        line_size = 64
        banks = hierarchy.l1.config.banks
        # Two same-cycle hits to lines in the same bank.
        addr_a = 0
        addr_b = banks * line_size  # same bank (line % banks)
        hierarchy.warm([addr_a, addr_b])
        first = hierarchy.load(addr_a, 10)
        second = hierarchy.load(addr_b, 10)
        assert second.complete_at > first.complete_at

    def test_same_line_request_while_fill_outstanding_is_fast(self, hierarchy):
        """The timing model resolves requests eagerly: the first miss's fill
        is visible immediately, so a same-line request right behind it hits
        (the real-hardware equivalent is an MSHR merge — see MshrFile tests
        for the structure itself)."""
        first = hierarchy.load(0x9000, 0)
        second = hierarchy.load(0x9008, 2)
        assert second.complete_at <= first.complete_at

    def test_dirty_l1_victim_written_back_to_l2(self):
        machine = MachineConfig()
        hierarchy = MemoryHierarchy(machine)
        sets = machine.l1d.num_sets
        assoc = machine.l1d.assoc
        target = 0x5000
        hierarchy.store(target, 0)
        target_line = hierarchy.line_of(target)
        # Evict it with assoc conflicting lines in the same set.
        now = 1000
        for way in range(1, assoc + 1):
            conflict = (target_line + way * sets) * 64
            response = hierarchy.load(conflict, now)
            now = response.complete_at + 1
        assert not hierarchy.l1.array.probe(target_line)
        assert hierarchy.l2.array.probe(target_line)
        assert hierarchy.stats["writebacks"] >= 1


class TestObliviousPath:
    def test_no_state_change(self, hierarchy):
        before_l1 = hierarchy.l1.array.resident_lines()
        response = hierarchy.oblivious_load(0x7000, MemLevel.L3, 0)
        assert response.actual_level is MemLevel.DRAM
        assert not response.success
        assert hierarchy.l1.array.resident_lines() == before_l1
        assert hierarchy.residence_level(0x7000) is MemLevel.DRAM

    def test_success_iff_actual_at_or_above_prediction(self, hierarchy):
        hierarchy.warm([0x3000])
        hierarchy.l1.array.invalidate(hierarchy.line_of(0x3000))  # now L2
        assert hierarchy.oblivious_load(0x3000, MemLevel.L1, 0).success is False
        assert hierarchy.oblivious_load(0x3000, MemLevel.L2, 50).success is True
        assert hierarchy.oblivious_load(0x3000, MemLevel.L3, 100).success is True

    def test_responses_arrive_in_level_order(self, hierarchy):
        response = hierarchy.oblivious_load(0x3000, MemLevel.L3, 0)
        levels = [level for level, _, _ in response.responses]
        cycles = [cycle for _, cycle, _ in response.responses]
        assert levels == [MemLevel.L1, MemLevel.L2, MemLevel.L3]
        assert cycles == sorted(cycles)

    def test_dram_prediction_rejected(self, hierarchy):
        with pytest.raises(ValueError, match="no DO variant"):
            hierarchy.oblivious_load(0x3000, MemLevel.DRAM, 0)

    def test_tlb_probe_miss_poisons_to_fail(self, hierarchy):
        hierarchy.warm([0x3000])
        hierarchy.tlb.flush()
        response = hierarchy.oblivious_load(0x3000, MemLevel.L2, 0)
        assert not response.tlb_hit
        assert not response.success  # data present, but translation failed

    def test_latency_depends_on_prediction_not_address(self, hierarchy):
        """Two different addresses, same prediction: same response schedule."""
        hierarchy.warm([0x3000, 0x10000])
        r1 = hierarchy.oblivious_load(0x3000, MemLevel.L2, 100)
        h2 = MemoryHierarchy(MachineConfig())
        h2.warm([0x3000, 0x10000])
        r2 = h2.oblivious_load(0x10000, MemLevel.L2, 100)
        assert [c for _, c, _ in r1.responses] == [c for _, c, _ in r2.responses]

    def test_obl_blocks_all_banks(self, hierarchy):
        """A normal access right after an Obl-Ld waits for the all-banks
        reservation, whatever its bank."""
        hierarchy.warm([0x3000, 64 * 3])
        hierarchy.oblivious_load(0x3000, MemLevel.L1, 100)
        delayed = hierarchy.load(64 * 3, 100)
        baseline = MemoryHierarchy(MachineConfig())
        baseline.warm([0x3000, 64 * 3])
        free = baseline.load(64 * 3, 100)
        assert delayed.complete_at > free.complete_at

    def test_first_success_cycle(self, hierarchy):
        hierarchy.warm([0x3000])
        response = hierarchy.oblivious_load(0x3000, MemLevel.L3, 0)
        assert response.first_success_cycle() == response.responses[0][1]
        miss = hierarchy.oblivious_load(0x999000, MemLevel.L2, 200)
        assert miss.first_success_cycle() is None


class TestExternalInvalidate:
    def test_invalidation_removes_from_private_caches(self, hierarchy):
        hierarchy.warm([0x4000])
        assert hierarchy.external_invalidate(0x4000)
        assert hierarchy.residence_level(0x4000) is MemLevel.DRAM

    def test_invalidation_of_absent_line(self, hierarchy):
        assert not hierarchy.external_invalidate(0xABC000)


class TestWarm:
    def test_warm_fills_all_levels(self, hierarchy):
        hierarchy.warm([0x8000])
        line = hierarchy.line_of(0x8000)
        assert hierarchy.l1.array.probe(line)
        assert hierarchy.l2.array.probe(line)
        assert hierarchy.l3_slices[hierarchy.slice_of(line)].array.probe(line)

    def test_warm_leaves_no_timing_residue(self, hierarchy):
        hierarchy.warm([64 * i for i in range(1000)])
        response = hierarchy.load(64 * 999, 0)  # most recent warm: L1 hit
        assert response.level is MemLevel.L1
        assert response.complete_at <= 8  # no queueing debt from warming

    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=50))
    @settings(max_examples=25, deadline=None)
    def test_warm_then_residence_is_cached(self, addrs):
        hierarchy = MemoryHierarchy(MachineConfig())
        hierarchy.warm(addrs)
        for addr in addrs[-8:]:  # most-recent fills certainly still resident
            assert hierarchy.residence_level(addr) is not MemLevel.DRAM
