"""Tests for the MESI directory."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.coherence import CoherenceState, Directory


class TestDirectoryBasics:
    def test_first_read_grants_exclusive(self):
        directory = Directory(4)
        result = directory.read(0, line=10)
        assert result.granted is CoherenceState.EXCLUSIVE
        assert not result.invalidated_cores

    def test_second_reader_shares(self):
        directory = Directory(4)
        directory.read(0, 10)
        result = directory.read(1, 10)
        assert result.granted is CoherenceState.SHARED
        assert result.downgraded_core == 0  # E holder forced to share
        assert directory.sharers_of(10) == {0, 1}

    def test_write_invalidates_sharers(self):
        directory = Directory(4)
        directory.read(0, 10)
        directory.read(1, 10)
        directory.read(2, 10)
        result = directory.write(3, 10)
        assert result.granted is CoherenceState.MODIFIED
        assert result.invalidated_cores == {0, 1, 2}
        assert directory.sharers_of(10) == {3}

    def test_writer_rereading_keeps_modified(self):
        directory = Directory(2)
        directory.write(0, 10)
        result = directory.read(0, 10)
        assert result.granted is CoherenceState.MODIFIED
        assert not result.invalidated_cores

    def test_read_from_modified_downgrades_owner(self):
        directory = Directory(2)
        directory.write(0, 10)
        result = directory.read(1, 10)
        assert result.downgraded_core == 0
        assert directory.state_of(10) is CoherenceState.SHARED

    def test_write_upgrade_from_shared(self):
        directory = Directory(2)
        directory.read(0, 10)
        directory.read(1, 10)
        result = directory.write(0, 10)
        assert result.invalidated_cores == {1}

    def test_evict_clears_and_garbage_collects(self):
        directory = Directory(2)
        directory.read(0, 10)
        directory.evict(0, 10)
        assert directory.state_of(10) is CoherenceState.INVALID
        assert 10 not in directory._entries

    def test_evict_unknown_line_is_noop(self):
        Directory(2).evict(0, 999)

    def test_core_id_validation(self):
        directory = Directory(2)
        with pytest.raises(ValueError):
            directory.read(2, 0)
        with pytest.raises(ValueError):
            Directory(0)

    def test_invalidation_counter(self):
        directory = Directory(3)
        directory.read(0, 5)
        directory.read(1, 5)
        directory.write(2, 5)
        assert directory.invalidations_sent == 2


class TestDirectoryInvariants:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["read", "write", "evict"]),
                st.integers(0, 3),  # core
                st.integers(0, 7),  # line
            ),
            max_size=200,
        )
    )
    def test_single_writer_multiple_readers(self, operations):
        """At any point, a line has either one owner and no sharers, or
        any number of sharers and no owner (SWMR)."""
        directory = Directory(4)
        for op, core, line in operations:
            getattr(directory, op)(core, line)
            entry = directory._entries.get(line)
            if entry is not None:
                if entry.owner is not None:
                    assert not entry.sharers
                assert (entry.owner is None) or (0 <= entry.owner < 4)

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 7)), min_size=1, max_size=100
        )
    )
    def test_write_always_leaves_sole_ownership(self, writes):
        directory = Directory(4)
        for core, line in writes:
            directory.write(core, line)
            assert directory.sharers_of(line) == {core}
