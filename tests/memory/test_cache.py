"""Tests for the cache array: LRU, dirty bits, probe vs access."""

from hypothesis import given, strategies as st

from repro.common.config import CacheConfig
from repro.memory.cache import CacheArray


def small_cache(sets=4, assoc=2) -> CacheArray:
    return CacheArray(
        CacheConfig("T", size=sets * assoc * 64, line_size=64, assoc=assoc, latency=1)
    )


class TestAccess:
    def test_miss_then_hit(self):
        cache = small_cache()
        hit, _ = cache.access(0)
        assert not hit
        hit, _ = cache.access(0)
        assert hit

    def test_lru_eviction_order(self):
        cache = small_cache(sets=1, assoc=2)
        cache.access(0)
        cache.access(1)
        cache.access(0)  # 0 becomes MRU
        _, evicted = cache.access(2)  # evicts 1 (LRU)
        assert evicted is not None
        assert evicted.line == 1
        assert cache.probe(0) and cache.probe(2) and not cache.probe(1)

    def test_write_sets_dirty_and_eviction_reports_it(self):
        cache = small_cache(sets=1, assoc=1)
        cache.access(0, write=True)
        assert cache.is_dirty(0)
        _, evicted = cache.access(1)
        assert evicted.line == 0
        assert evicted.dirty

    def test_write_allocate(self):
        cache = small_cache()
        hit, _ = cache.access(5, write=True)
        assert not hit
        assert cache.probe(5)
        assert cache.is_dirty(5)

    def test_access_without_fill(self):
        cache = small_cache()
        hit, evicted = cache.access(3, fill=False)
        assert not hit and evicted is None
        assert not cache.probe(3)

    def test_sets_are_independent(self):
        cache = small_cache(sets=4, assoc=1)
        cache.access(0)
        cache.access(1)  # different set (line % sets)
        assert cache.probe(0) and cache.probe(1)


class TestProbe:
    def test_probe_does_not_fill(self):
        cache = small_cache()
        assert not cache.probe(7)
        assert not cache.probe(7)  # still absent

    def test_probe_does_not_touch_lru(self):
        """The DO lookup must not perturb replacement state — otherwise the
        Obl-Ld's address would leak through future evictions."""
        cache = small_cache(sets=1, assoc=2)
        cache.access(0)
        cache.access(1)  # LRU order: 0, 1
        assert cache.probe(0)  # must NOT promote 0
        _, evicted = cache.access(2)
        assert evicted.line == 0  # 0 still LRU despite the probe

    def test_probe_does_not_set_dirty(self):
        cache = small_cache()
        cache.access(0)
        cache.probe(0)
        assert not cache.is_dirty(0)


class TestFillInvalidate:
    def test_fill_inserts(self):
        cache = small_cache()
        assert cache.fill(9) is None
        assert cache.probe(9)

    def test_fill_preserves_existing_dirty(self):
        cache = small_cache()
        cache.access(0, write=True)
        cache.fill(0, dirty=False)
        assert cache.is_dirty(0)

    def test_invalidate(self):
        cache = small_cache()
        cache.access(0)
        assert cache.invalidate(0)
        assert not cache.probe(0)
        assert not cache.invalidate(0)

    def test_flush(self):
        cache = small_cache()
        for line in range(8):
            cache.access(line)
        cache.flush()
        assert cache.occupancy() == 0


class TestInvariants:
    @given(st.lists(st.tuples(st.integers(0, 63), st.booleans()), max_size=300))
    def test_occupancy_never_exceeds_capacity(self, operations):
        cache = small_cache(sets=4, assoc=2)
        for line, write in operations:
            cache.access(line, write=write)
        assert cache.occupancy() <= 8
        for target_set in cache._sets:
            assert len(target_set) <= 2

    @given(st.lists(st.integers(0, 31), min_size=1, max_size=200))
    def test_most_recent_access_is_always_resident(self, lines):
        cache = small_cache(sets=4, assoc=2)
        for line in lines:
            cache.access(line)
        assert cache.probe(lines[-1])

    @given(st.lists(st.integers(0, 31), max_size=200))
    def test_probe_sequence_never_changes_state(self, lines):
        cache = small_cache()
        for line in lines[: len(lines) // 2]:
            cache.access(line)
        before = cache.resident_lines()
        for line in lines:
            cache.probe(line)
        assert cache.resident_lines() == before
