"""Regression tests for `_PortScheduler`: pruning must never re-open
already-full past cycles (the over-subscription bug behind imprecise
Obl-Ld contention numbers)."""

from hypothesis import given, settings, strategies as st

from repro.memory.hierarchy import _PortScheduler


def _count_grants(grants: list[int]) -> dict[int, int]:
    counts: dict[int, int] = {}
    for cycle in grants:
        counts[cycle] = counts.get(cycle, 0) + 1
    return counts


class TestPruneFloor:
    def test_prune_does_not_reopen_full_past_cycles(self):
        """The original reproducer: fill cycles 0-2 on a 1-port level, force
        the prune with a far-future grant, then ask for cycle 1 again.  The
        pre-fix scheduler discarded the usage counts and handed cycle 1 out
        a second time."""
        sched = _PortScheduler(ports=1)
        assert [sched.grant(0), sched.grant(0), sched.grant(0)] == [0, 1, 2]
        far = sched.grant(10_000)  # triggers the prune
        assert far == 10_000
        regrant = sched.grant(1)
        assert regrant != 1, "prune re-opened an already-full cycle"
        assert regrant >= far - 64  # clamped up to the retained window

    def test_floor_is_monotone_across_multiple_prunes(self):
        sched = _PortScheduler(ports=1)
        grants = [sched.grant(0) for _ in range(4)]
        grants.append(sched.grant(10_000))
        grants.append(sched.grant(50_000))
        # After two prunes, early cycles must stay closed.
        grants.append(sched.grant(0))
        grants.append(sched.grant(3))
        counts = _count_grants(grants)
        assert all(n <= 1 for n in counts.values()), counts

    def test_grants_within_window_still_pack_tightly(self):
        """The fix must not cost anything in the common (no-prune) case."""
        sched = _PortScheduler(ports=2)
        assert sorted(sched.grant(5) for _ in range(4)) == [5, 5, 6, 6]

    @given(
        ports=st.integers(min_value=1, max_value=3),
        earliests=st.lists(
            st.one_of(
                st.integers(min_value=0, max_value=80),
                st.integers(min_value=4_000, max_value=60_000),
            ),
            min_size=1,
            max_size=200,
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_never_oversubscribed(self, ports, earliests):
        """Property: no cycle ever collects more grants than ports, no
        matter how requests interleave with prunes."""
        sched = _PortScheduler(ports)
        grants = [sched.grant(earliest) for earliest in earliests]
        counts = _count_grants(grants)
        offenders = {c: n for c, n in counts.items() if n > ports}
        assert not offenders, offenders

    @given(
        earliests=st.lists(
            st.integers(min_value=0, max_value=100_000), min_size=1, max_size=100
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_grant_never_before_request(self, earliests):
        sched = _PortScheduler(ports=2)
        for earliest in earliests:
            assert sched.grant(earliest) >= earliest
