"""Tests for MSHR file, DRAM row-buffer model, and TLB."""

import pytest
from hypothesis import given, strategies as st

from repro.common.config import DramConfig, TlbConfig
from repro.memory.dram import Dram
from repro.memory.mshr import MshrFile
from repro.memory.tlb import Tlb


class TestMshrFile:
    def test_allocate_and_expire(self):
        mshrs = MshrFile(2)
        mshrs.allocate(1, now=0, release=10)
        assert mshrs.outstanding(0) == 1
        assert mshrs.outstanding(10) == 0

    def test_merge_same_line(self):
        mshrs = MshrFile(2)
        mshrs.allocate(1, now=0, release=10)
        result = mshrs.allocate(1, now=3, release=99)
        assert result.merged
        assert result.release == 10  # completes with the outstanding fill
        assert mshrs.outstanding(3) == 1  # no new entry

    def test_private_entries_never_merge(self):
        """The Obl-Ld rule (Section VI-B2): every Obl-Ld allocates its own
        MSHR, so occupancy depends only on the number of Obl-Lds in flight,
        never on their addresses."""
        mshrs = MshrFile(4)
        mshrs.allocate(1, now=0, release=10, private=True)
        result = mshrs.allocate(1, now=0, release=10, private=True)
        assert not result.merged
        assert mshrs.outstanding(0) == 2

    def test_private_does_not_enable_future_merges(self):
        mshrs = MshrFile(4)
        mshrs.allocate(7, now=0, release=10, private=True)
        result = mshrs.allocate(7, now=1, release=12)
        assert not result.merged

    def test_full_file_stalls_until_release(self):
        mshrs = MshrFile(1)
        mshrs.allocate(1, now=0, release=10)
        result = mshrs.allocate(2, now=5, release=20)
        assert result.granted_at == 10

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MshrFile(0)

    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(1, 50)), max_size=100))
    def test_outstanding_never_exceeds_capacity(self, requests):
        mshrs = MshrFile(4)
        now = 0
        for line, duration in requests:
            result = mshrs.allocate(line, now, now + duration)
            now = max(now, result.granted_at) + 1
            assert mshrs.outstanding(now - 1) <= 4


class TestDram:
    def test_row_buffer_hit_is_faster(self):
        dram = Dram(DramConfig())
        cold = dram.access(0)
        warm = dram.access(1)  # same row (8KB row, 64B lines)
        assert warm < cold

    def test_row_conflict_pays_full_latency(self):
        dram = Dram(DramConfig())
        dram.access(0)
        conflict = dram.access(dram.lines_per_row * dram.config.banks)  # same bank, new row
        assert conflict == dram.config.latency

    def test_banks_have_independent_rows(self):
        dram = Dram(DramConfig())
        dram.access(0)  # bank 0, row 0
        dram.access(dram.lines_per_row)  # bank 1, row 1
        assert dram.access(1) < dram.config.latency  # bank 0 row 0 still open

    def test_hit_rate_accounting(self):
        dram = Dram(DramConfig())
        dram.access(0)
        dram.access(1)
        assert dram.row_hit_rate == pytest.approx(0.5)

    def test_reset(self):
        dram = Dram(DramConfig())
        dram.access(0)
        dram.reset()
        assert dram.accesses == 0
        assert dram.access(1) == dram.config.latency


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb(TlbConfig())
        hit, latency = tlb.access(0x1000)
        assert not hit and latency == tlb.config.walk_latency
        hit, latency = tlb.access(0x1000)
        assert hit and latency == tlb.config.hit_latency

    def test_same_page_shares_entry(self):
        tlb = Tlb(TlbConfig())
        tlb.access(0)
        hit, _ = tlb.access(tlb.config.page_size - 1)
        assert hit

    def test_probe_is_oblivious(self):
        """The DO TLB variant: no walk, no fill, no LRU update."""
        tlb = Tlb(TlbConfig())
        assert not tlb.probe(0x5000)
        assert not tlb.probe(0x5000)  # still a miss: probe didn't fill
        tlb.access(0x5000)
        assert tlb.probe(0x5000)
        assert tlb.hits + tlb.misses == 1  # probes don't count as accesses

    def test_lru_within_set(self):
        config = TlbConfig(entries=2, assoc=2, page_size=4096)
        tlb = Tlb(config)
        pages = [0, 1, 0, 2]  # single set; page 1 is LRU when 2 arrives
        for page in pages:
            tlb.access(page * 4096)
        assert tlb.probe(0)
        assert not tlb.probe(1 * 4096)

    def test_flush(self):
        tlb = Tlb(TlbConfig())
        tlb.access(0)
        tlb.flush()
        assert not tlb.probe(0)

    def test_hit_rate(self):
        tlb = Tlb(TlbConfig())
        tlb.access(0)
        tlb.access(0)
        assert tlb.hit_rate == pytest.approx(0.5)
