"""Property tests on the hierarchy: oblivious purity and LRU reference model."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.common.config import CacheConfig, MachineConfig, MemLevel
from repro.memory.cache import CacheArray
from repro.memory.hierarchy import MemoryHierarchy


class ReferenceLru:
    """An obviously-correct LRU cache model to check CacheArray against."""

    def __init__(self, sets: int, assoc: int) -> None:
        self.sets = sets
        self.assoc = assoc
        self.state: dict[int, OrderedDict[int, None]] = {
            s: OrderedDict() for s in range(sets)
        }

    def access(self, line: int) -> bool:
        entries = self.state[line % self.sets]
        hit = line in entries
        if hit:
            entries.move_to_end(line)
        else:
            if len(entries) >= self.assoc:
                entries.popitem(last=False)
            entries[line] = None
        return hit

    def present(self, line: int) -> bool:
        return line in self.state[line % self.sets]


class TestCacheMatchesReference:
    @given(st.lists(st.integers(0, 63), max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_hit_miss_stream_identical(self, lines):
        cache = CacheArray(CacheConfig("T", 8 * 2 * 64, 64, 2, 1))
        reference = ReferenceLru(sets=8, assoc=2)
        for line in lines:
            hit, _ = cache.access(line)
            assert hit == reference.access(line)
        for line in range(64):
            assert cache.probe(line) == reference.present(line)


class TestObliviousPurity:
    @given(
        warm=st.lists(st.integers(0, 1 << 16), max_size=40),
        probes=st.lists(
            st.tuples(
                st.integers(0, 1 << 20),
                st.sampled_from([MemLevel.L1, MemLevel.L2, MemLevel.L3]),
            ),
            min_size=1,
            max_size=20,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_oblivious_loads_never_change_residence(self, warm, probes):
        """Any sequence of Obl-Lds leaves every line's residence level
        exactly where it was — the no-state-change half of Definition 2."""
        hierarchy = MemoryHierarchy(MachineConfig())
        hierarchy.warm(warm)
        observed = {addr: hierarchy.residence_level(addr) for addr in warm}
        now = 100
        for addr, level in probes:
            response = hierarchy.oblivious_load(addr, level, now)
            now = response.complete_at + 1
        for addr, level in observed.items():
            assert hierarchy.residence_level(addr) == level

    @given(
        warm=st.lists(st.integers(0, 1 << 16), max_size=30),
        addr=st.integers(0, 1 << 20),
        level=st.sampled_from([MemLevel.L1, MemLevel.L2, MemLevel.L3]),
    )
    @settings(max_examples=40, deadline=None)
    def test_success_flag_is_truthful(self, warm, addr, level):
        """Definition 1: success iff the data really is at or above the
        predicted level (given a TLB hit)."""
        hierarchy = MemoryHierarchy(MachineConfig())
        hierarchy.warm(warm + [addr])  # guarantee a TLB entry for addr
        actual = hierarchy.residence_level(addr)
        response = hierarchy.oblivious_load(addr, level, 100)
        if response.tlb_hit:
            assert response.success == (actual <= level)
        else:
            assert not response.success

    @given(st.integers(0, 1 << 20))
    @settings(max_examples=30, deadline=None)
    def test_response_count_matches_prediction_depth(self, addr):
        hierarchy = MemoryHierarchy(MachineConfig())
        for level, expected in ((MemLevel.L1, 1), (MemLevel.L2, 2), (MemLevel.L3, 3)):
            response = hierarchy.oblivious_load(addr, level, 0)
            assert len(response.responses) == expected
