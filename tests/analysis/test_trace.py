"""Tests for the cycle trace recorder (JSONL + Konata) and the
stall-attribution invariant it reports."""

import json

import pytest

from repro.analysis import CycleTracer, TraceRecord, render_konata
from repro.isa import assemble
from repro.pipeline.core import Core
from repro.sim.api import Instrumentation, RunRequest, execute
from repro.sim.configs import config_by_name
from repro.workloads import make_indirect_stream


SOURCE = """
    li r1, 0
    li r2, 8
    li r6, 64
loop:
    mul r8, r1, r6
    load r5, r8, 4096
    and r9, r5, r6
    load r4, r9, 8192
    addi r1, r1, 1
    blt r1, r2, loop
    store r4, r0, 9000
    halt
"""


def traced_core(**tracer_kwargs):
    core = Core(assemble(SOURCE, {}))
    tracer = CycleTracer(**tracer_kwargs).attach(core)
    return core, tracer


def tiny_request(config="Hybrid", instrumentation=None):
    workload = make_indirect_stream(
        "trace_kernel", table_words=256, iterations=40, seed=3
    )
    return RunRequest(
        workload=workload,
        config=config_by_name(config),
        instrumentation=instrumentation,
    )


class TestCycleTracer:
    def test_records_every_committed_instruction(self):
        core, tracer = traced_core()
        core.run()
        summary = tracer.close()
        retired = [r for r in tracer.records() if r.retired]
        assert len(retired) == core.stats["instructions"]
        assert summary["uops_recorded"] >= core.stats["instructions"]

    def test_milestones_are_ordered(self):
        core, tracer = traced_core()
        core.run()
        tracer.close()
        for record in tracer.records():
            if not record.retired:
                continue
            # Some milestones are legitimately absent (IQ-bypassing uops
            # never issue); the ones that exist must be monotone.
            milestones = [
                c for c in (record.fetch, record.dispatch, record.issue,
                            record.complete, record.commit)
                if c >= 0
            ]
            assert milestones == sorted(milestones)
            assert record.fetch >= 0 and record.commit >= 0

    def test_ring_buffer_bounds_memory(self):
        core, tracer = traced_core(buffer_capacity=16)
        core.run()
        tracer.close()
        assert len(tracer.records()) <= 16

    def test_attach_twice_rejected(self):
        core, _tracer = traced_core()
        with pytest.raises(RuntimeError):
            CycleTracer().attach(core)

    def test_close_is_idempotent(self):
        core, tracer = traced_core()
        core.run()
        first = tracer.close()
        assert tracer.close() == first

    def test_tracing_does_not_change_timing(self):
        baseline = Core(assemble(SOURCE, {}))
        baseline.run()
        core, tracer = traced_core()
        core.run()
        tracer.close()
        assert core.cycle == baseline.cycle


class TestJsonlExport:
    def test_stall_counters_sum_to_non_commit_cycles(self, tmp_path):
        """The acceptance-criterion invariant: every cycle either commits or
        is charged to exactly one stall reason, and the traced JSONL summary
        carries the same attribution."""
        path = tmp_path / "run.trace.jsonl"
        metrics = execute(
            tiny_request(instrumentation=Instrumentation(trace_jsonl=path))
        )
        records = [json.loads(line) for line in path.read_text().splitlines()]
        summary = records[-1]
        assert summary["kind"] == "summary"
        assert summary["cycles"] == metrics.cycles
        assert (
            sum(summary["stall"].values())
            == summary["cycles"] - summary["commit_active_cycles"]
        )
        # The same counters appear in the run's stats.
        stat_sum = sum(
            v for k, v in metrics.stats.items() if k.startswith("core.stall.")
        )
        assert stat_sum == metrics.cycles - metrics.stats["core.commit_active_cycles"]

    def test_windowed_flush_streams_all_records(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        execute(
            tiny_request(
                instrumentation=Instrumentation(trace_jsonl=path, trace_buffer=8)
            )
        )
        records = [json.loads(line) for line in path.read_text().splitlines()]
        uops = [r for r in records if r["kind"] == "uop"]
        summary = records[-1]
        assert len(uops) == summary["uops_recorded"]
        seqs = [r["seq"] for r in uops]
        assert len(set(seqs)) == len(seqs), "no uop is written twice"


class TestKonataExport:
    def test_file_is_konata_loadable(self, tmp_path):
        """Konata accepts a log iff it starts with the Kanata header and every
        line is a known record type with the right arity; validate that."""
        path = tmp_path / "run.konata"
        execute(tiny_request(instrumentation=Instrumentation(trace_konata=path)))
        lines = path.read_text().splitlines()
        assert lines[0] == "Kanata\t0004"
        assert lines[1].startswith("C=\t")
        arity = {"C": 2, "I": 4, "L": 4, "S": 4, "R": 4}
        seen_kinds = set()
        started: set[str] = set()
        for line in lines[2:]:
            parts = line.split("\t")
            assert parts[0] in arity, f"unknown Konata record {line!r}"
            assert len(parts) == arity[parts[0]], f"bad arity: {line!r}"
            seen_kinds.add(parts[0])
            if parts[0] == "S":
                started.add(parts[1])
            elif parts[0] == "R":
                assert parts[1] in started, "retire before any stage"
        assert {"C", "I", "L", "S", "R"} <= seen_kinds

    def test_cycle_deltas_are_monotonic(self):
        records = [
            TraceRecord(seq=0, pc=0, op="li", fetch=0, dispatch=1, issue=2,
                        complete=3, commit=5),
            TraceRecord(seq=1, pc=1, op="load", fetch=0, dispatch=1, issue=3,
                        complete=9, squash=9),
        ]
        text = render_konata(records)
        for line in text.splitlines():
            if line.startswith("C\t"):
                assert int(line.split("\t")[1]) > 0

    def test_empty_trace_renders_header_only(self):
        text = render_konata([])
        assert text.startswith("Kanata\t0004\n")


class TestDisabledByDefault:
    def test_plain_request_has_no_tracer_artifacts(self):
        metrics = execute(tiny_request())
        assert not any(k.startswith("profile.") for k in metrics.stats)
        # Stall attribution is always on (it is just counters)...
        assert any(k.startswith("core.stall.") for k in metrics.stats)

    def test_inactive_instrumentation_is_inactive(self):
        assert not Instrumentation().active
        assert Instrumentation(profile=True).active
        assert Instrumentation(trace_jsonl="x").traced
