"""Tests for the analysis instruments (timeline, taint window, MLP)."""


from repro.analysis import MlpProbe, PipelineTimeline, TaintWindowProbe
from repro.common.config import AttackModel, MemLevel
from repro.core import SdoProtection
from repro.core.predictors import StaticPredictor
from repro.isa import assemble
from repro.pipeline.core import Core
from repro.stt import SttProtection


SOURCE = """
    li r1, 0
    li r2, 12
    li r6, 64
    li r7, 1000000
loop:
    mul r8, r1, r6
    load r5, r8, 1048576     ; cold loads -> misses
    bge r5, r7, skip
    load r3, r8, 4096
    and r9, r3, r6
    load r4, r9, 8192        ; dependent, tainted under the bge
skip:
    addi r1, r1, 1
    blt r1, r2, loop
    store r4, r0, 9000
    halt
"""


def fresh_core(protection=None):
    return Core(assemble(SOURCE, {}), protection=protection)


class TestPipelineTimeline:
    def test_records_all_stages(self):
        core = fresh_core()
        timeline = PipelineTimeline(core)
        core.run()
        retired = timeline.retired_records()
        assert len(retired) == core.stats["instructions"]
        first = retired[0]
        assert 0 <= first.fetched <= first.dispatched <= first.retired

    def test_squashed_uops_marked(self):
        core = fresh_core()
        timeline = PipelineTimeline(core)
        core.run()
        if core.stats["squashes"] > 0:
            assert any(r.squashed for r in timeline.records.values())

    def test_render_produces_diagram(self):
        core = fresh_core()
        timeline = PipelineTimeline(core)
        core.run()
        diagram = timeline.render(count=10)
        assert "R" in diagram
        assert "cycles" in diagram

    def test_observation_does_not_change_timing(self):
        plain = fresh_core()
        plain_result = plain.run()
        observed = fresh_core()
        PipelineTimeline(observed)
        observed_result = observed.run()
        assert plain_result.cycles == observed_result.cycles

    def test_average_latency_positive(self):
        core = fresh_core()
        timeline = PipelineTimeline(core)
        core.run()
        assert timeline.average_latency() > 0

    def test_capacity_bound(self):
        core = fresh_core()
        timeline = PipelineTimeline(core, capacity=5)
        core.run()
        assert len(timeline.records) <= 5


class TestTaintWindowProbe:
    def test_records_windows_under_stt(self):
        core = fresh_core(SttProtection(AttackModel.SPECTRE))
        probe = TaintWindowProbe(core)
        core.run()
        assert probe.windows.count > 0
        assert probe.mean_window >= 0

    def test_no_windows_without_protection_delays(self):
        """Unsafe: loads are never watched, so no safe events fire."""
        core = fresh_core()
        probe = TaintWindowProbe(core)
        core.run()
        assert probe.windows.count == 0

    def test_observation_does_not_change_timing(self):
        plain = fresh_core(SttProtection(AttackModel.SPECTRE))
        plain_cycles = plain.run().cycles
        observed = fresh_core(SttProtection(AttackModel.SPECTRE))
        TaintWindowProbe(observed)
        assert observed.run().cycles == plain_cycles


class TestMlpProbe:
    def test_detects_overlapped_misses(self):
        core = fresh_core()
        probe = MlpProbe(core)
        core.run()
        assert probe.peak_mlp >= 1
        assert probe.mean_mlp >= 1.0

    def test_sdo_mlp_at_least_stt(self):
        """On this dependent-miss kernel SDO should sustain at least as
        much miss overlap as STT."""
        stt_core = fresh_core(SttProtection(AttackModel.SPECTRE))
        stt_probe = MlpProbe(stt_core)
        stt_core.run()
        sdo_core = fresh_core(
            SdoProtection(StaticPredictor(MemLevel.L2), AttackModel.SPECTRE)
        )
        sdo_probe = MlpProbe(sdo_core)
        sdo_core.run()
        assert sdo_probe.peak_mlp >= stt_probe.peak_mlp * 0.5

    def test_observation_does_not_change_timing(self):
        plain = fresh_core()
        plain_cycles = plain.run().cycles
        observed = fresh_core()
        MlpProbe(observed)
        assert observed.run().cycles == plain_cycles
