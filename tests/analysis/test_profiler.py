"""Tests for the wall-time phase profiler and its stats surfacing."""

from repro.analysis import PhaseProfiler
from repro.sim.api import Instrumentation, RunRequest, execute
from repro.sim.configs import config_by_name
from repro.workloads import make_indirect_stream


def tiny_request(instrumentation=None):
    workload = make_indirect_stream(
        "profile_kernel", table_words=128, iterations=20, seed=7
    )
    return RunRequest(
        workload=workload,
        config=config_by_name("Unsafe"),
        instrumentation=instrumentation,
    )


class TestPhaseProfiler:
    def test_accumulates_across_reentry(self):
        profiler = PhaseProfiler()
        with profiler.phase("a"):
            pass
        first = profiler.phase_seconds["a"]
        with profiler.phase("a"):
            pass
        assert profiler.phase_seconds["a"] >= first
        assert profiler.total_seconds == sum(profiler.phase_seconds.values())

    def test_records_time_even_when_body_raises(self):
        profiler = PhaseProfiler()
        try:
            with profiler.phase("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert "boom" in profiler.phase_seconds

    def test_as_stats_shape(self):
        profiler = PhaseProfiler()
        with profiler.phase("simulate"):
            sum(range(1000))
        stats = profiler.as_stats(cycles=5000, instructions=4000)
        assert "profile.simulate_s" in stats
        assert stats["profile.total_s"] >= stats["profile.simulate_s"] - 1e-9
        assert stats["profile.kcycles_per_sec"] > 0
        assert stats["profile.kinstr_per_sec"] > 0


class TestProfiledExecute:
    def test_profile_stats_merged(self):
        metrics = execute(tiny_request(Instrumentation(profile=True)))
        for phase in ("build", "warm", "simulate"):
            assert f"profile.{phase}_s" in metrics.stats
        assert metrics.stats["profile.kcycles_per_sec"] > 0

    def test_profiling_does_not_change_simulated_outcome(self):
        plain = execute(tiny_request())
        profiled = execute(tiny_request(Instrumentation(profile=True)))
        assert profiled.cycles == plain.cycles
        assert profiled.instructions == plain.instructions
        semantic = {
            k: v for k, v in profiled.stats.items() if not k.startswith("profile.")
        }
        assert semantic == plain.stats
