"""Behavioural tests for STT+SDO on the live pipeline: Obl-Ld issue,
fail->squash->re-issue, validation/exposure, DRAM delay fallback, Obl-FP."""

import pytest

from repro.common.config import AttackModel, MachineConfig, MemLevel
from repro.core import SdoProtection
from repro.core.predictors import PerfectPredictor, StaticPredictor, HybridPredictor
from repro.isa import assemble
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.core import Core


def build(source, memory, predictor, model=AttackModel.SPECTRE, warm=(), fp=True):
    program = assemble(source, memory)
    protection = SdoProtection(predictor, attack_model=model, fp_transmitters=fp)
    hierarchy = MemoryHierarchy(MachineConfig())
    core = Core(program, protection=protection, hierarchy=hierarchy)
    if warm:
        hierarchy.warm(warm)
    return core, protection


#: Slow-branch + tainted-table-load kernel; table L2-resident after warming.
def kernel(iterations=25, table_base=1 << 20, table_bytes=128 * 1024):
    """Table is 128KB (larger than the 32KB L1), so warmed lines live in the
    L2 except for the most recently warmed tail."""
    source = f"""
        li r1, 0
        li r2, {iterations}
        li r6, 64
        li r7, 1000000
        li r13, {table_bytes - 8}
    loop:
        mul r8, r1, r6
        load r5, r8, 65536000   ; slow, cold condition load
        bge r5, r7, skip        ; long unresolved window
        load r3, r8, 4096       ; clean-address access, output tainted
        and r9, r3, r13
        load r4, r9, {table_base}  ; TAINTED address -> Obl-Ld
        add r10, r10, r4
    skip:
        addi r1, r1, 1
        blt r1, r2, loop
        store r10, r0, 9000
        halt
    """
    # Pointer values scatter across the whole table (8-aligned).
    memory = {4096 + 64 * i: (i * 52379) % table_bytes & ~7 for i in range(iterations)}
    for i in range(0, table_bytes, 8):
        memory[table_base + i] = i
    warm = [table_base + i for i in range(0, table_bytes, 64)]
    warm += [4096 + 64 * i for i in range(iterations)]
    return source, memory, warm


class TestOblLdIssue:
    def test_tainted_loads_go_oblivious(self):
        source, memory, warm = kernel()
        core, protection = build(source, memory, StaticPredictor(MemLevel.L2), warm=warm)
        result = core.run()
        assert result.stats["core.obl_issued"] > 0
        assert result.stats.get("core.load_delay_cycles", 0) == 0

    def test_architectural_correctness_under_sdo(self):
        """The golden check stays on: whatever SDO does microarchitecturally,
        committed state is exact."""
        source, memory, warm = kernel()
        for predictor in (StaticPredictor(MemLevel.L1), HybridPredictor(), PerfectPredictor()):
            core, _ = build(source, memory, predictor, warm=warm)
            core.run()
            assert core.halted

    def test_obl_loads_do_not_warm_the_cache(self):
        source, memory, warm = kernel()
        core, _ = build(source, memory, StaticPredictor(MemLevel.L2), warm=warm)
        # The table region stays only as warm as warming + validations make
        # it; obl lookups themselves never fill L1.
        lines_before = len(core.hierarchy.l1.array.resident_lines())
        core.run()
        assert core.halted  # (fills only via validations/exposures/normal)


class TestFailAndReissue:
    def test_wrong_static_prediction_squashes(self):
        """L2-resident data with a Static L1 predictor: every Obl-Ld fails
        and squash-reissues once safe (Section V-C2 Case 1)."""
        source, memory, warm = kernel()
        # Evict table from L1 by construction: warm fills L1 with the last
        # lines only; use L1-static prediction against L2-resident lines.
        core, _ = build(source, memory, StaticPredictor(MemLevel.L1), warm=warm)
        result = core.run()
        assert result.stats.get("core.obl_fail_squashes", 0) > 0

    def test_perfect_never_fail_squashes(self):
        source, memory, warm = kernel()
        core, _ = build(source, memory, PerfectPredictor(), warm=warm)
        result = core.run()
        assert result.stats.get("core.obl_fail_squashes", 0) == 0

    def test_dram_prediction_reverts_to_delay(self):
        """Perfect predictor on uncached data predicts DRAM -> the load is
        delayed (Section VI-B2), not squashed."""
        source, memory, _ = kernel()
        core, _ = build(source, memory, PerfectPredictor(), warm=[])  # cold table
        result = core.run()
        assert result.stats.get("core.load_delay_cycles", 0) > 0
        assert result.stats.get("core.obl_fail_squashes", 0) == 0
        assert result.stats.get("stt.sdo.dram_delays", 0) > 0


class TestValidationExposure:
    def test_non_l1_successes_validate_or_expose(self):
        source, memory, warm = kernel()
        core, _ = build(source, memory, StaticPredictor(MemLevel.L2), warm=warm)
        result = core.run()
        covered = result.stats.get("core.validations_issued", 0) + result.stats.get(
            "core.exposures_issued", 0
        )
        assert covered > 0

    def test_predictor_trains_at_safe_points(self):
        source, memory, warm = kernel()
        core, protection = build(source, memory, HybridPredictor(), warm=warm)
        result = core.run()
        assert result.stats.get("stt.sdo.updates", 0) > 0
        assert result.stats["stt.sdo.updates"] <= result.stats["stt.sdo.predictions"]


class TestOblFp:
    FP_KERNEL = """
        li r1, 0
        li r2, 15
        li r6, 64
        li r7, 1000000
        fli f1, 1.5
    loop:
        mul r8, r1, r6
        load r5, r8, 65536000   ; slow condition load
        bge r5, r7, skip
        fload f0, r8, 4096      ; clean address, under the branch
        fmul f2, f0, f1         ; tainted-at-ready -> Obl-FP predicts fast
        fadd f3, f3, f2
    skip:
        addi r1, r1, 1
        blt r1, r2, loop
        fstore f3, r0, 9000
        halt
    """

    def _memory(self, subnormal_at=()):
        memory = {}
        for i in range(15):
            value = 1e-40 if i in subnormal_at else 1.5
            memory[4096 + 64 * i] = value
        return memory

    def test_fast_prediction_avoids_delay(self):
        core, _ = build(self.FP_KERNEL, self._memory(), HybridPredictor(),
                        warm=[4096 + 64 * i for i in range(15)])
        result = core.run()
        assert result.stats.get("core.fp_predicted_fast", 0) > 0
        assert result.stats.get("core.fp_delay_cycles", 0) == 0

    def test_subnormal_operand_fail_squashes(self):
        core, _ = build(self.FP_KERNEL, self._memory(subnormal_at=(5, 9)),
                        HybridPredictor(), warm=[4096 + 64 * i for i in range(15)])
        result = core.run()
        assert result.stats.get("core.fp_subnormal_mispredicts", 0) > 0
        assert result.stats.get("core.fp_fail_squashes", 0) > 0
        assert core.halted  # and still architecturally exact

    def test_fp_disabled_passes_through(self):
        core, _ = build(self.FP_KERNEL, self._memory(), HybridPredictor(),
                        warm=[4096 + 64 * i for i in range(15)], fp=False)
        result = core.run()
        assert result.stats.get("core.fp_predicted_fast", 0) == 0


class TestAttackModels:
    @pytest.mark.parametrize("model", [AttackModel.SPECTRE, AttackModel.FUTURISTIC])
    def test_both_models_run_exact(self, model):
        source, memory, warm = kernel()
        core, _ = build(source, memory, HybridPredictor(), model=model, warm=warm)
        core.run()
        assert core.halted

    def test_futuristic_is_not_faster(self):
        source, memory, warm = kernel()
        spectre_core, _ = build(source, memory, StaticPredictor(MemLevel.L2), warm=warm)
        spectre = spectre_core.run()
        futuristic_core, _ = build(
            source, memory, StaticPredictor(MemLevel.L2),
            model=AttackModel.FUTURISTIC, warm=warm,
        )
        futuristic = futuristic_core.run()
        assert futuristic.cycles >= spectre.cycles * 0.95
