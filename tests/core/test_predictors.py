"""Tests for the location predictors (Section V-D)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.config import MemLevel, PredictorKind
from repro.core.predictors import (
    GreedyPredictor,
    HybridPredictor,
    LoopPredictor,
    PerfectPredictor,
    StaticPredictor,
    make_predictor,
)

L1, L2, L3, DRAM = MemLevel.L1, MemLevel.L2, MemLevel.L3, MemLevel.DRAM


class TestStatic:
    def test_constant_prediction(self):
        predictor = StaticPredictor(L2)
        for pc in (0, 5, 99):
            assert predictor.predict(pc) is L2
        predictor.update(0, L3)
        assert predictor.predict(0) is L2

    def test_dram_static_rejected(self):
        with pytest.raises(ValueError, match="DRAM"):
            StaticPredictor(DRAM)


class TestGreedy:
    def test_cold_predicts_l1(self):
        assert GreedyPredictor().predict(7) is L1

    def test_predicts_deepest_in_window(self):
        """Pattern 1: coarse-grained level changes; greedy favours
        imprecision over inaccuracy."""
        predictor = GreedyPredictor(window=4)
        for level in (L1, L3, L1, L1):
            predictor.update(7, level)
        assert predictor.predict(7) is L3
        for _ in range(4):  # L3 ages out of the window
            predictor.update(7, L1)
        assert predictor.predict(7) is L1

    def test_per_pc_isolation(self):
        predictor = GreedyPredictor()
        predictor.update(1, L3)
        assert predictor.predict(2) is L1

    def test_can_predict_dram(self):
        predictor = GreedyPredictor()
        predictor.update(1, DRAM)
        assert predictor.predict(1) is DRAM  # -> protection turns into delay

    def test_window_validation(self):
        with pytest.raises(ValueError):
            GreedyPredictor(window=0)


class TestLoop:
    def test_learns_periodic_misses(self):
        """Pattern 2: one L2 access every N L1 hits (stride streaming)."""
        predictor = LoopPredictor()
        # Train: period of 4 (3x L1 then L2), twice to gain confidence.
        for _ in range(3):
            for _ in range(3):
                predictor.update(9, L1)
            predictor.update(9, L2)
        # Now predict through one period.
        predictions = []
        for step in range(4):
            predictions.append(predictor.predict(9))
            predictor.update(9, L1 if step < 3 else L2)
        assert predictions[:3] == [L1, L1, L1]
        assert predictions[3] is L2

    def test_unstable_interval_stays_l1(self):
        predictor = LoopPredictor()
        for interval in (2, 5, 3, 7):
            for _ in range(interval - 1):
                predictor.update(9, L1)
            predictor.update(9, L2)
        assert predictor.predict(9) is L1  # never two equal intervals

    def test_cold_predicts_l1(self):
        assert LoopPredictor().predict(42) is L1


class TestHybrid:
    def test_chooser_moves_toward_loop_on_periodic_pattern(self):
        predictor = HybridPredictor()
        pc = 16
        correct = 0
        total = 0
        # Long periodic pattern: loop component should win the chooser.
        for round_index in range(25):
            for step in range(4):
                actual = L1 if step < 3 else L2
                predicted = predictor.predict(pc)
                predictor.update(pc, actual)
                if round_index >= 15:
                    total += 1
                    correct += predicted is actual
        assert correct / total > 0.7

    def test_chooser_moves_toward_greedy_on_coarse_pattern(self):
        predictor = HybridPredictor()
        pc = 17
        for _ in range(30):
            predictor.update(pc, L3)
        assert predictor.predict(pc) is L3

    def test_score_ordering(self):
        assert HybridPredictor._score(L2, L2) == 2  # precise
        assert HybridPredictor._score(L3, L2) == 1  # accurate, imprecise
        assert HybridPredictor._score(L1, L2) == 0  # inaccurate

    def test_entries_power_of_two(self):
        with pytest.raises(ValueError):
            HybridPredictor(entries=1000)

    @given(st.lists(st.sampled_from([L1, L2, L3, DRAM]), max_size=200))
    def test_never_crashes_predictions_valid(self, levels):
        predictor = HybridPredictor()
        for level in levels:
            prediction = predictor.predict(3)
            assert prediction in (L1, L2, L3, DRAM)
            predictor.update(3, level)


class TestPerfect:
    def test_passes_through_oracle(self):
        predictor = PerfectPredictor()
        assert predictor.predict(0, oracle_hint=L3) is L3
        assert predictor.predict(0, oracle_hint=DRAM) is DRAM

    def test_requires_hint(self):
        with pytest.raises(ValueError):
            PerfectPredictor().predict(0)


class TestFactory:
    @pytest.mark.parametrize(
        "kind,expected",
        [
            (PredictorKind.STATIC_L1, StaticPredictor),
            (PredictorKind.STATIC_L2, StaticPredictor),
            (PredictorKind.STATIC_L3, StaticPredictor),
            (PredictorKind.HYBRID, HybridPredictor),
            (PredictorKind.PERFECT, PerfectPredictor),
        ],
    )
    def test_kinds(self, kind, expected):
        assert isinstance(make_predictor(kind), expected)

    def test_statics_point_at_their_level(self):
        assert make_predictor(PredictorKind.STATIC_L3).level is L3
