"""Tests for the generic SDO framework (Section IV) via the FP example."""

import pytest
from hypothesis import given, strategies as st

from repro.core.sdo import (
    DOVariant,
    ResourceSignature,
    SdoOperation,
    StaticDOPredictor,
)
from repro.isa.instructions import is_subnormal

FAST_FP = ResourceSignature(latency=4, resources=("fp_unit",))


def reference_square(x: float) -> float:
    return x * x


class FastSquare(DOVariant[float, float]):
    """The 'normal operands' DO variant of the paper's FP example: succeeds
    only when the input (and output) stay on the fast hardware path."""

    def __init__(self) -> None:
        super().__init__("fast-square", FAST_FP)

    def _compute(self, args: float) -> tuple[bool, float | None]:
        result = args * args
        if is_subnormal(args) or is_subnormal(result):
            return False, None
        return True, result


class TestDOVariant:
    def test_success_returns_correct_result(self):
        outcome = FastSquare().execute(3.0)
        assert outcome.success
        assert outcome.presult == 9.0

    def test_fail_returns_undefined(self):
        """Definition 1: on fail, presult is undefined (None here)."""
        outcome = FastSquare().execute(1e-40)
        assert not outcome.success
        assert outcome.presult is None

    def test_resource_signature_is_operand_independent(self):
        """Definition 2, by construction: every execution reports the
        declared signature regardless of operands."""
        normal = FastSquare().execute(2.0)
        subnormal = FastSquare().execute(1e-40)
        assert normal.latency == subnormal.latency == 4
        assert normal.resources == subnormal.resources == ("fp_unit",)

    @given(st.floats(allow_nan=False, allow_infinity=False, width=64))
    def test_definition1_functional_correctness(self, x):
        """For all args: success implies presult == f(args)."""
        outcome = FastSquare().execute(x)
        if outcome.success:
            assert outcome.presult == reference_square(x)

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_definition2_constant_signature(self, x):
        outcome = FastSquare().execute(x)
        assert (outcome.latency, outcome.resources) == (4, ("fp_unit",))


class TestStaticDOPredictor:
    def test_always_predicts_the_same_index(self):
        predictor = StaticDOPredictor(0)
        assert all(predictor.predict(pc) == 0 for pc in range(10))

    def test_update_is_a_noop(self):
        predictor = StaticDOPredictor(0)
        predictor.update(5, 0)
        assert predictor.predict(5) == 0


class TestSdoOperation:
    def make_op(self):
        return SdoOperation(reference_square, [FastSquare()], StaticDOPredictor(0))

    def test_issue_forwards_unconditionally(self):
        """Part 1 of Figure 2: the (possibly wrong) presult is forwarded."""
        op = self.make_op()
        issued = op.issue(pc=100, args=1e-40)
        assert issued.presult is None  # fail forwarded as undefined
        issued_ok = op.issue(pc=100, args=2.0)
        assert issued_ok.presult == 4.0

    def test_resolve_success_trains_and_keeps_result(self):
        op = self.make_op()
        issued = op.issue(100, 2.0)
        outcome = op.resolve(100, 2.0, issued)
        assert not outcome.squash
        assert outcome.result == 4.0
        assert op.fails == 0

    def test_resolve_fail_demands_squash_with_correct_result(self):
        """Part 2, lines 13-16: squash, return f(args)."""
        op = self.make_op()
        issued = op.issue(100, 1e-40)
        outcome = op.resolve(100, 1e-40, issued)
        assert outcome.squash
        assert outcome.result == reference_square(1e-40)
        assert op.fails == 1

    def test_no_variants_rejected(self):
        with pytest.raises(ValueError):
            SdoOperation(reference_square, [], StaticDOPredictor(0))

    def test_out_of_range_prediction_rejected(self):
        op = SdoOperation(reference_square, [FastSquare()], StaticDOPredictor(7))
        with pytest.raises(IndexError):
            op.issue(0, 1.0)

    @given(st.floats(min_value=-1e10, max_value=1e10, allow_nan=False))
    def test_end_to_end_always_yields_correct_value(self, x):
        """The construction's net effect: after resolve, the consumer always
        holds f(args), whether via success-forwarding or squash-recompute."""
        op = self.make_op()
        issued = op.issue(0, x)
        outcome = op.resolve(0, x, issued)
        assert outcome.result == reference_square(x)

    def test_issue_counter(self):
        op = self.make_op()
        for x in (1.0, 2.0, 3.0):
            op.issue(0, x)
        assert op.issues == 3


class TestMultiVariantOperation:
    """An N=2 operation whose predictor learns which variant succeeds."""

    class SmallInput(DOVariant[int, int]):
        def __init__(self):
            super().__init__("small", ResourceSignature(latency=1))

        def _compute(self, args):
            return (args < 100, args + 1 if args < 100 else None)

    class AnyInput(DOVariant[int, int]):
        def __init__(self):
            super().__init__("any", ResourceSignature(latency=10))

        def _compute(self, args):
            return True, args + 1

    class CountingPredictor(StaticDOPredictor):
        def __init__(self):
            super().__init__(0)
            self.history = []

        def predict(self, inp):
            return self.index

        def update(self, inp, actual_index):
            self.history.append(actual_index)
            self.index = actual_index

    def test_predictor_learns_from_fails(self):
        predictor = self.CountingPredictor()
        op = SdoOperation(
            lambda x: x + 1, [self.SmallInput(), self.AnyInput()], predictor
        )
        issued = op.issue(0, 500)  # variant 0 fails on large input
        outcome = op.resolve(0, 500, issued)
        assert outcome.squash
        assert predictor.index == 1  # trained toward the succeeding variant
        issued = op.issue(0, 500)
        outcome = op.resolve(0, 500, issued)
        assert not outcome.squash
