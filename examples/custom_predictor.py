#!/usr/bin/env python
"""Extending SDO: plug a custom location predictor into the framework.

Section V-D: "The goal of this paper is to show the SDO framework is
viable, not to invent a state-of-the-art predictor."  This example does
what a follow-up paper would: implements a new predictor against the
:class:`~repro.core.predictors.LocationPredictor` interface — a two-level
predictor that keys on (PC, last-observed level) — and races it against the
paper's Static/Hybrid/Perfect predictors on a workload whose loads
alternate between L1 and L2 residence.

Run:  python examples/custom_predictor.py
"""

from repro.common import AttackModel, MemLevel
from repro.core import SdoProtection
from repro.core.predictors import (
    HybridPredictor,
    LocationPredictor,
    PerfectPredictor,
    StaticPredictor,
)
from repro.eval import render_table
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.core import Core
from repro.common.config import MachineConfig, ProtectionConfig, ProtectionKind, PredictorKind
from repro.workloads import make_indirect_stream


class TwoLevelPredictor(LocationPredictor):
    """Predicts from a (PC, previous level) Markov table.

    Captures alternating patterns (L1, L2, L1, L2, ...) that the greedy
    component smears and the loop component only sees as period 2.
    """

    name = "TwoLevel"

    def __init__(self) -> None:
        self._last: dict[int, MemLevel] = {}
        self._table: dict[tuple[int, MemLevel], MemLevel] = {}

    def predict(self, pc: int, oracle_hint: MemLevel | None = None) -> MemLevel:
        last = self._last.get(pc, MemLevel.L1)
        return self._table.get((pc, last), MemLevel.L1)

    def update(self, pc: int, actual: MemLevel) -> None:
        last = self._last.get(pc, MemLevel.L1)
        self._table[(pc, last)] = actual
        self._last[pc] = actual


def run_with(predictor: LocationPredictor, workload) -> tuple[float, float, float]:
    machine = MachineConfig().with_protection(
        ProtectionConfig(
            kind=ProtectionKind.STT_SDO,
            predictor=PredictorKind.HYBRID,  # label only; we inject our own
            fp_transmitters=True,
        )
    )
    protection = SdoProtection(predictor, attack_model=AttackModel.SPECTRE)
    hierarchy = MemoryHierarchy(machine)
    core = Core(workload.program, config=machine, protection=protection, hierarchy=hierarchy)
    hierarchy.warm(workload.warm_addresses)
    result = core.run()
    return result.cycles, protection.precision, protection.accuracy


def main() -> None:
    workload = make_indirect_stream(
        "alternating",
        table_words=16 * 1024,  # L2-resident overall; hot subset in L1
        iterations=500,
        seed=3,
    )
    rows = []
    for predictor in (
        StaticPredictor(MemLevel.L1),
        StaticPredictor(MemLevel.L2),
        HybridPredictor(),
        TwoLevelPredictor(),
        PerfectPredictor(),
    ):
        cycles, precision, accuracy = run_with(predictor, workload)
        rows.append([predictor.name, cycles, f"{precision:.1%}", f"{accuracy:.1%}"])
    print(render_table(["predictor", "cycles", "precision", "accuracy"], rows,
                       title="Custom predictor vs the paper's predictors"))
    print("Any LocationPredictor subclass drops straight into SdoProtection;")
    print("predict() sees only the PC — never the address — so the framework's")
    print("security argument (Claim 1) holds for custom predictors too.")


if __name__ == "__main__":
    main()
