#!/usr/bin/env python
"""Quickstart: assemble a kernel, run it under three protection schemes.

This is the 5-minute tour of the library:

1. write a small program in the micro-ISA,
2. run it on the out-of-order core with no protection (Unsafe),
3. run it under STT (tainted loads delayed),
4. run it under STT+SDO with the Hybrid location predictor,
5. compare cycles and see where the overhead went.

Run:  python examples/quickstart.py
"""

from repro.common import AttackModel
from repro.isa import assemble
from repro.sim import Session
from repro.workloads import Workload


def build_workload() -> Workload:
    """A toy 'hash join': probe a table with loaded keys, branch on values.

    The probe load's address depends on loaded data, so it is tainted
    whenever an older branch is unresolved — exactly the load STT delays
    and SDO executes obliviously.
    """
    import random

    rng = random.Random(42)
    table_base, index_base = 1 << 20, 1 << 24
    table_words = 8192  # 64KB: L2-resident
    iterations = 400
    memory = {}
    for i in range(table_words):
        memory[table_base + 8 * i] = rng.randrange(1000)
    for i in range(iterations):
        memory[index_base + 8 * i] = rng.randrange(table_words)

    program = assemble(
        f"""
            li r1, 0
            li r2, {iterations}
            li r7, 300
            li r12, 3
        loop:
            shl r9, r1, r12
            load r5, r9, {index_base}    ; key index (strided)
            shl r10, r5, r12
            load r6, r10, {table_base}   ; table probe (tainted under branches)
            blt r6, r7, small
            add r3, r3, r6
            jmp next
        small:
            sub r3, r3, r6
        next:
            addi r1, r1, 1
            blt r1, r2, loop
            store r3, r0, {1 << 28}
            halt
        """,
        memory,
        name="quickstart",
    )
    warm = tuple(table_base + 8 * i for i in range(0, table_words, 8))
    warm += tuple(index_base + 8 * i for i in range(0, iterations, 8))
    return Workload("quickstart", program, warm_addresses=warm)


def main() -> None:
    workload = build_workload()
    print(f"workload: {workload.name} ({workload.static_instructions} static instructions)\n")

    # The session owns the engine and the on-disk result cache: run this
    # script twice and the second pass completes from .repro-cache/.
    session = Session()
    baseline = None
    for config_name in ("Unsafe", "STT{ld}", "Hybrid", "Perfect"):
        metrics = session.run(workload, config_name, AttackModel.SPECTRE)
        if baseline is None:
            baseline = metrics
        normalized = metrics.normalized_to(baseline)
        line = (
            f"{config_name:10s}  cycles={metrics.cycles:7d}  IPC={metrics.ipc:5.2f}  "
            f"normalized={normalized:5.3f}"
        )
        if config_name == "STT{ld}":
            line += f"  (load-delay cycles: {metrics.stats.get('core.load_delay_cycles', 0):.0f})"
        if config_name in ("Hybrid", "Perfect"):
            line += (
                f"  (oblivious loads: {metrics.stats.get('core.obl_issued', 0):.0f}, "
                f"predictor precision: {metrics.predictor_precision:.0%})"
            )
        print(line)

    print(
        "\nSTT pays for delaying tainted loads; SDO recovers most of it by"
        "\nexecuting them data-obliviously at the predicted cache level."
    )


if __name__ == "__main__":
    main()
