#!/usr/bin/env python
"""Anatomy of STT's overhead — and how SDO removes it.

Uses the analysis instruments (`repro.analysis`) to show *why* the Figure 6
numbers happen, on one kernel:

1. the taint-window distribution (how long tainted loads would have to
   wait under STT),
2. memory-level parallelism under Unsafe vs STT vs STT+SDO (the overlap
   STT's delays destroy and SDO restores),
3. a pipeline diagram of the same loop iteration under each scheme.

Run:  python examples/anatomy_of_overhead.py
"""

from repro.analysis import MlpProbe, PipelineTimeline, TaintWindowProbe
from repro.common import AttackModel, MachineConfig
from repro.core import SdoProtection, make_predictor
from repro.common.config import PredictorKind
from repro.isa import assemble
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.core import Core
from repro.stt import SttProtection

import random

rng = random.Random(1)
TABLE = 1 << 20
ITERS = 120
MEMORY = {}
for i in range(ITERS * 3):
    MEMORY[4096 + 8 * i] = rng.randrange(16 * 1024) * 8
for i in range(0, 16 * 1024 * 8, 8):
    MEMORY[TABLE + i] = rng.randrange(1000)

SOURCE = f"""
    li r1, 0
    li r2, {ITERS}
    li r7, 150
    li r12, 3
loop:
    shl r9, r1, r12
    load r5, r9, 4096          ; index (strided)
    load r6, r5, {TABLE}       ; indirect table load (tainted under branches)
    blt r6, r7, taken
    add r3, r3, r6
    jmp merge
taken:
    sub r3, r3, r6
merge:
    addi r1, r1, 1
    blt r1, r2, loop
    store r3, r0, 9000
    halt
"""

WARM = [TABLE + i for i in range(0, 16 * 1024 * 8, 64)] + [
    4096 + 8 * i for i in range(0, ITERS * 3, 8)
]


def build(protection):
    hierarchy = MemoryHierarchy(MachineConfig())
    core = Core(assemble(SOURCE, MEMORY), protection=protection, hierarchy=hierarchy)
    hierarchy.warm(WARM)
    return core


def main() -> None:
    schemes = {
        "Unsafe": None,
        "STT{ld}": SttProtection(AttackModel.SPECTRE),
        "STT+SDO (Hybrid)": SdoProtection(
            make_predictor(PredictorKind.HYBRID), AttackModel.SPECTRE,
            fp_transmitters=True,
        ),
    }
    print(f"{'scheme':18s} {'cycles':>7s} {'mean MLP':>9s} {'peak':>5s} "
          f"{'taint windows (mean/p90)':>26s}")
    timelines = {}
    for name, protection in schemes.items():
        core = build(protection)
        mlp = MlpProbe(core)
        windows = TaintWindowProbe(core) if protection else None
        timeline = PipelineTimeline(core)
        result = core.run()
        timelines[name] = timeline
        if windows and windows.windows.count:
            window_text = f"{windows.mean_window:8.1f} / {windows.percentile(0.9):4d}"
        else:
            window_text = "        - /    -"
        print(f"{name:18s} {result.cycles:7d} {mlp.mean_mlp:9.2f} "
              f"{mlp.peak_mlp:5d} {window_text:>26s}")

    print("\nPipeline diagram: one window of the loop under STT+SDO")
    print("(F fetch, D dispatch, I issue, C complete, R retire; O = Obl-Ld)\n")
    print(timelines["STT+SDO (Hybrid)"].render(first=40, count=14, width=60))
    print(
        "\nReading: STT's taint windows are dead time for every tainted load;"
        "\nSDO issues those loads obliviously inside the window, so the miss"
        "\noverlap (MLP) returns to the insecure baseline's level."
    )


if __name__ == "__main__":
    main()
