#!/usr/bin/env python
"""Penetration testing (paper, Section VIII-A).

Runs the Spectre V1 bounds-check-bypass attack against every evaluated
design variant, in both attack models, and reports what the flush+reload
receiver recovered.  The Unsafe baseline leaks the secret; STT and every
STT+SDO variant block it.

Run:  python examples/spectre_v1_attack.py
"""

from repro.common import AttackModel
from repro.eval import render_table
from repro.security import run_spectre_v1
from repro.sim import EVALUATED_CONFIGS


def main() -> None:
    secret = 11
    rows = []
    for config in EVALUATED_CONFIGS:
        row = [config.name]
        for model in (AttackModel.SPECTRE, AttackModel.FUTURISTIC):
            result = run_spectre_v1(config, model, secret=secret)
            row.append(
                f"LEAKED ({result.recovered})" if result.leaked else "blocked"
            )
        rows.append(row)
    print(f"Spectre V1, secret value = {secret}\n")
    print(render_table(["Configuration", "Spectre model", "Futuristic model"], rows))
    print(
        "The insecure machine transmits the out-of-bounds value over the\n"
        "cache covert channel; STT delays the transmitter until the bounds\n"
        "check resolves, and SDO executes it with no address-dependent\n"
        "resource usage — either way, the receiver learns nothing."
    )


if __name__ == "__main__":
    main()
