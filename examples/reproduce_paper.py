#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation.

Runs the full sweep — every Table II design variant, both attack models,
the whole workload suite — through the parallel, cache-aware sweep engine,
then renders Figure 6 (normalized execution time), Figure 7 (overhead
breakdown), Figure 8 (squashes vs time), Table I, Table II and Table III,
and writes CSVs next to the text output.

Run:  python examples/reproduce_paper.py [--quick] [--jobs N] [--out DIR]

``--quick`` scales workload iteration counts down ~4x (minutes instead of
tens of minutes); the shapes survive, the exact numbers move a little.
``--jobs N`` fans the runs out over N worker processes.  Results are cached
under ``.repro-cache/`` keyed by their full inputs, so a re-run (or a
different figure over the same sweep) completes from cache; pass
``--no-cache`` to re-simulate, and ``--events FILE`` to capture the
machine-readable run-lifecycle log.
"""

import argparse
import pathlib
import sys
import time

from repro.common import AttackModel
from repro.eval import build_figure6, build_figure7, build_figure8, to_csv
from repro.eval.tables import render_table1, render_table2, render_table3, table3_rows
from repro.sim import (
    SDO_CONFIG_NAMES,
    CachePolicy,
    ExecutionPolicy,
    JsonlEventLog,
    ProgressLine,
    Session,
)
from repro.workloads import suite


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="~4x smaller workloads")
    parser.add_argument("--out", default="results", help="output directory for CSVs")
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write .repro-cache/")
    parser.add_argument("--events", default=None, metavar="FILE",
                        help="write a JSONL run-lifecycle event log")
    args = parser.parse_args(argv)

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    workloads = suite(scale=0.25 if args.quick else 1.0)

    observers = [ProgressLine()]
    event_log = JsonlEventLog(args.events) if args.events else None
    if event_log is not None:
        observers.append(event_log)
    session = Session(
        execution=ExecutionPolicy(jobs=args.jobs),
        cache=CachePolicy(enabled=not args.no_cache),
        observers=observers,
    )

    started = time.time()
    try:
        results = session.sweep(workloads)
    finally:
        if event_log is not None:
            event_log.close()
    print(f"sweep finished in {time.time() - started:.0f}s\n")

    print(render_table1())
    print(render_table2())

    figure6 = build_figure6(results)
    for model in (AttackModel.SPECTRE, AttackModel.FUTURISTIC):
        print(figure6.render(model))
        for config in ("Hybrid", "Static L2", "Perfect"):
            for baseline in ("STT{ld}", "STT{ld+fp}"):
                improvement = figure6.improvement_over(model, config, baseline)
                print(
                    f"  {config} improves {baseline} by {improvement:.1%} "
                    f"({model.value})"
                )
        print()
        csv_rows = [
            [workload] + [figure6.data[model][config][workload] for config in figure6.configs]
            for workload in figure6.workloads
        ]
        (out_dir / f"figure6_{model.value}.csv").write_text(
            to_csv(["benchmark"] + list(figure6.configs), csv_rows)
        )

    figure7 = build_figure7(results, configs=SDO_CONFIG_NAMES)
    for model in (AttackModel.SPECTRE, AttackModel.FUTURISTIC):
        print(figure7.render(model))

    figure8 = build_figure8(results, SDO_CONFIG_NAMES)
    for model in (AttackModel.SPECTRE, AttackModel.FUTURISTIC):
        print(figure8.render(model))
        print(
            f"  squashes-vs-time correlation (excl. Static L3): "
            f"{figure8.correlation(model):.2f}\n"
        )

    print(render_table3(results))
    (out_dir / "table3.csv").write_text(
        to_csv(
            ["config", "spectre_prec", "spectre_acc", "futuristic_prec", "futuristic_acc"],
            table3_rows(results),
        )
    )
    print(f"CSV artifacts written to {out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
