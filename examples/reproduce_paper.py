#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation.

Runs the full sweep — every Table II design variant, both attack models,
the whole workload suite — then renders Figure 6 (normalized execution
time), Figure 7 (overhead breakdown), Figure 8 (squashes vs time),
Table I, Table II and Table III, and writes CSVs next to the text output.

Run:  python examples/reproduce_paper.py [--quick] [--out DIR]

``--quick`` scales workload iteration counts down ~4x (minutes instead of
tens of minutes); the shapes survive, the exact numbers move a little.
"""

import argparse
import pathlib
import sys
import time

from repro.common import AttackModel
from repro.eval import build_figure6, build_figure7, build_figure8, to_csv
from repro.eval.tables import render_table1, render_table2, render_table3, table3_rows
from repro.sim import EVALUATED_CONFIGS, SDO_CONFIG_NAMES, run_suite
from repro.workloads import suite


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="~4x smaller workloads")
    parser.add_argument("--out", default="results", help="output directory for CSVs")
    args = parser.parse_args(argv)

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    workloads = suite(scale=0.25 if args.quick else 1.0)

    started = time.time()
    total = len(workloads) * len(EVALUATED_CONFIGS) * 2
    done = [0]

    def progress(workload: str, config: str, model: AttackModel) -> None:
        done[0] += 1
        elapsed = time.time() - started
        print(
            f"\r[{done[0]:3d}/{total}] {elapsed:6.0f}s  {model.value:10s} "
            f"{workload:18s} {config:12s}",
            end="",
            flush=True,
        )

    results = run_suite(workloads, progress=progress)
    print(f"\nsweep finished in {time.time() - started:.0f}s\n")

    print(render_table1())
    print(render_table2())

    figure6 = build_figure6(results)
    for model in (AttackModel.SPECTRE, AttackModel.FUTURISTIC):
        print(figure6.render(model))
        for config in ("Hybrid", "Static L2", "Perfect"):
            for baseline in ("STT{ld}", "STT{ld+fp}"):
                improvement = figure6.improvement_over(model, config, baseline)
                print(
                    f"  {config} improves {baseline} by {improvement:.1%} "
                    f"({model.value})"
                )
        print()
        csv_rows = [
            [workload] + [figure6.data[model][config][workload] for config in figure6.configs]
            for workload in figure6.workloads
        ]
        (out_dir / f"figure6_{model.value}.csv").write_text(
            to_csv(["benchmark"] + list(figure6.configs), csv_rows)
        )

    figure7 = build_figure7(results, configs=SDO_CONFIG_NAMES)
    for model in (AttackModel.SPECTRE, AttackModel.FUTURISTIC):
        print(figure7.render(model))

    figure8 = build_figure8(results, SDO_CONFIG_NAMES)
    for model in (AttackModel.SPECTRE, AttackModel.FUTURISTIC):
        print(figure8.render(model))
        print(
            f"  squashes-vs-time correlation (excl. Static L3): "
            f"{figure8.correlation(model):.2f}\n"
        )

    print(render_table3(results))
    (out_dir / "table3.csv").write_text(
        to_csv(
            ["config", "spectre_prec", "spectre_acc", "futuristic_prec", "futuristic_acc"],
            table3_rows(results),
        )
    )
    print(f"CSV artifacts written to {out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
