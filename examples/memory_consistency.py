#!/usr/bin/env python
"""Memory consistency under Obl-Ld: validation, exposure, delayed squash.

Section V-C1: an Obl-Ld may read a line that never enters the core's L1, so
the core would miss the invalidation that normally signals a consistency
violation.  SDO adopts InvisiSpec-style validation/exposure, and — for
security — *delays* consistency squashes until the affected load's address
untaints.

This example runs a load-heavy kernel while an external agent (standing in
for another core's stores) invalidates the lines the victim is reading, and
shows (1) validations/exposures flowing, (2) value-mismatch squashes
repairing TSO, and (3) the committed results still matching the functional
golden model exactly.

Run:  python examples/memory_consistency.py
"""

import random

from repro.common import AttackModel
from repro.common.config import MachineConfig
from repro.core import SdoProtection, make_predictor
from repro.common.config import PredictorKind, ProtectionConfig, ProtectionKind
from repro.isa import assemble
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.core import Core


def main() -> None:
    rng = random.Random(9)
    table_base, index_base = 1 << 20, 1 << 24
    table_words, iterations = 4096, 300
    memory = {}
    for i in range(table_words):
        memory[table_base + 8 * i] = rng.randrange(1000)
    for i in range(iterations):
        memory[index_base + 8 * i] = rng.randrange(table_words)

    program = assemble(
        f"""
            li r1, 0
            li r2, {iterations}
            li r7, 500
            li r12, 3
        loop:
            shl r9, r1, r12
            load r5, r9, {index_base}
            shl r10, r5, r12
            load r6, r10, {table_base}   ; tainted table load -> Obl-Ld
            blt r6, r7, skip
            add r3, r3, r6
        skip:
            addi r1, r1, 1
            blt r1, r2, loop
            store r3, r0, {1 << 28}
            halt
        """,
        memory,
        name="consistency",
    )

    machine = MachineConfig().with_protection(
        ProtectionConfig(
            kind=ProtectionKind.STT_SDO,
            predictor=PredictorKind.HYBRID,
            fp_transmitters=True,
        )
    )
    hierarchy = MemoryHierarchy(machine)
    core = Core(
        program,
        config=machine,
        protection=SdoProtection(make_predictor(PredictorKind.HYBRID), AttackModel.SPECTRE),
        hierarchy=hierarchy,
    )
    hierarchy.warm(
        [table_base + 8 * i for i in range(0, table_words, 8)]
        + [index_base + 8 * i for i in range(0, iterations, 8)]
    )

    # External agent: periodically invalidate a random table line the victim
    # may have speculatively read (a remote core gaining write ownership).
    invalidations = 0
    while not core.halted and core.cycle < 500_000:
        core.step()
        if core.cycle % 40 == 0:
            victim_addr = table_base + 8 * rng.randrange(table_words)
            core.notify_invalidation(victim_addr)
            invalidations += 1

    stats = core.stats
    print(f"committed {stats['instructions']} instructions in {core.cycle} cycles")
    print(f"external invalidations injected:   {invalidations}")
    print(f"loads marked by invalidations:     {stats['consistency_marks']}")
    print(f"validations issued:                {stats['validations_issued']}")
    print(f"exposures issued:                  {stats['exposures_issued']}")
    print(f"value-mismatch squashes:           {stats['validation_mismatch_squashes']}")
    print()
    print("The run completed with the golden-model check enabled: every")
    print("committed value matched the in-order functional interpreter, so")
    print("the validation/exposure machinery preserved TSO semantics even")
    print("while Obl-Lds were reading lines the L1 never saw.")


if __name__ == "__main__":
    main()
