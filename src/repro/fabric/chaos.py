"""Deterministic network fault injection for the fabric.

:class:`ChaosProxy` is a stdlib-only TCP proxy that sits between a fabric
client/worker and the scheduler and applies a seeded, serializable
:class:`ChaosPlan` to every HTTP exchange passing through it::

    plan = ChaosPlan(seed=909, specs={"*": ChaosSpec(drop_request=0.1,
                                                     duplicate=0.1)})
    with ChaosProxy("http://127.0.0.1:8700", plan,
                    ledger=tmp / "faults.jsonl") as proxy:
        session = Session(execution=ExecutionPolicy(fabric=proxy.url))
        ...

Fault classes, chosen per request by a deterministic hash draw over
``(seed, endpoint class, request ordinal)`` — re-running the same traffic
shape against the same plan injects the same faults:

``drop-request``
    The request never reaches the scheduler; the client connection is
    closed cold.  Models a lost packet / dead link on the way in.
``drop-response``
    The request *is* delivered (the scheduler processes it!) but the
    response is thrown away.  The nastiest class for non-idempotent POSTs
    — exactly what idempotency tokens exist for.
``delay``
    The exchange is held for ``delay_seconds`` before forwarding.
``duplicate``
    The request is delivered to the scheduler **twice** (two upstream
    connections, sequentially); the client sees the second response.
    A duplicated ``complete`` must not double-settle a cell.
``truncate``
    The response is cut mid-body (or mid-header) and the connection
    closed — the client's HTTP layer sees ``IncompleteRead``/
    ``BadStatusLine``.  Models a scheduler restart mid-response.
``corrupt``
    Bytes in the response body are flipped; status line and headers stay
    intact, so the client reads a well-framed 200 full of garbage.

Every injected fault is appended to a JSONL **ledger** (`seq`, fault
kind, method, path, endpoint class), so tests can assert exactly which
faults a sweep survived rather than trusting that chaos happened.

The proxy understands just enough HTTP/1.x to frame one request and one
response per connection (both fabric peers send ``Content-Length`` and
use one connection per request), which keeps it ~wire-exact: bytes are
forwarded verbatim, faults act on whole captured exchanges.
"""

from __future__ import annotations

import hashlib
import json
import re
import socket
import threading
import time
from dataclasses import dataclass, fields
from pathlib import Path
from urllib.parse import urlsplit

#: The injectable fault classes, in cumulative-draw order (serialized
#: plans rely on the names, not the order).
FAULT_DROP_REQUEST = "drop-request"
FAULT_DROP_RESPONSE = "drop-response"
FAULT_DELAY = "delay"
FAULT_DUPLICATE = "duplicate"
FAULT_TRUNCATE = "truncate"
FAULT_CORRUPT = "corrupt"
FAULT_KINDS = (
    FAULT_DROP_REQUEST,
    FAULT_DROP_RESPONSE,
    FAULT_DELAY,
    FAULT_DUPLICATE,
    FAULT_TRUNCATE,
    FAULT_CORRUPT,
)

#: Fault-kind → ChaosSpec rate-field name.
_RATE_FIELDS = {
    FAULT_DROP_REQUEST: "drop_request",
    FAULT_DROP_RESPONSE: "drop_response",
    FAULT_DELAY: "delay",
    FAULT_DUPLICATE: "duplicate",
    FAULT_TRUNCATE: "truncate",
    FAULT_CORRUPT: "corrupt",
}

_HEX_SEGMENT = re.compile(r"^[0-9a-f]{16,}$")


def endpoint_class(method: str, path: str) -> str:
    """Collapse a concrete request path to its endpoint class, so plans
    target *kinds* of traffic: ``POST /v1/cells/<key>/complete``,
    ``GET /v1/sweeps/<sweep>/events`` — keys, sweep ids, and query strings
    are wildcarded."""
    path = path.split("?", 1)[0]
    segments = []
    for segment in path.strip("/").split("/"):
        if _HEX_SEGMENT.match(segment):
            segments.append("<key>")
        elif segment.startswith("sweep-"):
            segments.append("<sweep>")
        else:
            segments.append(segment)
    return f"{method} /" + "/".join(segments)


@dataclass(frozen=True)
class ChaosSpec:
    """Fault rates for one endpoint class (or the ``"*"`` catch-all).

    Each rate is the probability mass of that fault per request, drawn
    deterministically; the rates of one spec must sum to <= 1 (the rest is
    the clean-passthrough mass).  ``limit`` caps how many faults this spec
    injects in total — after that the endpoint runs clean, which bounds
    both test wall-clock and the tail risk of a sweep that never finishes.
    """

    drop_request: float = 0.0
    drop_response: float = 0.0
    delay: float = 0.0
    duplicate: float = 0.0
    truncate: float = 0.0
    corrupt: float = 0.0
    delay_seconds: float = 0.02
    limit: int | None = None

    def __post_init__(self) -> None:
        total = 0.0
        for kind, field_name in _RATE_FIELDS.items():
            rate = getattr(self, field_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {rate}")
            total += rate
        if total > 1.0 + 1e-9:
            raise ValueError(f"fault rates sum to {total:g} > 1")
        if self.delay_seconds < 0:
            raise ValueError(f"delay_seconds must be >= 0, got {self.delay_seconds}")
        if self.limit is not None and self.limit < 0:
            raise ValueError(f"limit must be >= 0, got {self.limit}")

    def rates(self) -> list[tuple[str, float]]:
        """``(fault kind, rate)`` pairs in draw order."""
        return [(kind, getattr(self, _RATE_FIELDS[kind])) for kind in FAULT_KINDS]

    def to_dict(self) -> dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "ChaosSpec":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


class ChaosPlan:
    """A seeded, serializable fault schedule.

    ``specs`` maps endpoint classes (see :func:`endpoint_class`) — or the
    catch-all ``"*"`` — to :class:`ChaosSpec`.  The decision for the n-th
    request of an endpoint class is a pure function of
    ``(seed, endpoint, n)``: a SHA-256 draw walked through the spec's
    cumulative rates.  Counters live in the plan instance, so one plan
    object drives one proxy; serializing a plan captures its *schedule*,
    not its progress.
    """

    def __init__(self, seed: int, specs: dict[str, ChaosSpec]) -> None:
        self.seed = int(seed)
        self.specs = dict(specs)
        self._lock = threading.Lock()
        self._ordinals: dict[str, int] = {}
        self._injected: dict[str, int] = {}

    def spec_for(self, endpoint: str) -> ChaosSpec | None:
        return self.specs.get(endpoint, self.specs.get("*"))

    def draw(self, endpoint: str, ordinal: int) -> float:
        """The deterministic uniform draw in ``[0, 1)`` for one request."""
        digest = hashlib.sha256(
            f"{self.seed}:{endpoint}:{ordinal}".encode()
        ).hexdigest()
        return int(digest[:12], 16) / float(16**12)

    def fault_for(self, endpoint: str, ordinal: int) -> str | None:
        """The fault (or None) the plan assigns to the ``ordinal``-th
        request of ``endpoint`` — pure, ignoring ``limit``."""
        spec = self.spec_for(endpoint)
        if spec is None:
            return None
        draw = self.draw(endpoint, ordinal)
        cumulative = 0.0
        for kind, rate in spec.rates():
            cumulative += rate
            if draw < cumulative:
                return kind
        return None

    def decide(self, method: str, path: str) -> tuple[str | None, ChaosSpec | None]:
        """Consume one request slot: returns ``(fault_kind_or_None, spec)``
        honouring the spec's ``limit``."""
        endpoint = endpoint_class(method, path)
        spec = self.spec_for(endpoint)
        if spec is None:
            return None, None
        with self._lock:
            ordinal = self._ordinals.get(endpoint, 0)
            self._ordinals[endpoint] = ordinal + 1
            fault = self.fault_for(endpoint, ordinal)
            if fault is not None:
                if spec.limit is not None and self._injected.get(endpoint, 0) >= spec.limit:
                    return None, spec
                self._injected[endpoint] = self._injected.get(endpoint, 0) + 1
        return fault, spec

    def to_dict(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "specs": {key: spec.to_dict() for key, spec in self.specs.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ChaosPlan":
        return cls(
            seed=payload["seed"],
            specs={
                key: ChaosSpec.from_dict(spec)
                for key, spec in payload["specs"].items()
            },
        )


class _Ledger:
    """Append-only JSONL record of every injected fault."""

    def __init__(self, path: str | Path | None) -> None:
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._seq = 0

    def record(self, fault: str, method: str, path: str, endpoint: str) -> None:
        with self._lock:
            seq = self._seq
            self._seq += 1
            if self.path is None:
                return
            entry = {
                "seq": seq,
                "fault": fault,
                "method": method,
                "path": path,
                "endpoint": endpoint,
            }
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as fh:
                fh.write(json.dumps(entry) + "\n")


def read_ledger(path: str | Path) -> list[dict]:
    """Parse a fault ledger back into records (torn tail skipped)."""
    records = []
    ledger = Path(path)
    if not ledger.exists():
        return records
    for line in ledger.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            continue
    return records


class ChaosProxyError(RuntimeError):
    """The proxy could not frame or forward an exchange."""


def _recv_http_message(sock: socket.socket, already: bytes = b"") -> bytes:
    """Read exactly one HTTP message (head + Content-Length body) from
    ``sock``; returns the raw bytes.  Raises :class:`ChaosProxyError` on a
    connection cut before the message completes."""
    data = bytearray(already)
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        if not chunk:
            raise ChaosProxyError("connection closed before message head")
        data.extend(chunk)
    head, _, rest = bytes(data).partition(b"\r\n\r\n")
    match = re.search(rb"(?im)^content-length:\s*(\d+)\s*$", head)
    body_length = int(match.group(1)) if match else 0
    body = bytearray(rest)
    while len(body) < body_length:
        chunk = sock.recv(65536)
        if not chunk:
            raise ChaosProxyError("connection closed mid-body")
        body.extend(chunk)
    return head + b"\r\n\r\n" + bytes(body[:body_length])


def _request_target(message: bytes) -> tuple[str, str]:
    """``(method, path)`` from a raw HTTP request message."""
    line = message.split(b"\r\n", 1)[0].decode("latin-1")
    parts = line.split(" ")
    if len(parts) < 2:
        raise ChaosProxyError(f"unparseable request line {line!r}")
    return parts[0], parts[1]


def _corrupt_body(message: bytes, seed: int) -> bytes:
    """Flip bytes in the body, leaving the head intact so the client reads
    a well-framed response full of garbage."""
    head, sep, body = message.partition(b"\r\n\r\n")
    if not body:
        return message  # nothing to corrupt; leave headers alone
    mutated = bytearray(body)
    step = max(1, len(mutated) // 8)
    for index in range(seed % step, len(mutated), step):
        mutated[index] ^= 0x5A
    return head + sep + bytes(mutated)


class ChaosProxy:
    """A fault-injecting TCP proxy in front of one upstream fabric URL.

    Start with :meth:`start` (or as a context manager); point clients and
    workers at :attr:`url`.  Each client connection carries one HTTP
    exchange (matching the fabric transport's connection-per-request
    model); each exchange consumes one draw from the plan.
    """

    def __init__(
        self,
        upstream: str,
        plan: ChaosPlan,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        ledger: str | Path | None = None,
        timeout: float = 30.0,
    ) -> None:
        parts = urlsplit(upstream)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(f"upstream must be an http:// URL, got {upstream!r}")
        self.upstream_host = parts.hostname
        self.upstream_port = parts.port or 80
        self.plan = plan
        self.host = host
        self.timeout = timeout
        self.ledger = _Ledger(ledger)
        self._listener: socket.socket | None = None
        self._port = port
        self._accept_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self.stats = {"exchanges": 0, "faults": 0, "proxy_errors": 0}

    # --------------------------------------------------------------- lifecycle

    @property
    def url(self) -> str:
        if self._listener is None:
            raise RuntimeError("proxy not started")
        return f"http://{self.host}:{self._listener.getsockname()[1]}"

    def start(self) -> "ChaosProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._port))
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="chaos-accept"
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # ---------------------------------------------------------------- serving

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve, args=(conn,), daemon=True, name="chaos-conn"
            )
            thread.start()

    def _serve(self, conn: socket.socket) -> None:
        conn.settimeout(self.timeout)
        try:
            self._exchange(conn)
        except (ChaosProxyError, OSError):
            self.stats["proxy_errors"] += 1
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _exchange(self, conn: socket.socket) -> None:
        request = _recv_http_message(conn)
        method, path = _request_target(request)
        self.stats["exchanges"] += 1
        fault, spec = self.plan.decide(method, path)
        if fault is not None:
            self.stats["faults"] += 1
            self.ledger.record(fault, method, path, endpoint_class(method, path))
        if fault == FAULT_DROP_REQUEST:
            return  # never forwarded; client sees a cut connection
        if fault == FAULT_DELAY:
            time.sleep(spec.delay_seconds)
        response = self._forward(request)
        if fault == FAULT_DUPLICATE:
            # Second delivery of the same request; the client sees the
            # second response (both were processed upstream).
            response = self._forward(request)
        if fault == FAULT_DROP_RESPONSE:
            return  # processed upstream, but the client never learns
        if fault == FAULT_TRUNCATE:
            response = response[: max(12, int(len(response) * 0.5))]
        elif fault == FAULT_CORRUPT:
            response = _corrupt_body(response, self.plan.seed)
        conn.sendall(response)

    def _forward(self, request: bytes) -> bytes:
        upstream = socket.create_connection(
            (self.upstream_host, self.upstream_port), timeout=self.timeout
        )
        try:
            upstream.sendall(request)
            return _recv_http_message(upstream)
        finally:
            upstream.close()
