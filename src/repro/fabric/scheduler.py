"""The fabric scheduler: a stdlib HTTP service around :class:`FabricQueue`.

Versioned JSON API (all bodies are :func:`~repro.fabric.wire.envelope`
stamped; a newer ``schema`` than the server's is rejected with 400):

==========================================  =================================
``POST /v1/sweeps``                         submit a batch: ``requests`` (a
                                            list of serialized
                                            :class:`~repro.sim.api.RunRequest`)
                                            plus the submitter's
                                            ``execution`` policy → sweep id
                                            + per-cell keys
``GET /v1/sweeps/<id>``                     status counts; ``?outcomes=1``
                                            adds settled outcomes in
                                            submission order
``GET /v1/sweeps/<id>/events?since=N``      the sweep's event stream as
                                            JSONL, sequence-numbered;
                                            at-least-once across scheduler
                                            restarts (``since`` past the end
                                            is clamped)
``POST /v1/cells/claim``                    lease the next pending cell
``POST /v1/cells/<key>/heartbeat``          renew a lease mid-execution
``POST /v1/cells/<key>/complete``           report a terminal outcome
``GET /v1/artifacts/<key>``                 artifact-store read-through
``GET /v1/ping``                            liveness + schema + queue depth
``GET /v1/health``                          queue depth by state, lease
                                            count, uptime, compactions
==========================================  =================================

Hardening (wire schema v3): sweep submissions and completions carry
idempotency tokens — a duplicated submission resolves to the original
sweep, a duplicated completion replays the recorded decision without
re-settling or re-narrating the cell.  Artifact payloads carry a CRC-32
of their canonical metrics JSON.  ``max_pending`` bounds the pending
queue: a submission that would overflow it is refused with HTTP 429 and
a ``Retry-After`` header instead of being accepted and starved.

The scheduler owns the **shared artifact store** — a plain
:class:`~repro.sim.cache.ResultCache` on its disk.  Completed metrics are
written there as they arrive, a submitted cell whose key is already stored
settles instantly, and workers read missing keys through
``GET /v1/artifacts/<key>`` before simulating anything.

Leases expire server-side: a worker that stops heartbeating has its cell
re-queued (journalled as a crash-kind attempt) and the submitting session
sees a ``retrying`` event.  Retry budgets come from the submitter's
:class:`~repro.sim.engine.RetryPolicy`, enforced here so every submitting
client observes the same policy it would have run locally.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.fabric.queue import CellRecord, FabricQueue
from repro.fabric.wire import (
    WIRE_SCHEMA_VERSION,
    WireError,
    check_schema,
    encode_outcome,
    envelope,
    payload_crc32,
)
from repro.sim.api import RunFailure, RunMetrics, RunOutcome, RunRequest
from repro.sim.cache import ResultCache, cache_key
from repro.sim.engine import RetryPolicy
from repro.sim.events import (
    CACHE_HIT,
    EVENT_SCHEMA_VERSION,
    FAILED,
    FINISHED,
    QUEUED,
    RETRYING,
    STARTED,
    TIMED_OUT,
)

#: Default lease duration; a healthy worker heartbeats at a fraction of it.
DEFAULT_LEASE_SECONDS = 15.0

#: Auto-compact the journal after this many appended records.  High enough
#: that a busy scheduler compacts at most every few sweeps, low enough that
#: the journal never grows past a few MB of dead history.
DEFAULT_COMPACT_EVERY = 4096


class AdmissionFull(RuntimeError):
    """A submission refused because the pending queue is at ``max_pending``.

    Carries the seconds a polite client should wait before retrying; the
    HTTP layer turns this into 429 + ``Retry-After``.
    """

    def __init__(self, message: str, *, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class FabricScheduler:
    """The scheduler's state machine, independent of HTTP plumbing.

    All public methods are thread-safe (one coarse lock — correctness over
    concurrency; the work units are whole simulations, so the lock is never
    the bottleneck).
    """

    def __init__(
        self,
        state_dir: str | Path,
        *,
        cache_dir: str | Path | None = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        max_pending: int | None = None,
        compact_every: int | None = DEFAULT_COMPACT_EVERY,
        clock=time.monotonic,
    ) -> None:
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.state_dir = Path(state_dir)
        self.queue = FabricQueue(
            self.state_dir / "queue.jsonl", compact_every=compact_every
        )
        self.store = ResultCache(cache_dir or self.state_dir / "artifacts")
        self.lease_seconds = lease_seconds
        self.max_pending = max_pending
        self.clock = clock
        self.started_at = clock()
        self._lock = threading.Lock()
        #: sweep_id → ordered event dicts (in-memory; regenerated on restart,
        #: so delivery is at-least-once, never exactly-once).
        self._events: dict[str, list[dict]] = {}
        #: cell key → [(sweep_id, index), ...] — one cell can satisfy many
        #: batch slots, each of which needs its own event narration.
        self._watchers: dict[str, list[tuple[str, int]]] = {}
        recovered = self.queue.load()
        self._recover_watchers()
        self.recovered_records = recovered

    # ------------------------------------------------------------------ events

    def _event(
        self, sweep_id: str, kind: str, index: int, cell: CellRecord, **extra
    ) -> None:
        request = cell.request
        # Events are read back as RunEvent.from_dict, so they carry the
        # *event* schema stamp, not the wire envelope's.
        event = {
            "schema": EVENT_SCHEMA_VERSION,
            "kind": kind,
            "index": index,
            "workload": request["workload"]["name"],
            "config": request["config"]["name"],
            "model": request["attack_model"],
        }
        event.update({k: v for k, v in extra.items() if v is not None})
        self._events.setdefault(sweep_id, []).append(event)

    def _broadcast(self, cell: CellRecord, kind: str, **extra) -> None:
        for sweep_id, index in self._watchers.get(cell.key, ()):
            self._event(sweep_id, kind, index, cell, **extra)

    def _terminal_extras(self, outcome: RunOutcome) -> dict:
        if isinstance(outcome, RunFailure):
            return {
                "error": f"{outcome.error_type}: {outcome.message}",
                "failure_kind": outcome.kind,
                "attempt": outcome.attempts,
            }
        return {"cycles": outcome.cycles, "instructions": outcome.instructions}

    def _recover_watchers(self) -> None:
        """Rebuild watcher maps and a minimal event history after a restart.

        ``queued`` plus a terminal event per settled cell is enough for a
        reconnecting client to converge; in-flight detail (``started``
        timestamps, past retries) died with the previous process and is
        not fabricated.
        """
        for sweep_id, sweep in self.queue.sweeps.items():
            for index, key in enumerate(sweep.cells):
                self._watchers.setdefault(key, []).append((sweep_id, index))
                cell = self.queue.cells[key]
                self._event(sweep_id, QUEUED, index, cell)
                if cell.done:
                    kind = (
                        FAILED if isinstance(cell.outcome, RunFailure) else FINISHED
                    )
                    self._event(
                        sweep_id, kind, index, cell,
                        **self._terminal_extras(cell.outcome),
                    )

    # -------------------------------------------------------------- submission

    def submit(self, payload: dict) -> dict:
        check_schema(payload, what="sweep submission")
        requests = [RunRequest.from_dict(r) for r in payload["requests"]]
        execution = payload.get("execution") or {}
        retry_payload = execution.get("retries")
        retry = (
            RetryPolicy.from_dict(retry_payload)
            if retry_payload
            else RetryPolicy(max_retries=0)
        )
        timeout = execution.get("timeout")
        token = payload.get("token")
        with self._lock:
            if token is not None:
                existing = self.queue.sweep_by_token(str(token))
                if existing is not None:
                    # Duplicated submission (client retried through a lost
                    # response): resolve to the original sweep unchanged.
                    return envelope(
                        sweep_id=existing.sweep_id,
                        keys=list(existing.cells),
                        total=len(existing.cells),
                        deduplicated=True,
                    )
            sweep_id = f"sweep-{len(self.queue.sweeps):04d}-{int(self.clock() * 1e3):x}"
            cells = [(cache_key(r), r.to_dict()) for r in requests]
            if self.max_pending is not None:
                self._expire()
                incoming = {
                    key for key, _ in cells if key not in self.queue.cells
                }
                depth = self.queue.pending_count() + len(incoming)
                if depth > self.max_pending:
                    raise AdmissionFull(
                        f"pending queue full: {depth} > max_pending="
                        f"{self.max_pending}",
                        retry_after=max(1.0, self.lease_seconds / 2),
                    )
            self.queue.submit(
                sweep_id, cells, retry=retry, timeout=timeout,
                token=None if token is None else str(token),
            )
            for index, (key, _) in enumerate(cells):
                self._watchers.setdefault(key, []).append((sweep_id, index))
                self._event(sweep_id, QUEUED, index, self.queue.cells[key])
            # Settle what needs no worker: cells another sweep already
            # finished, and cells the artifact store can answer.
            settled_now: set[str] = set()
            for index, (key, _) in enumerate(cells):
                cell = self.queue.cells[key]
                if cell.done:
                    if key not in settled_now:
                        kind = (
                            CACHE_HIT
                            if isinstance(cell.outcome, RunMetrics)
                            else FAILED
                        )
                        self._event(
                            sweep_id, kind, index, cell,
                            **self._terminal_extras(cell.outcome),
                        )
                    continue
                if key in settled_now:
                    continue  # duplicate request in this batch; already handled
                stored = self.store.get_key(key)
                if stored is not None:
                    self.queue.complete(key, stored)
                    settled_now.add(key)
                    self._broadcast(cell, CACHE_HIT)
            return envelope(
                sweep_id=sweep_id,
                keys=[key for key, _ in cells],
                total=len(cells),
            )

    # ------------------------------------------------------------------ status

    def status(self, sweep_id: str, *, include_outcomes: bool = False) -> dict:
        with self._lock:
            self._expire()
            if sweep_id not in self.queue.sweeps:
                raise KeyError(sweep_id)
            counts = self.queue.sweep_counts(sweep_id)
            total = sum(counts.values())
            payload = envelope(
                sweep_id=sweep_id,
                total=total,
                pending=counts["pending"],
                leased=counts["leased"],
                done=counts["done"],
                complete=counts["done"] == total,
            )
            if include_outcomes:
                payload["outcomes"] = [
                    encode_outcome(outcome) if outcome is not None else None
                    for outcome in self.queue.sweep_outcomes(sweep_id)
                ]
            return payload

    def events_since(self, sweep_id: str, since: int) -> list[dict]:
        with self._lock:
            if sweep_id not in self.queue.sweeps:
                raise KeyError(sweep_id)
            events = self._events.get(sweep_id, [])
            # A client that outlived a scheduler restart may ask from a
            # sequence number past our regenerated history; clamp and
            # re-deliver (at-least-once — the client dedups terminals).
            since = max(0, min(since, len(events)))
            return [
                dict(event, seq=seq)
                for seq, event in enumerate(events[since:], start=since)
            ]

    def ping(self) -> dict:
        with self._lock:
            return envelope(
                ok=True,
                sweeps=len(self.queue.sweeps),
                cells=len(self.queue.cells),
                pending=self.queue.pending_count(),
            )

    def health(self) -> dict:
        """Operational snapshot: queue depth by state, lease count, uptime,
        admission bound, and how often the journal has compacted."""
        with self._lock:
            self._expire()
            done = sum(1 for c in self.queue.cells.values() if c.done)
            pending = self.queue.pending_count()
            leased = len(self.queue.cells) - pending - done
            return envelope(
                ok=True,
                uptime=self.clock() - self.started_at,
                sweeps=len(self.queue.sweeps),
                cells=len(self.queue.cells),
                pending=pending,
                leased=leased,
                done=done,
                max_pending=self.max_pending,
                lease_seconds=self.lease_seconds,
                compactions=self.queue.compactions,
            )

    # ----------------------------------------------------------------- leasing

    def claim(self, payload: dict) -> dict:
        check_schema(payload, what="claim")
        worker = str(payload.get("worker", "anonymous"))
        with self._lock:
            self._expire()
            cell = self.queue.claim(
                worker, lease_seconds=self.lease_seconds, now=self.clock()
            )
            if cell is None:
                return envelope(cell=None)
            self._broadcast(cell, STARTED, attempt=cell.attempts)
            return envelope(
                cell={
                    "key": cell.key,
                    "request": cell.request,
                    "timeout": cell.timeout,
                    "attempt": cell.attempts,
                    "lease_seconds": self.lease_seconds,
                }
            )

    def heartbeat(self, key: str, payload: dict) -> dict:
        check_schema(payload, what="heartbeat")
        worker = str(payload.get("worker", "anonymous"))
        with self._lock:
            ok = self.queue.heartbeat(
                key, worker, lease_seconds=self.lease_seconds, now=self.clock()
            )
            return envelope(ok=ok)

    def _expire(self) -> None:
        for cell in self.queue.expire_leases(now=self.clock()):
            if cell.done:
                self._broadcast(
                    cell, FAILED, **self._terminal_extras(cell.outcome)
                )
            else:
                self._broadcast(
                    cell, RETRYING,
                    failure_kind=cell.last_failure.kind if cell.last_failure else None,
                    attempt=cell.attempts,
                )

    # -------------------------------------------------------------- completion

    def complete(self, key: str, payload: dict) -> dict:
        check_schema(payload, what="completion")
        from repro.fabric.wire import decode_outcome

        outcome = decode_outcome(payload["outcome"])
        wall_time = payload.get("wall_time")
        token = payload.get("token")
        with self._lock:
            cell = self.queue.cells.get(key)
            if cell is None:
                raise KeyError(key)
            if token is not None and str(token) in cell.tokens:
                # Duplicated delivery of a completion we already applied:
                # replay the recorded decision without re-settling the cell
                # or narrating the terminal event a second time.
                return envelope(decision=cell.tokens[str(token)], replayed=True)
            decision = self.queue.complete(
                key, outcome, token=None if token is None else str(token)
            )
            if decision == "done":
                if isinstance(cell.outcome, RunMetrics):
                    if not self.store.has_key(key):
                        self.store.put_key(key, cell.outcome)
                    self._broadcast(
                        cell, FINISHED,
                        wall_time=wall_time,
                        **self._terminal_extras(cell.outcome),
                    )
                else:
                    self._broadcast(
                        cell, FAILED,
                        wall_time=wall_time,
                        **self._terminal_extras(cell.outcome),
                    )
            elif decision == "retry":
                assert isinstance(outcome, RunFailure)
                if outcome.kind == "timeout":
                    self._broadcast(
                        cell, TIMED_OUT, wall_time=wall_time, attempt=cell.attempts
                    )
                self._broadcast(
                    cell, RETRYING, failure_kind=outcome.kind, attempt=cell.attempts
                )
            return envelope(decision=decision)

    def artifact(self, key: str) -> dict | None:
        with self._lock:
            metrics = self.store.get_key(key)
            if metrics is None and key in self.queue.cells:
                cell = self.queue.cells[key]
                if cell.done and isinstance(cell.outcome, RunMetrics):
                    metrics = cell.outcome
            if metrics is None:
                return None
            payload = metrics.to_dict()
            return envelope(metrics=payload, crc32=payload_crc32(payload))

    def close(self) -> None:
        self.queue.close()


# --------------------------------------------------------------------- HTTP

_ROUTES = (
    ("POST", re.compile(r"^/v1/sweeps$"), "submit"),
    ("GET", re.compile(r"^/v1/sweeps/(?P<sweep_id>[\w.-]+)$"), "status"),
    ("GET", re.compile(r"^/v1/sweeps/(?P<sweep_id>[\w.-]+)/events$"), "events"),
    ("POST", re.compile(r"^/v1/cells/claim$"), "claim"),
    ("POST", re.compile(r"^/v1/cells/(?P<key>[0-9a-f]+)/heartbeat$"), "heartbeat"),
    ("POST", re.compile(r"^/v1/cells/(?P<key>[0-9a-f]+)/complete$"), "complete"),
    ("GET", re.compile(r"^/v1/artifacts/(?P<key>[0-9a-f]+)$"), "artifact"),
    ("GET", re.compile(r"^/v1/ping$"), "ping"),
    ("GET", re.compile(r"^/v1/health$"), "health"),
)


class _Handler(BaseHTTPRequestHandler):
    scheduler: FabricScheduler  # set by make_server
    protocol_version = "HTTP/1.1"

    def log_message(self, *_args) -> None:  # quiet by default
        pass

    def _json(
        self, status: int, payload: dict, headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _jsonl(self, records: list[dict]) -> None:
        body = "".join(json.dumps(r) + "\n" for r in records).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length == 0:
            return {}
        return json.loads(self.rfile.read(length))

    def _dispatch(self, method: str) -> None:
        from urllib.parse import parse_qs, urlparse

        parsed = urlparse(self.path)
        for verb, pattern, name in _ROUTES:
            if verb != method:
                continue
            match = pattern.match(parsed.path)
            if match is None:
                continue
            query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
            try:
                self._handle(name, match.groupdict(), query)
            except AdmissionFull as exc:
                self._json(
                    429,
                    {"error": str(exc), "retry_after": exc.retry_after},
                    headers={"Retry-After": str(int(exc.retry_after + 0.5))},
                )
            except KeyError as exc:
                self._json(404, {"error": f"not found: {exc}"})
            except WireError as exc:
                self._json(400, {"error": str(exc)})
            except (ValueError, TypeError) as exc:
                self._json(400, {"error": f"bad request: {exc}"})
            return
        self._json(404, {"error": f"no route for {method} {parsed.path}"})

    def _handle(self, name: str, params: dict, query: dict) -> None:
        scheduler = self.scheduler
        if name == "submit":
            self._json(200, scheduler.submit(self._body()))
        elif name == "status":
            self._json(
                200,
                scheduler.status(
                    params["sweep_id"],
                    include_outcomes=query.get("outcomes") == "1",
                ),
            )
        elif name == "events":
            since = int(query.get("since", 0))
            self._jsonl(scheduler.events_since(params["sweep_id"], since))
        elif name == "claim":
            self._json(200, scheduler.claim(self._body()))
        elif name == "heartbeat":
            self._json(200, scheduler.heartbeat(params["key"], self._body()))
        elif name == "complete":
            self._json(200, scheduler.complete(params["key"], self._body()))
        elif name == "artifact":
            payload = scheduler.artifact(params["key"])
            if payload is None:
                self._json(404, {"error": f"no artifact {params['key']}"})
            else:
                self._json(200, payload)
        elif name == "ping":
            self._json(200, scheduler.ping())
        elif name == "health":
            self._json(200, scheduler.health())

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("POST")


def make_server(
    scheduler: FabricScheduler, host: str = "127.0.0.1", port: int = 8700
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server onto ``scheduler`` (not yet serving)."""
    handler = type("BoundHandler", (_Handler,), {"scheduler": scheduler})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve(
    state_dir: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 8700,
    cache_dir: str | Path | None = None,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    max_pending: int | None = None,
    compact_every: int | None = DEFAULT_COMPACT_EVERY,
    ready_line: bool = True,
) -> None:
    """Run a scheduler until interrupted (the ``repro fabric serve`` entry).

    Prints ``fabric-scheduler listening on http://host:port`` once bound so
    wrappers (tests, shell scripts) can wait for readiness by reading one
    line of stdout.
    """
    scheduler = FabricScheduler(
        state_dir,
        cache_dir=cache_dir,
        lease_seconds=lease_seconds,
        max_pending=max_pending,
        compact_every=compact_every,
    )
    server = make_server(scheduler, host=host, port=port)
    if ready_line:
        bound_host, bound_port = server.server_address[:2]
        print(
            f"fabric-scheduler listening on http://{bound_host}:{bound_port} "
            f"(state={scheduler.state_dir}, recovered="
            f"{scheduler.recovered_records} records)",
            flush=True,
        )
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        scheduler.close()
