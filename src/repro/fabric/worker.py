"""The fabric worker agent: claim, resolve, simulate, report.

A worker is a loop around four steps:

1. **Claim** a cell lease (``POST /v1/cells/claim``).
2. **Resolve cheaply** if possible: first the worker's own local
   :class:`~repro.sim.cache.ResultCache`, then the scheduler's shared
   artifact store (``GET /v1/artifacts/<key>``).  Either hit is reported
   as a completion without running the simulator — and an artifact-store
   hit is written into the local cache on the way through.
3. **Execute** misses through a one-cell
   :class:`~repro.sim.engine.SweepEngine` with the cell's wall-clock
   timeout, so kill/hang/timeout classification is byte-for-byte the same
   as a local run.  A background thread heartbeats the lease while the
   simulation runs.
4. **Report** the terminal outcome (``POST /v1/cells/<key>/complete``);
   the scheduler decides retry-vs-settle.

The agent is deliberately stateless across cells: a worker crash loses at
most the cell it was executing, which the scheduler re-queues when the
lease expires.  For the crash-restart acceptance test, setting the
``REPRO_FABRIC_EXEC_LOG`` environment variable makes every *real*
execution (not cache or artifact hits) append ``<key> <worker>`` to that
file — the test asserts no key appears after a scheduler restart that was
already done before it.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from pathlib import Path

from repro.fabric.transport import (
    FabricError,
    RetryingTransport,
    TransportPolicy,
)
from repro.fabric.wire import encode_outcome, envelope, payload_crc32
from repro.sim.api import RunRequest
from repro.sim.cache import ResultCache

#: Environment variable naming the execution-ledger file (testing hook).
EXEC_LOG_ENV = "REPRO_FABRIC_EXEC_LOG"

#: How long a worker keeps re-trying to deliver a finished result while the
#: scheduler is unreachable (a restart window), before abandoning the cell
#: to lease expiry.
COMPLETE_RETRY_SECONDS = 30.0


class WorkerAgent:
    """One worker process's claim/execute/report loop.

    ``max_idle_seconds`` bounds how long the agent keeps polling an empty
    (or unreachable) scheduler before :meth:`run_forever` returns — the
    natural shutdown for batch deployments and tests.  ``None`` polls
    forever (the ``repro fabric work`` default).
    """

    def __init__(
        self,
        url: str,
        *,
        cache_dir: str | Path | None = None,
        worker_id: str | None = None,
        poll_interval: float = 0.25,
        max_idle_seconds: float | None = None,
        request_timeout: float = 10.0,
        transport_policy: TransportPolicy | None = None,
    ) -> None:
        self.transport_policy = transport_policy or TransportPolicy()
        self.transport = RetryingTransport(
            url, timeout=request_timeout, policy=self.transport_policy
        )
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        # Architectural traces share the cache root: a worker that keeps a
        # result cache automatically keeps trace recordings beside it, so
        # repeat cells over the same workload replay instead of re-running
        # the functional ISS per commit.
        self.trace_store = None
        if cache_dir is not None:
            from repro.replay.store import TraceStore

            self.trace_store = TraceStore(Path(cache_dir) / "traces")
        self.poll_interval = poll_interval
        self.max_idle_seconds = max_idle_seconds
        self.stats = {
            "claims": 0,
            "executed": 0,
            "local_cache_hits": 0,
            "artifact_hits": 0,
            "trace_replays": 0,
            "delivery_failures": 0,
            "network_errors": 0,
            "artifact_corrupt": 0,
        }
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask :meth:`run_forever` to exit after the current cell."""
        self._stop.set()

    # ------------------------------------------------------------------- loop

    def run_forever(self) -> dict[str, int]:
        """Poll for cells until stopped or idle too long; returns stats."""
        last_activity = time.monotonic()
        while not self._stop.is_set():
            try:
                worked = self.step()
            except FabricError:
                self.stats["network_errors"] += 1
                worked = False
            if worked:
                last_activity = time.monotonic()
                continue
            if (
                self.max_idle_seconds is not None
                and time.monotonic() - last_activity >= self.max_idle_seconds
            ):
                break
            self._stop.wait(self.poll_interval)
        return dict(self.stats)

    def step(self) -> bool:
        """Claim and process at most one cell; ``False`` when idle."""
        # Claiming is idempotent by lease expiry: a claim whose response
        # was lost leases a cell nobody works on, which simply expires and
        # re-queues (at the cost of one retry-budget attempt) — so retrying
        # the POST is safe.
        reply = self.transport.post_json(
            "/v1/cells/claim", envelope(worker=self.worker_id), idempotent=True
        )
        cell = reply.get("cell")
        if cell is None:
            return False
        self.stats["claims"] += 1
        self._process(cell)
        return True

    # ------------------------------------------------------------------ cells

    def _process(self, cell: dict) -> None:
        key = cell["key"]
        outcome, wall_time = self._resolve(key, cell)
        self._deliver(key, outcome, wall_time, attempt=cell.get("attempt", 0))

    def _resolve(self, key: str, cell: dict):
        if self.cache is not None:
            metrics = self.cache.get_key(key)
            if metrics is not None:
                self.stats["local_cache_hits"] += 1
                return metrics, 0.0
        stored = self._fetch_artifact(key)
        if stored is not None:
            self.stats["artifact_hits"] += 1
            if self.cache is not None and not self.cache.has_key(key):
                self.cache.put_key(key, stored)
            return stored, 0.0
        return self._execute(key, cell)

    def _fetch_artifact(self, key: str):
        """Read ``key`` through the scheduler's artifact store.

        Any malformed payload — missing ``metrics``, undecodable schema, a
        CRC-32 that does not match the body — is a **miss**, never a crash:
        the worker falls through to executing the cell itself, which is
        always correct (just slower).
        """
        from repro.sim.api import RunMetrics

        try:
            payload = self.transport.get_json_or_none(f"/v1/artifacts/{key}")
        except FabricError:
            return None  # store unreachable — fall through to executing
        if payload is None:
            return None
        try:
            metrics_payload = payload["metrics"]
            crc = payload.get("crc32")
            if crc is not None and crc != payload_crc32(metrics_payload):
                raise ValueError("artifact checksum mismatch")
            return RunMetrics.from_dict(metrics_payload)
        except (KeyError, TypeError, ValueError):
            self.stats["artifact_corrupt"] += 1
            return None

    def _execute(self, key: str, cell: dict):
        from repro.sim.engine import SweepEngine

        self._ledger(key)
        request = RunRequest.from_dict(cell["request"])
        if self.trace_store is not None:
            # Count resolutions the trace store will serve without a fresh
            # recording — the replayed-trace rung of the resolution ladder
            # (local cache → artifact store → replayed trace → full run).
            from repro.replay.trace import trace_key

            if self.trace_store.has(trace_key(request)):
                self.stats["trace_replays"] += 1
        engine = SweepEngine(
            jobs=1,
            timeout=cell.get("timeout"),
            cache=self.cache,
            trace_store=self.trace_store,
        )
        heartbeat = self._start_heartbeat(key, cell.get("lease_seconds") or 15.0)
        started = time.monotonic()
        try:
            outcome = engine.run([request])[0]
        finally:
            heartbeat.set()
        self.stats["executed"] += 1
        return outcome, time.monotonic() - started

    def _start_heartbeat(self, key: str, lease_seconds: float) -> threading.Event:
        """Renew the lease from a side thread until the returned event is
        set.  Heartbeat failures are swallowed: if the scheduler is briefly
        down, the completion retry loop is the recovery path; if the lease
        truly expired, the completion comes back ``stale``, which is fine.
        """
        done = threading.Event()
        interval = max(0.5, lease_seconds / 3.0)

        def beat() -> None:
            while not done.wait(interval):
                try:
                    self.transport.post_json(
                        f"/v1/cells/{key}/heartbeat",
                        envelope(worker=self.worker_id),
                        idempotent=True,  # renewing a lease twice is a no-op
                    )
                except FabricError:
                    pass

        thread = threading.Thread(target=beat, daemon=True, name=f"hb-{key[:8]}")
        thread.start()
        return done

    def _deliver(
        self, key: str, outcome, wall_time: float, *, attempt: int = 0
    ) -> None:
        # The idempotency token is stable across *delivery* retries of this
        # one execution (worker, cell, attempt): a response lost in flight
        # re-sends the same token and the scheduler replays its recorded
        # decision instead of double-settling the cell.
        token = f"{self.worker_id}:{key}:{attempt}"
        payload = envelope(
            worker=self.worker_id,
            outcome=encode_outcome(outcome),
            wall_time=round(wall_time, 6),
            token=token,
        )
        deadline = time.monotonic() + COMPLETE_RETRY_SECONDS
        backoff = self.transport_policy.backoff()
        delivery_try = 1
        while True:
            try:
                self.transport.post_json(
                    f"/v1/cells/{key}/complete", payload, idempotent=True
                )
                return
            except FabricError:
                if time.monotonic() >= deadline or self._stop.is_set():
                    # Abandon: the lease will expire and the cell re-queue.
                    self.stats["delivery_failures"] += 1
                    return
                delivery_try += 1
                # stop() interrupts the wait promptly; plain sleep() would
                # hold shutdown hostage for up to a full backoff interval.
                self._stop.wait(backoff.delay(f"deliver:{key}", delivery_try))

    def _ledger(self, key: str) -> None:
        path = os.environ.get(EXEC_LOG_ENV)
        if not path:
            return
        with open(path, "a") as fh:
            fh.write(f"{key} {self.worker_id}\n")
