"""The fabric's versioned wire format.

Everything that crosses a fabric connection is JSON built from the
``to_dict``/``from_dict`` pairs the simulation dataclasses already carry —
:class:`~repro.sim.api.RunRequest` travels whole (program, warm set,
machine, limits), outcomes travel as tagged
:class:`~repro.sim.api.RunMetrics` / :class:`~repro.sim.api.RunFailure`
payloads, and events are :class:`~repro.sim.events.RunEvent` dicts.

``WIRE_SCHEMA_VERSION`` stamps every envelope.  The rule mirrors the
event schema: additive changes keep the version (readers ignore unknown
keys), incompatible changes bump it, and a reader refuses a *newer* stamp
than its own.  The sdolint ``cache-schema`` checker pins the serialized
field sets of the policies and outcome envelope so a drive-by field rename
cannot silently fork the protocol.
"""

from __future__ import annotations

import json
import zlib

from repro.sim.api import RunFailure, RunMetrics, RunOutcome

#: Bump on incompatible wire changes (renamed/retyped fields, changed
#: endpoint semantics).  Additive evolution — new optional fields, new
#: endpoints — keeps the version.
#: v2: ExecutionPolicy gained the ``replay`` field (record-once/replay-many
#: execution backend); old decoders default it to False.
#: v3: the chaos-hardening release — completion envelopes grew idempotency
#: ``token`` fields (a v3 scheduler replays the recorded decision for a
#: duplicated delivery, which a v2 peer would re-apply), sweep submissions
#: carry a submission ``token``, artifact payloads carry a ``crc32``
#: checksum, ``ExecutionPolicy`` gained the ``transport`` retry/breaker
#: policy, and the scheduler serves ``/v1/health`` and 429 + Retry-After
#: admission control.
WIRE_SCHEMA_VERSION = 3

#: Cell lifecycle states as the scheduler reports them.
CELL_PENDING = "pending"
CELL_LEASED = "leased"
CELL_DONE = "done"
CELL_STATES = frozenset({CELL_PENDING, CELL_LEASED, CELL_DONE})


class WireError(ValueError):
    """A payload that cannot be decoded under this wire schema."""


def check_schema(payload: dict, *, what: str = "payload") -> None:
    """Reject payloads stamped with a newer wire schema than ours.

    Missing stamps are accepted (same-version peers omit none, but a
    hand-built test payload may), and older stamps are accepted because
    evolution within a version is additive.
    """
    schema = payload.get("schema", WIRE_SCHEMA_VERSION)
    if not isinstance(schema, int) or schema > WIRE_SCHEMA_VERSION:
        raise WireError(
            f"{what} carries wire schema {schema!r}, newer than this "
            f"peer's v{WIRE_SCHEMA_VERSION}; upgrade this peer"
        )


def envelope(**fields: object) -> dict[str, object]:
    """A wire message: the given fields plus the schema stamp."""
    payload: dict[str, object] = {"schema": WIRE_SCHEMA_VERSION}
    payload.update(fields)
    return payload


def payload_crc32(payload: object) -> int:
    """CRC-32 of a JSON payload's canonical form (sorted keys, no spaces).

    Stamped onto artifact bodies so a corrupted-in-flight payload that
    still parses as JSON is detected by the reader: a mismatch is treated
    as an artifact miss, never a crash.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF


def encode_outcome(outcome: RunOutcome) -> dict[str, object]:
    """Tagged wire form of a terminal outcome (the journal's convention:
    ``kind`` is ``"metrics"`` or ``"failure"``, ``payload`` the dict)."""
    if isinstance(outcome, RunFailure):
        return {"kind": "failure", "payload": outcome.to_dict()}
    return {"kind": "metrics", "payload": outcome.to_dict()}


def decode_outcome(record: dict) -> RunOutcome:
    """Inverse of :func:`encode_outcome`."""
    kind = record.get("kind")
    if kind == "metrics":
        return RunMetrics.from_dict(record["payload"])
    if kind == "failure":
        return RunFailure.from_dict(record["payload"])
    raise WireError(f"unknown outcome kind {kind!r}")
