"""HTTP/JSON transport shared by the worker agent and the client.

Two layers:

* :class:`HttpTransport` — one connection per request (``http.client``,
  standard library only): the fabric's requests are small and infrequent
  relative to simulation time, and fresh connections make scheduler
  restarts invisible — there is no stale keep-alive socket to trip over,
  only a clean refused connection that the caller retries.
* :class:`RetryingTransport` — the hardened wrapper every fabric peer
  actually uses: capped exponential backoff with deterministic
  per-``(path, attempt)`` jitter (reusing the
  :class:`~repro.sim.engine.RetryPolicy` delay idiom), retries restricted
  to idempotent or not-yet-processed cases, ``429 Retry-After``
  admission-control compliance, and a circuit breaker that trips after N
  consecutive transport failures and half-opens on a timer.

What counts as *transient* here: connection-level errors (refused, reset,
DNS, timeout), truncated responses (``IncompleteRead``/``BadStatusLine``
surface as :class:`FabricError`), a 200 whose body is not decodable JSON
(a corrupted response — the bytes on the wire lied, retrying refetches
clean ones), and 429 (the request was *not* processed, so retrying is
always safe).  What does not: any other HTTP status, which is an answer
from a healthy peer.

Retrying a POST is only safe when the request is idempotent.  In this
protocol every POST is *made* idempotent — ``claim`` by lease expiry,
``heartbeat`` by construction, ``complete`` and sweep submission by
idempotency tokens — so callers pass ``idempotent=True`` explicitly and
own that claim.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from dataclasses import dataclass
from urllib.parse import urlsplit


class FabricError(RuntimeError):
    """A fabric endpoint could not be reached or rejected the request."""


class CircuitOpenError(FabricError):
    """The circuit breaker is open: recent calls failed consecutively and
    the reset timer has not elapsed, so the call fails fast instead of
    burning a timeout against a peer that is almost certainly still down."""


@dataclass(frozen=True)
class TransportPolicy:
    """Retry/backoff/circuit-breaker knobs for :class:`RetryingTransport`.

    ``retries``
        Extra attempts for transient failures of retry-safe requests
        (``0`` disables retrying — the raw-transport negative control).
    ``backoff_base`` / ``backoff_factor`` / ``backoff_max`` / ``jitter``
        The delay before retry *n* is ``backoff_base * backoff_factor**(n-1)``
        seconds, capped at ``backoff_max``, with a deterministic jitter of
        up to ±``jitter`` of the delay derived from ``(path, attempt)`` —
        the same schedule every run, yet different endpoints never
        thundering-herd on the same instant.
    ``breaker_threshold``
        Consecutive transport failures that trip the circuit breaker open
        (``0`` disables the breaker).
    ``breaker_reset``
        Seconds the breaker stays open before half-opening to let one
        probe request through.
    """

    retries: int = 4
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.1
    breaker_threshold: int = 5
    breaker_reset: float = 5.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff_base/backoff_max must be >= 0")
        if self.breaker_threshold < 0:
            raise ValueError(
                f"breaker_threshold must be >= 0, got {self.breaker_threshold}"
            )
        if self.breaker_reset <= 0:
            raise ValueError(
                f"breaker_reset must be positive, got {self.breaker_reset}"
            )

    def backoff(self):
        """The delay engine: a :class:`~repro.sim.engine.RetryPolicy`
        whose ``delay(key, attempt)`` is reused with the request *path* as
        the key, so the jitter is deterministic per ``(path, attempt)``.
        (Imported lazily: ``sim.policies`` carries a :class:`TransportPolicy`
        field, and ``sim.engine`` sits between them on the import graph.)"""
        from repro.sim.engine import RetryPolicy

        return RetryPolicy(
            max_retries=self.retries,
            backoff_base=self.backoff_base,
            backoff_factor=self.backoff_factor,
            backoff_max=self.backoff_max,
            jitter=self.jitter,
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`) — the
        policy rides :class:`~repro.sim.policies.ExecutionPolicy` over the
        fabric wire."""
        return {
            "retries": self.retries,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "backoff_max": self.backoff_max,
            "jitter": self.jitter,
            "breaker_threshold": self.breaker_threshold,
            "breaker_reset": self.breaker_reset,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TransportPolicy":
        return cls(
            retries=payload.get("retries", 4),
            backoff_base=payload.get("backoff_base", 0.05),
            backoff_factor=payload.get("backoff_factor", 2.0),
            backoff_max=payload.get("backoff_max", 2.0),
            jitter=payload.get("jitter", 0.1),
            breaker_threshold=payload.get("breaker_threshold", 5),
            breaker_reset=payload.get("breaker_reset", 5.0),
        )


class CircuitBreaker:
    """Closed → open after ``threshold`` consecutive failures → half-open
    after ``reset_seconds`` → closed on a successful probe (or straight
    back to open on a failed one).

    ``threshold=0`` disables the breaker (always closed).  Not thread-safe
    on its own; each transport owns one and fabric peers are effectively
    single-threaded per transport (the worker's heartbeat thread gets its
    own transport).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self, threshold: int, reset_seconds: float, *, clock=time.monotonic
    ) -> None:
        self.threshold = threshold
        self.reset_seconds = reset_seconds
        self.clock = clock
        self.state = self.CLOSED
        self.failures = 0
        self._opened_at = 0.0

    def allow(self) -> bool:
        """May a request be attempted right now?  An open breaker whose
        reset timer elapsed transitions to half-open and allows exactly
        one probe (further calls stay blocked until the probe settles)."""
        if self.threshold == 0 or self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self.clock() - self._opened_at >= self.reset_seconds:
                self.state = self.HALF_OPEN
                return True
            return False
        return False  # half-open: the in-flight probe decides

    def record_success(self) -> None:
        self.state = self.CLOSED
        self.failures = 0

    def record_failure(self) -> None:
        if self.threshold == 0:
            return
        self.failures += 1
        if self.state == self.HALF_OPEN or self.failures >= self.threshold:
            self.state = self.OPEN
            self._opened_at = self.clock()


class _JsonCalls:
    """The JSON convenience layer, shared by the raw and retrying
    transports — everything is sugar over :meth:`exchange`."""

    base_url: str

    def exchange(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        idempotent: bool = False,
    ) -> tuple[int, str, dict]:
        raise NotImplementedError

    def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, str]:
        """One round trip; returns ``(status, body_text)``.

        Connection-level problems (refused, reset, DNS, timeout, truncated
        response) raise :class:`FabricError`; HTTP error *statuses* are
        returned to the caller, who knows which ones are meaningful (a 404
        artifact miss is normal, a 404 sweep is not).
        """
        status, text, _headers = self.exchange(method, path, payload)
        return status, text

    def _raise_for(self, method: str, path: str, status: int, text: str) -> None:
        raise FabricError(f"{method} {self.base_url}{path} -> HTTP {status}: {text}")

    def _decode(self, method: str, path: str, text: str) -> dict:
        try:
            return json.loads(text)
        except ValueError as exc:
            # A 200 with an undecodable body is a corrupted response, not a
            # server answer — surface it as the transient error it is.
            raise FabricError(
                f"{method} {self.base_url}{path} returned undecodable "
                f"JSON: {exc}"
            ) from exc

    def post_json(
        self, path: str, payload: dict, *, idempotent: bool = False
    ) -> dict:
        status, text, _ = self.exchange(
            "POST", path, payload, idempotent=idempotent
        )
        if status != 200:
            self._raise_for("POST", path, status, text)
        return self._decode("POST", path, text)

    def get_json(self, path: str) -> dict:
        status, text, _ = self.exchange("GET", path, idempotent=True)
        if status != 200:
            self._raise_for("GET", path, status, text)
        return self._decode("GET", path, text)

    def get_json_or_none(self, path: str) -> dict | None:
        """Like :meth:`get_json` but a 404 is an answer, not an error."""
        status, text, _ = self.exchange("GET", path, idempotent=True)
        if status == 404:
            return None
        if status != 200:
            self._raise_for("GET", path, status, text)
        return self._decode("GET", path, text)

    def get_lines(self, path: str) -> list[dict]:
        """Fetch a JSONL endpoint as a list of parsed records.

        A torn *trailing* line — the scheduler restarted or the connection
        died mid-stream — is skipped, exactly like the queue journal's
        torn-tail rule: the records before it are complete and the client
        will re-request from its cursor.  A torn line *mid-stream* is a
        corrupted response and raises :class:`FabricError` (transient, so
        the retrying transport refetches).
        """
        status, text, _ = self.exchange("GET", path, idempotent=True)
        if status != 200:
            self._raise_for("GET", path, status, text)
        lines = [line for line in text.splitlines() if line.strip()]
        records = []
        for position, line in enumerate(lines):
            try:
                records.append(json.loads(line))
            except ValueError as exc:
                if position == len(lines) - 1:
                    break  # torn tail: a partial final line from a cut stream
                raise FabricError(
                    f"GET {self.base_url}{path} line {position} is corrupt "
                    f"mid-stream: {exc}"
                ) from exc
        return records


class HttpTransport(_JsonCalls):
    """JSON requests against one fabric base URL (e.g. ``http://host:8700``)."""

    def __init__(self, base_url: str, *, timeout: float = 10.0) -> None:
        parts = urlsplit(base_url)
        if parts.scheme != "http":
            raise ValueError(
                f"fabric URLs must be http:// (got {base_url!r}); the fabric "
                "is a trusted-network service and speaks plain HTTP"
            )
        if not parts.hostname:
            raise ValueError(f"fabric URL {base_url!r} has no host")
        self.base_url = base_url.rstrip("/")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.prefix = parts.path.rstrip("/")
        self.timeout = timeout

    def exchange(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        idempotent: bool = False,
    ) -> tuple[int, str, dict]:
        """One round trip; returns ``(status, body_text, headers)`` with
        header names lowercased.  ``idempotent`` is a no-op here — the raw
        transport never retries; the flag exists so the retrying wrapper
        shares this signature."""
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request(method, self.prefix + path, body=body, headers=headers)
            response = conn.getresponse()
            reply_headers = {
                name.lower(): value for name, value in response.getheaders()
            }
            return response.status, response.read().decode("utf-8"), reply_headers
        except (OSError, socket.timeout, http.client.HTTPException) as exc:
            raise FabricError(
                f"{method} {self.base_url}{path} failed: {exc}"
            ) from exc
        finally:
            conn.close()


class RetryingTransport(_JsonCalls):
    """The hardened transport: retries, deterministic backoff, breaker.

    ``target`` is a base URL (an :class:`HttpTransport` is built over it)
    or any object with the ``exchange`` signature — tests inject scripted
    fakes that way.  ``sleep`` is the backoff wait; the worker passes its
    stop event's ``wait`` so ``stop()`` interrupts a backoff immediately.
    """

    def __init__(
        self,
        target: str | _JsonCalls,
        *,
        timeout: float = 10.0,
        policy: TransportPolicy | None = None,
        sleep=time.sleep,
        clock=time.monotonic,
    ) -> None:
        self.inner = (
            HttpTransport(target, timeout=timeout)
            if isinstance(target, str)
            else target
        )
        self.base_url = self.inner.base_url
        self.policy = policy or TransportPolicy()
        self.breaker = CircuitBreaker(
            self.policy.breaker_threshold, self.policy.breaker_reset, clock=clock
        )
        self._backoff = self.policy.backoff()
        self._sleep = sleep
        self.stats = {"retries": 0, "breaker_fastfails": 0}

    def delay(self, path: str, attempt: int) -> float:
        """Backoff before the ``attempt``-th try of ``path`` (attempt >= 2)
        — deterministic in ``(path, attempt)``, capped at ``backoff_max``."""
        return self._backoff.delay(path, attempt)

    def exchange(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        idempotent: bool = False,
    ) -> tuple[int, str, dict]:
        attempt = 0
        while True:
            attempt += 1
            if not self.breaker.allow():
                self.stats["breaker_fastfails"] += 1
                raise CircuitOpenError(
                    f"{method} {self.base_url}{path}: circuit open after "
                    f"{self.breaker.failures} consecutive failures"
                )
            try:
                status, text, headers = self.inner.exchange(
                    method, path, payload, idempotent=idempotent
                )
            except FabricError as exc:
                self.breaker.record_failure()
                retryable = idempotent or method == "GET"
                if not retryable or attempt > self.policy.retries:
                    raise
                self.stats["retries"] += 1
                self._sleep(self.delay(path, attempt + 1))
                continue
            if status == 429:
                # Admission control: the request was not processed, so a
                # retry is safe regardless of idempotency.  The server is
                # alive and answering — that is a breaker success.
                self.breaker.record_success()
                if attempt > self.policy.retries:
                    return status, text, headers
                self.stats["retries"] += 1
                retry_after = _retry_after_seconds(headers)
                self._sleep(max(retry_after, self.delay(path, attempt + 1)))
                continue
            if (
                status == 200
                and "application/json" in headers.get("content-type", "")
                and not _decodes(text)
            ):
                # A well-framed 200 whose JSON body is garbage: the bytes
                # were corrupted in flight (headers intact, body flipped).
                # Retry-safety is the same question as for a connection
                # error — the request *was* processed, so only idempotent
                # requests may be re-sent.
                self.breaker.record_failure()
                retryable = idempotent or method == "GET"
                if not retryable or attempt > self.policy.retries:
                    return status, text, headers  # caller's _decode raises
                self.stats["retries"] += 1
                self._sleep(self.delay(path, attempt + 1))
                continue
            self.breaker.record_success()
            return status, text, headers


def _decodes(text: str) -> bool:
    try:
        json.loads(text)
    except ValueError:
        return False
    return True


def _retry_after_seconds(headers: dict) -> float:
    try:
        return max(0.0, float(headers.get("retry-after", 0.0)))
    except (TypeError, ValueError):
        return 0.0


def make_transport(
    url: str,
    *,
    timeout: float = 10.0,
    policy: TransportPolicy | None = None,
    sleep=time.sleep,
) -> _JsonCalls:
    """The transport a fabric peer should use: retrying by default; a
    ``TransportPolicy(retries=0, breaker_threshold=0)`` degenerates to the
    raw single-shot behaviour (the chaos gate's negative control)."""
    return RetryingTransport(url, timeout=timeout, policy=policy, sleep=sleep)
