"""Minimal HTTP/JSON transport shared by the worker agent and the client.

One connection per request (``http.client``, standard library only): the
fabric's requests are small and infrequent relative to simulation time, and
fresh connections make scheduler restarts invisible — there is no stale
keep-alive socket to trip over, only a clean refused connection that the
caller retries.
"""

from __future__ import annotations

import http.client
import json
import socket
from urllib.parse import urlsplit


class FabricError(RuntimeError):
    """A fabric endpoint could not be reached or rejected the request."""


class HttpTransport:
    """JSON requests against one fabric base URL (e.g. ``http://host:8700``)."""

    def __init__(self, base_url: str, *, timeout: float = 10.0) -> None:
        parts = urlsplit(base_url)
        if parts.scheme != "http":
            raise ValueError(
                f"fabric URLs must be http:// (got {base_url!r}); the fabric "
                "is a trusted-network service and speaks plain HTTP"
            )
        if not parts.hostname:
            raise ValueError(f"fabric URL {base_url!r} has no host")
        self.base_url = base_url.rstrip("/")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.prefix = parts.path.rstrip("/")
        self.timeout = timeout

    def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, str]:
        """One round trip; returns ``(status, body_text)``.

        Connection-level problems (refused, reset, DNS, timeout) raise
        :class:`FabricError`; HTTP error *statuses* are returned to the
        caller, who knows which ones are meaningful (a 404 artifact miss
        is normal, a 404 sweep is not).
        """
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request(method, self.prefix + path, body=body, headers=headers)
            response = conn.getresponse()
            return response.status, response.read().decode("utf-8")
        except (OSError, socket.timeout, http.client.HTTPException) as exc:
            raise FabricError(
                f"{method} {self.base_url}{path} failed: {exc}"
            ) from exc
        finally:
            conn.close()

    def _raise_for(self, method: str, path: str, status: int, text: str) -> None:
        raise FabricError(f"{method} {self.base_url}{path} -> HTTP {status}: {text}")

    def post_json(self, path: str, payload: dict) -> dict:
        status, text = self.request("POST", path, payload)
        if status != 200:
            self._raise_for("POST", path, status, text)
        return json.loads(text)

    def get_json(self, path: str) -> dict:
        status, text = self.request("GET", path)
        if status != 200:
            self._raise_for("GET", path, status, text)
        return json.loads(text)

    def get_json_or_none(self, path: str) -> dict | None:
        """Like :meth:`get_json` but a 404 is an answer, not an error."""
        status, text = self.request("GET", path)
        if status == 404:
            return None
        if status != 200:
            self._raise_for("GET", path, status, text)
        return json.loads(text)

    def get_lines(self, path: str) -> list[dict]:
        """Fetch a JSONL endpoint as a list of parsed records."""
        status, text = self.request("GET", path)
        if status != 200:
            self._raise_for("GET", path, status, text)
        return [json.loads(line) for line in text.splitlines() if line.strip()]
