"""The session-side fabric client.

:class:`FabricClient` turns a batch of :class:`~repro.sim.api.RunRequest`
into a sweep submission, follows the sweep to completion, and hands back
outcomes in batch order — the same contract as
:meth:`repro.sim.engine.SweepEngine.run`, which is what lets
``Session(execution=ExecutionPolicy(fabric=...))`` swap the engine out
from under ``sweep()`` without callers noticing.

While waiting, the client polls two endpoints with different trust:

* ``GET /v1/sweeps/<id>/events`` is **best-effort narration** — each new
  record is replayed into the session's observer pipeline (progress lines,
  event logs) via the ``emit`` callback.  Delivery is at-least-once: after
  a scheduler restart the regenerated stream may repeat, so ``queued`` and
  terminal events are deduplicated per batch index before emission.
* ``GET /v1/sweeps/<id>`` is **authoritative** — completion is decided by
  status counts, never by events, and the final outcomes are fetched with
  ``?outcomes=1`` in one shot.

Scheduler unreachability mid-sweep (a crash/restart window) is not an
error: the sweep lives in the scheduler's durable queue, so the client
just keeps polling until ``give_up_after`` seconds of continuous silence.
"""

from __future__ import annotations

import dataclasses
import time
import uuid
from typing import Callable, Sequence

from repro.fabric.transport import (
    FabricError,
    RetryingTransport,
    TransportPolicy,
)
from repro.fabric.wire import decode_outcome, envelope
from repro.sim.api import RunFailure, RunOutcome, RunRequest, _rebrand
from repro.sim.events import QUEUED, TERMINAL_EVENTS, RunEvent

#: Default continuous-unreachability budget before a sweep is abandoned.
DEFAULT_GIVE_UP_AFTER = 300.0


class FabricClient:
    """Submit batches to a fabric scheduler and await their outcomes."""

    def __init__(
        self,
        url: str,
        *,
        execution=None,
        poll_interval: float = 0.2,
        request_timeout: float = 10.0,
        give_up_after: float = DEFAULT_GIVE_UP_AFTER,
        transport_policy: TransportPolicy | None = None,
    ) -> None:
        if transport_policy is None:
            transport_policy = (
                getattr(execution, "transport", None) or TransportPolicy()
            )
        self.transport_policy = transport_policy
        self.transport = RetryingTransport(
            url, timeout=request_timeout, policy=transport_policy
        )
        self.execution = execution
        self.poll_interval = poll_interval
        self.give_up_after = give_up_after
        self._closed = False

    def close(self) -> None:
        """Idempotent; connections are per-request, so this only marks the
        client unusable for symmetry with :meth:`Session.close`."""
        self._closed = True

    # ------------------------------------------------------------ submission

    def submit(self, requests: Sequence[RunRequest]) -> dict:
        """``POST /v1/sweeps``; returns the scheduler's reply (sweep id,
        per-cell keys, total).

        Each submission carries a fresh idempotency token, which makes the
        POST safe to retry through a lost response: the scheduler resolves
        the re-send to the sweep the first delivery created instead of
        enqueueing a twin batch.
        """
        execution = (
            self.execution.to_dict() if self.execution is not None else None
        )
        payload = envelope(
            requests=[request.to_dict() for request in requests],
            execution=execution,
            token=uuid.uuid4().hex,
        )
        return self.transport.post_json("/v1/sweeps", payload, idempotent=True)

    # -------------------------------------------------------------- the wait

    def run_many(
        self,
        requests: Sequence[RunRequest],
        *,
        emit: Callable[[RunEvent], None] | None = None,
    ) -> list[RunOutcome]:
        """Submit ``requests`` and block until every cell settles.

        ``emit`` receives replayed scheduler events (already deduplicated);
        pass :meth:`SweepEngine.emit_event` to feed the session's observers.
        """
        if self._closed:
            raise FabricError("FabricClient is closed")
        requests = list(requests)
        if not requests:
            return []
        reply = self.submit(requests)
        sweep_id = reply["sweep_id"]
        self._follow(sweep_id, emit)
        status = self._status(sweep_id, outcomes=True)
        outcomes = [decode_outcome(o) for o in status["outcomes"]]
        return [
            self._localize(request, outcome)
            for request, outcome in zip(requests, outcomes)
        ]

    def _follow(self, sweep_id: str, emit) -> None:
        since = 0
        emitted_once: set[tuple[str, int]] = set()
        last_contact = time.monotonic()
        while True:
            try:
                if emit is not None:
                    since = self._drain_events(sweep_id, since, emit, emitted_once)
                status = self._status(sweep_id)
            except FabricError:
                if time.monotonic() - last_contact >= self.give_up_after:
                    raise FabricError(
                        f"scheduler unreachable for {self.give_up_after:g}s "
                        f"while waiting on {sweep_id}"
                    ) from None
                time.sleep(self.poll_interval)
                continue
            last_contact = time.monotonic()
            if status["complete"]:
                if emit is not None:
                    # Pick up the terminal events the final poll may have won.
                    self._drain_events(sweep_id, since, emit, emitted_once)
                return
            time.sleep(self.poll_interval)

    def _drain_events(
        self,
        sweep_id: str,
        since: int,
        emit,
        emitted_once: set[tuple[str, int]],
    ) -> int:
        records = self.transport.get_lines(
            f"/v1/sweeps/{sweep_id}/events?since={since}"
        )
        for record in records:
            since = int(record["seq"]) + 1
            kind = record.get("kind", "")
            # At-least-once wire delivery, exactly-once observer semantics
            # for the events observers *count*: each index is queued once
            # and terminates once, no matter how often a restarted
            # scheduler re-narrates history.
            if kind == QUEUED or kind in TERMINAL_EVENTS:
                dedup = (
                    (QUEUED, record["index"])
                    if kind == QUEUED
                    else ("terminal", record["index"])
                )
                if dedup in emitted_once:
                    continue
                emitted_once.add(dedup)
            emit(RunEvent.from_dict(record))
        return since

    def _status(self, sweep_id: str, *, outcomes: bool = False) -> dict:
        suffix = "?outcomes=1" if outcomes else ""
        return self.transport.get_json(f"/v1/sweeps/{sweep_id}{suffix}")

    # ------------------------------------------------------------- localizing

    @staticmethod
    def _localize(request: RunRequest, outcome: RunOutcome) -> RunOutcome:
        """Stamp the requester's identity onto a fabric outcome.

        Keys are content-addressed, so another submitter's identically-shaped
        but differently-named request may have produced the stored result;
        the names on what we return must be ours (the cache does the same
        via ``_rebrand``).
        """
        if isinstance(outcome, RunFailure):
            if (
                outcome.workload == request.workload.name
                and outcome.config == request.config.name
                and outcome.attack_model is request.attack_model
            ):
                return outcome
            return dataclasses.replace(
                outcome,
                workload=request.workload.name,
                config=request.config.name,
                attack_model=request.attack_model,
            )
        return _rebrand(outcome, request)
