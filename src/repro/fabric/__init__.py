"""The distributed sweep fabric: scheduler service + worker agents.

A sweep that outgrows one machine goes through three cooperating pieces,
all speaking the versioned HTTP/JSON API in :mod:`repro.fabric.wire` over
the Python standard library only (``http.server`` / ``http.client`` — no
new dependencies):

* :mod:`repro.fabric.scheduler` — the scheduler service.  Accepts sweep
  submissions (``POST /v1/sweeps``), hands cells to workers under
  heartbeat-renewed leases (``POST /v1/cells/claim``), re-queues expired
  leases, drives server-side retries with the submitter's
  :class:`~repro.sim.engine.RetryPolicy`, and fronts the shared artifact
  store (a :class:`~repro.sim.cache.ResultCache` keyed by content hash).
* :mod:`repro.fabric.queue` — the durable cell queue behind the scheduler:
  an append-only JSONL log (the :class:`~repro.sim.cache.SweepJournal`
  format, generalized) that survives ``kill -9`` and resumes without
  re-running completed cells.
* :mod:`repro.fabric.worker` — the worker agent: claims cells, answers
  them from its local cache or the scheduler's artifact store, executes
  misses through a one-cell :class:`~repro.sim.engine.SweepEngine` (same
  timeout/hang/crash classification as local runs), heartbeats while
  executing, and reports completion.
* :mod:`repro.fabric.client` — the session-side client.
  ``Session(execution=ExecutionPolicy(fabric="http://host:8700"))`` routes
  ``sweep()``/``run_many()`` through it transparently; scheduler events
  stream back into the session's normal observer pipeline.

Start a fabric from the command line::

    repro fabric serve --port 8700 --cache-dir /shared/cache
    repro fabric work http://scheduler:8700        # on each worker host
    repro sweep --fabric http://scheduler:8700     # submit the evaluation
"""

from repro.fabric.client import FabricClient, FabricError
from repro.fabric.queue import CellRecord, FabricQueue
from repro.fabric.scheduler import FabricScheduler, serve
from repro.fabric.wire import WIRE_SCHEMA_VERSION, decode_outcome, encode_outcome
from repro.fabric.worker import WorkerAgent

__all__ = [
    "CellRecord",
    "FabricClient",
    "FabricError",
    "FabricQueue",
    "FabricScheduler",
    "WIRE_SCHEMA_VERSION",
    "WorkerAgent",
    "decode_outcome",
    "encode_outcome",
    "serve",
]
