"""The scheduler's durable cell queue.

A :class:`FabricQueue` generalizes the :class:`~repro.sim.cache.SweepJournal`
idea — an append-only JSONL log keyed by content-addressed cache key — into
a crash-recoverable job queue.  Four record kinds share the log::

    {"kind": "sweep",   "sweep_id": ..., "cells": [key, ...], "retry": {...},
     "timeout": ..., "schema": 1}
    {"kind": "cell",    "key": ..., "request": {...RunRequest...},
     "retry": {...RetryPolicy...}, "timeout": ..., "schema": 1}
    {"kind": "attempt", "key": ..., "attempts": n, "failure": {...}, "schema": 1}
    {"kind": "done",    "key": ..., "outcome": {"kind": ..., "payload": ...},
     "schema": 1}
    {"kind": "token",   "key": ..., "token": ..., "decision": ..., "schema": 1}

Every mutation appends one flushed line, so a ``kill -9`` at any instant
loses at most the line being written — and :meth:`load` skips torn trailing
lines exactly like the sweep journal.  **Leases are deliberately not
journalled**: a lease is a promise by a live worker, and after a scheduler
crash no such promise is trustworthy, so non-``done`` cells simply reload
as ``pending`` and get handed out again.  ``done`` cells reload as done —
the crash-restart acceptance test in ``tests/fabric`` asserts completed
cells are never re-executed.

Failed attempts are journalled (``attempt`` records) so server-side retry
budgets survive restarts too: a cell that crashed twice before the crash
does not get a fresh budget after it.  ``token`` records make completion
delivery idempotent across duplicate network deliveries *and* restarts: a
completion carrying an already-seen token replays the recorded decision
without touching the cell again (see :meth:`complete`).

**Compaction** keeps the journal bounded: the append-only log grows with
every attempt, heartbeat-expiry, and duplicate delivery, but the live
state it encodes does not.  :meth:`compact` rewrites the log as one
snapshot — the minimal record set that reloads to the current in-memory
state — written to a temporary file, fsynced, and atomically
``os.replace``-d over the journal.  A crash at any instant during
compaction therefore leaves either the complete old journal (the tmp file
is garbage and is deleted on the next load) or the complete new one;
there is no torn intermediate.  ``compact_every`` auto-compacts after
that many appended records.

The queue itself is not thread-safe; the scheduler serializes access with
one lock.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.fabric.wire import (
    CELL_DONE,
    CELL_LEASED,
    CELL_PENDING,
    decode_outcome,
    encode_outcome,
    envelope,
)
from repro.sim.api import FAILURE_CRASH, RunFailure, RunOutcome
from repro.sim.engine import RetryPolicy


@dataclass
class Lease:
    """An in-memory (never journalled) claim on a cell by one worker."""

    worker: str
    deadline: float  # monotonic seconds


@dataclass
class CellRecord:
    """One unit of work: a request body plus its queue bookkeeping."""

    key: str
    request: dict
    retry: RetryPolicy
    timeout: float | None = None
    state: str = CELL_PENDING
    attempts: int = 0
    outcome: RunOutcome | None = None
    last_failure: RunFailure | None = None
    lease: Lease | None = None
    #: Idempotency-token → recorded decision, for duplicate completions.
    tokens: dict[str, str] = field(default_factory=dict)

    @property
    def done(self) -> bool:
        return self.state == CELL_DONE


@dataclass
class SweepRecord:
    """A submitted batch: ordered cell keys (duplicates allowed — two equal
    requests in one batch share a key and a result).  ``token`` is the
    submitter's idempotency token, so a duplicated submission resolves to
    this sweep instead of creating a twin."""

    sweep_id: str
    cells: list[str] = field(default_factory=list)
    token: str | None = None


def worker_lost_failure(cell: CellRecord, worker: str) -> RunFailure:
    """The synthetic failure recorded when a lease expires: the worker
    stopped heartbeating (crashed host, OOM-killed agent, network split),
    which is exactly the environmental-``crash`` case of the taxonomy."""
    request = cell.request
    return RunFailure(
        workload=request["workload"]["name"],
        config=request["config"]["name"],
        attack_model=_attack_model(request),
        error_type="WorkerLost",
        message=f"lease by worker {worker!r} expired without completion",
        kind=FAILURE_CRASH,
        attempts=cell.attempts,
    )


def _attack_model(request: dict):
    from repro.common.config import AttackModel

    return AttackModel(request["attack_model"])


class FabricQueue:
    """Durable, restart-safe queue of sweep cells (see module docstring).

    ``compact_every`` auto-compacts the journal after that many appended
    records (``None`` disables auto-compaction; :meth:`compact` can still
    be called explicitly).
    """

    def __init__(self, path: str | Path, *, compact_every: int | None = None) -> None:
        if compact_every is not None and compact_every < 1:
            raise ValueError(f"compact_every must be >= 1, got {compact_every}")
        self.path = Path(path)
        self.compact_every = compact_every
        self.cells: dict[str, CellRecord] = {}
        self.sweeps: dict[str, SweepRecord] = {}
        self.compactions = 0
        self._appends_since_compact = 0
        self._fh = None

    @property
    def _compact_tmp(self) -> Path:
        return self.path.with_name(self.path.name + ".compact")

    # ------------------------------------------------------------- durability

    def load(self) -> int:
        """Replay the log; returns how many records were applied.

        Records are applied in append order, so the last ``done`` for a key
        wins and ``attempt`` counts accumulate.  Torn/corrupt lines (a crash
        mid-write) are skipped.  Leased state is *not* restored — every
        non-done cell comes back ``pending``.  A leftover compaction tmp
        file — a crash mid-snapshot — is discarded: the journal itself is
        still complete, which is exactly why the snapshot is written to the
        side and renamed atomically.
        """
        if self._compact_tmp.exists():
            self._compact_tmp.unlink()
        if not self.path.exists():
            return 0
        applied = 0
        with self.path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    self._apply(record)
                except (ValueError, KeyError, TypeError):
                    continue  # torn trailing line from a crash mid-write
                applied += 1
        return applied

    def _apply(self, record: dict) -> None:
        kind = record["kind"]
        if kind == "cell":
            key = record["key"]
            if key not in self.cells:
                self.cells[key] = CellRecord(
                    key=key,
                    request=record["request"],
                    retry=RetryPolicy.from_dict(record["retry"]),
                    timeout=record.get("timeout"),
                )
        elif kind == "sweep":
            sweep = SweepRecord(
                record["sweep_id"], list(record["cells"]), token=record.get("token")
            )
            self.sweeps[sweep.sweep_id] = sweep
        elif kind == "attempt":
            cell = self.cells[record["key"]]
            cell.attempts = max(cell.attempts, int(record["attempts"]))
            failure = record.get("failure")
            if failure is not None:
                cell.last_failure = RunFailure.from_dict(failure)
        elif kind == "done":
            cell = self.cells[record["key"]]
            cell.state = CELL_DONE
            cell.lease = None
            cell.outcome = decode_outcome(record["outcome"])
        elif kind == "token":
            cell = self.cells[record["key"]]
            cell.tokens[record["token"]] = record["decision"]
        else:
            raise ValueError(f"unknown queue record kind {kind!r}")

    def _append(self, record: dict) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        self._appends_since_compact += 1
        if (
            self.compact_every is not None
            and self._appends_since_compact >= self.compact_every
        ):
            self.compact()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------- compaction

    def snapshot_records(self) -> list[dict]:
        """The minimal record list that reloads to the current state:
        per cell its definition, one folded ``attempt`` (current count +
        last failure), its ``done`` outcome, and its seen tokens; then the
        sweep membership records.  Leases are in-memory promises and are
        deliberately not snapshotted (same rule as :meth:`load`)."""
        records: list[dict] = []
        for cell in self.cells.values():
            records.append(
                envelope(
                    kind="cell",
                    key=cell.key,
                    request=cell.request,
                    retry=cell.retry.to_dict(),
                    timeout=cell.timeout,
                )
            )
            if cell.attempts:
                records.append(
                    envelope(
                        kind="attempt",
                        key=cell.key,
                        attempts=cell.attempts,
                        failure=(
                            cell.last_failure.to_dict()
                            if cell.last_failure is not None
                            else None
                        ),
                    )
                )
            if cell.done:
                records.append(
                    envelope(
                        kind="done",
                        key=cell.key,
                        outcome=encode_outcome(cell.outcome),
                    )
                )
            for token, decision in cell.tokens.items():
                records.append(
                    envelope(
                        kind="token", key=cell.key, token=token, decision=decision
                    )
                )
        for sweep in self.sweeps.values():
            records.append(
                envelope(
                    kind="sweep",
                    sweep_id=sweep.sweep_id,
                    cells=sweep.cells,
                    token=sweep.token,
                )
            )
        return records

    def compact(self) -> int:
        """Atomically replace the journal with its snapshot; returns the
        number of records written.

        Crash-consistency argument: the snapshot is written to a sibling
        tmp file and fsynced *before* ``os.replace`` swaps it in.  A crash
        during the write leaves the old journal untouched (the torn tmp is
        deleted on the next :meth:`load`); ``os.replace`` itself is atomic
        on POSIX; a crash immediately after it leaves the complete new
        journal.  Either way a restart recovers the full queue state.
        """
        records = self.snapshot_records()
        tmp = self._compact_tmp
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with tmp.open("w") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        os.replace(tmp, self.path)
        self._appends_since_compact = 0
        self.compactions += 1
        return len(records)

    # ------------------------------------------------------------- submission

    def submit(
        self,
        sweep_id: str,
        cells: list[tuple[str, dict]],
        *,
        retry: RetryPolicy,
        timeout: float | None = None,
        token: str | None = None,
    ) -> SweepRecord:
        """Enqueue a sweep: journal its ordered key list and any cells not
        already known.  Cells whose key is already ``done`` stay done — the
        new sweep simply observes the settled outcome (dedup across sweeps
        is the artifact store working as intended).  ``token`` is the
        submitter's idempotency token, journalled with the sweep so
        duplicate submissions dedup across restarts too.
        """
        if sweep_id in self.sweeps:
            raise ValueError(f"sweep {sweep_id!r} already submitted")
        for key, request in cells:
            if key not in self.cells:
                self.cells[key] = CellRecord(
                    key=key, request=request, retry=retry, timeout=timeout
                )
                self._append(
                    envelope(
                        kind="cell",
                        key=key,
                        request=request,
                        retry=retry.to_dict(),
                        timeout=timeout,
                    )
                )
        sweep = SweepRecord(sweep_id, [key for key, _ in cells], token=token)
        self.sweeps[sweep_id] = sweep
        self._append(
            envelope(
                kind="sweep",
                sweep_id=sweep_id,
                cells=sweep.cells,
                retry=retry.to_dict(),
                timeout=timeout,
                token=token,
            )
        )
        return sweep

    def sweep_by_token(self, token: str) -> SweepRecord | None:
        """The sweep a submission token already created, if any."""
        for sweep in self.sweeps.values():
            if sweep.token is not None and sweep.token == token:
                return sweep
        return None

    # ---------------------------------------------------------------- leasing

    def claim(
        self, worker: str, *, lease_seconds: float, now: float
    ) -> CellRecord | None:
        """Lease the first pending cell to ``worker`` (FIFO by submission
        order, which preserves rough batch locality), or ``None`` if no
        cell is pending."""
        for cell in self.cells.values():
            if cell.state == CELL_PENDING:
                cell.state = CELL_LEASED
                cell.attempts += 1
                cell.lease = Lease(worker=worker, deadline=now + lease_seconds)
                return cell
        return None

    def heartbeat(
        self, key: str, worker: str, *, lease_seconds: float, now: float
    ) -> bool:
        """Renew ``worker``'s lease on ``key``; ``False`` if the lease is no
        longer theirs (expired and re-queued, or completed elsewhere)."""
        cell = self.cells.get(key)
        if cell is None or cell.lease is None or cell.lease.worker != worker:
            return False
        cell.lease.deadline = now + lease_seconds
        return True

    def expire_leases(self, *, now: float) -> list[CellRecord]:
        """Re-queue (or fail out) every cell whose lease deadline passed.

        Each expiry is journalled as a crash-kind ``attempt``; the cell's
        own retry policy then decides between ``pending`` again and a
        terminal ``WorkerLost`` failure.  Returns the affected cells.
        """
        expired = []
        for cell in self.cells.values():
            if (
                cell.state == CELL_LEASED
                and cell.lease is not None
                and cell.lease.deadline <= now
            ):
                failure = worker_lost_failure(cell, cell.lease.worker)
                cell.lease = None
                cell.last_failure = failure
                self._append(
                    envelope(
                        kind="attempt",
                        key=cell.key,
                        attempts=cell.attempts,
                        failure=failure.to_dict(),
                    )
                )
                if cell.retry.should_retry(FAILURE_CRASH, cell.attempts):
                    cell.state = CELL_PENDING
                else:
                    self._settle(cell, failure)
                expired.append(cell)
        return expired

    # ------------------------------------------------------------- completion

    def complete(
        self, key: str, outcome: RunOutcome, *, token: str | None = None
    ) -> str:
        """Apply a worker-reported terminal outcome for ``key``.

        Returns the decision taken: ``"done"`` (outcome settled),
        ``"retry"`` (transient failure with budget left — cell re-queued),
        or ``"stale"`` (the cell already settled; duplicate completions are
        expected — the simulation is deterministic, so any completion is as
        good as any other, and at-least-once delivery is fine).

        ``token`` is the delivery's idempotency token: a completion whose
        token was already processed **replays the recorded decision**
        without touching the cell — a duplicated network delivery can
        never double-settle, double-count an attempt, or burn retry
        budget.  Tokens are journalled, so the guarantee holds across
        scheduler restarts too.
        """
        cell = self.cells.get(key)
        if cell is None:
            raise KeyError(f"unknown cell {key!r}")
        if token is not None and token in cell.tokens:
            return cell.tokens[token]
        if cell.done:
            return "stale"
        decision = "done"
        if isinstance(outcome, RunFailure):
            cell.last_failure = outcome
            self._append(
                envelope(
                    kind="attempt",
                    key=key,
                    attempts=cell.attempts,
                    failure=outcome.to_dict(),
                )
            )
            if cell.retry.should_retry(outcome.kind, cell.attempts):
                cell.state = CELL_PENDING
                cell.lease = None
                decision = "retry"
        if decision == "done":
            self._settle(cell, outcome)
        if token is not None:
            cell.tokens[token] = decision
            self._append(
                envelope(kind="token", key=key, token=token, decision=decision)
            )
        return decision

    def _settle(self, cell: CellRecord, outcome: RunOutcome) -> None:
        if isinstance(outcome, RunFailure) and outcome.attempts != cell.attempts:
            # The worker only knows its own attempt; the queue knows them all.
            outcome = dataclasses.replace(outcome, attempts=max(cell.attempts, 1))
        cell.state = CELL_DONE
        cell.lease = None
        cell.outcome = outcome
        self._append(
            envelope(kind="done", key=cell.key, outcome=encode_outcome(outcome))
        )

    # ----------------------------------------------------------------- status

    def sweep_outcomes(self, sweep_id: str) -> list[RunOutcome | None]:
        """Per-cell outcomes of a sweep in submission order (``None`` for
        cells still pending/leased)."""
        sweep = self.sweeps[sweep_id]
        return [self.cells[key].outcome for key in sweep.cells]

    def sweep_counts(self, sweep_id: str) -> dict[str, int]:
        sweep = self.sweeps[sweep_id]
        counts = {CELL_PENDING: 0, CELL_LEASED: 0, CELL_DONE: 0}
        for key in sweep.cells:
            counts[self.cells[key].state] += 1
        return counts

    def pending_count(self) -> int:
        return sum(1 for c in self.cells.values() if c.state == CELL_PENDING)
