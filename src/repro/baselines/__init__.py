"""Competing published protection schemes, as first-class baselines.

The paper evaluates SDO only against STT variants and an unsafe baseline
(Table II).  This package adds the two most relevant published alternatives
behind the same :class:`~repro.pipeline.protection.ProtectionScheme` hook
interface, so the whole figure matrix — and the security harnesses — can
compare them head-to-head:

* :class:`~repro.baselines.specbox.SpecBoxProtection` — label-based
  transparent speculation (SpecBox, arXiv 2107.08367): speculative loads
  execute, but their cache side effects are confined to a speculative
  buffer until commit.
* :class:`~repro.baselines.delay_on_miss.DelayOnMissProtection` —
  delay-on-miss (Sakalis et al. / InvisiSpec-family): speculative loads
  that hit the L1 proceed; misses are delayed to the visibility point.
* :class:`~repro.baselines.fence.FenceProtection` — fence-on-every-load:
  every speculative load is delayed to its visibility point, the
  worst-case conservative scheme every other baseline improves on.
"""

from repro.baselines.delay_on_miss import DelayOnMissProtection
from repro.baselines.fence import FenceProtection
from repro.baselines.specbox import SpecBoxProtection

__all__ = ["DelayOnMissProtection", "FenceProtection", "SpecBoxProtection"]
