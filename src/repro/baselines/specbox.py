"""SpecBox-style label-based transparent speculation (arXiv 2107.08367).

Every load issued before its visibility point executes *transparently*: it
reads real data with its real address-dependent timing, but all cache-state
side effects are confined to the hierarchy's per-core speculative buffer.
When the load commits, the buffered line is released into the caches (the
fill becomes architecturally visible); when it squashes, the entry is
dropped and no cache-state trace remains — which is what defeats
flush+reload receivers.

Labels are propagated exactly like STT taint (we reuse the STT rename-time
taint plumbing and the untaint frontier), and a load's own speculation
status — ``is_root_safe(uop.seq)`` — decides between a normal and a
buffered issue.  Nothing is ever delayed and branch resolution is never
held, so the scheme's overhead is only the commit-time fills and the lost
warming from squashed wrong-path loads.

What transparency does *not* hide (deliberately modeled): the speculative
load still contends on ports, banks and MSHRs, and a DRAM access still
opens its row buffer.  The forward-interference harness
(``repro.security.forward_interference``) measures exactly that residue.
"""

from __future__ import annotations

from repro.common.config import AttackModel
from repro.pipeline.protection import IssueDecision, LoadIssueAction
from repro.pipeline.uop import DynInst
from repro.stt.protection import SttProtection


class SpecBoxProtection(SttProtection):
    """Transparent speculation behind the standard scheme interface."""

    def __init__(self, attack_model: AttackModel = AttackModel.SPECTRE) -> None:
        super().__init__(attack_model=attack_model, fp_transmitters=False)
        self.name = "SpecBox"

    # --- issue policy ---------------------------------------------------- #

    def load_issue_decision(self, uop: DynInst) -> IssueDecision:
        # The label query: is this load still speculative?  Its own seq is
        # the youngest root that matters — if the load has reached its
        # visibility point, every older label has too.
        if self.is_root_safe(uop.seq):
            return IssueDecision(LoadIssueAction.NORMAL)
        return IssueDecision(LoadIssueAction.BUFFERED)

    # --- implicit channels ------------------------------------------------ #

    def may_resolve_branch(self, uop: DynInst) -> bool:
        # SpecBox never delays resolution: wrong-path work squashes
        # immediately and its buffered lines are dropped below.
        return True

    # --- buffer lifecycle ------------------------------------------------- #

    def on_commit(self, uop: DynInst) -> None:
        if uop.is_load and uop.spec_buffered:
            self.stats.bump("spec_commits")
            self.core.hierarchy.release_speculative(uop.addr, self.core.cycle)

    def on_squash(self, uop: DynInst) -> None:
        if uop.is_load and uop.spec_buffered:
            self.stats.bump("spec_squashes")
            self.core.hierarchy.drop_speculative(uop.addr)
