"""Fence-on-every-load: the worst-case conservative baseline.

The classic software mitigation for Spectre-style attacks is to fence
every load out of the speculative shadow: no load may issue until it is
no longer speculative.  This is the pessimistic end-point of the design
space that delay-of-miss, STT and SDO all try to improve on — a load
issues only once every older branch has resolved, regardless of taint,
cache residence, or predicted level.

Implementation-wise this is :class:`DelayOnMissProtection` minus its
L1-hit escape hatch: the same root-safety test (all older control flow
resolved) gates the load, but a speculative load is *always* delayed to
its visibility point, even when the line is sitting in the L1.  Like
delay-on-miss it needs no taint bookkeeping beyond the untaint frontier,
so branches resolve normally and fast-forward stays safe.
"""

from __future__ import annotations

from repro.common.config import AttackModel
from repro.pipeline.protection import IssueDecision, LoadIssueAction
from repro.stt.protection import SttProtection


class FenceProtection(SttProtection):
    """Delay *every* speculative load to its visibility point."""

    def __init__(self, attack_model: AttackModel = AttackModel.SPECTRE):
        super().__init__(attack_model=attack_model, fp_transmitters=False)
        self.name = "Fence"

    def load_issue_decision(self, uop) -> IssueDecision:
        if self.is_root_safe(uop.seq):
            return IssueDecision(LoadIssueAction.NORMAL)
        # Counted via the ``protection.decisions.load_delay`` convention.
        return IssueDecision(LoadIssueAction.DELAY)

    def may_resolve_branch(self, uop) -> bool:
        # Branches resolve normally; only loads are gated.
        return True
