"""Delay-on-miss (Sakalis et al., ISCA'19 / the InvisiSpec family).

Speculative loads that *hit* the L1 proceed — an L1 hit reveals nothing
below the private L1 and is considered acceptable leakage by the scheme
(the known residual being replacement-state updates).  Speculative loads
that *miss* the L1 are delayed until they reach their visibility point,
exactly like an STT-delayed load; they then retry and issue normally.

"Speculative" is judged by the same visibility-point machinery STT uses
(the untaint frontier over the load's own sequence number), so the scheme
composes with both attack models: under *Spectre*, a load delays until all
older branches resolve; under *Futuristic*, until nothing older can squash.

Unlike STT, the decision is per-*residence* rather than per-taint: an
untainted speculative load that misses is delayed too, which is why
delay-on-miss is the most expensive baseline on miss-heavy workloads —
and why its L1-hit fast path is a secret-dependent behaviour divergence
the forward-interference harness can probe.
"""

from __future__ import annotations

from repro.common.config import AttackModel
from repro.pipeline.protection import IssueDecision, LoadIssueAction
from repro.pipeline.uop import DynInst
from repro.stt.protection import SttProtection


class DelayOnMissProtection(SttProtection):
    """Delay speculative L1 misses; let speculative L1 hits proceed."""

    def __init__(self, attack_model: AttackModel = AttackModel.SPECTRE) -> None:
        super().__init__(attack_model=attack_model, fp_transmitters=False)
        self.name = "DelayOnMiss"

    # --- issue policy ---------------------------------------------------- #

    def load_issue_decision(self, uop: DynInst) -> IssueDecision:
        if self.is_root_safe(uop.seq):
            return IssueDecision(LoadIssueAction.NORMAL)
        if self.core.hierarchy.line_in_l1(uop.addr):
            # A speculative L1 hit proceeds through the normal path: the
            # access stays inside the private L1 (no fills below it), which
            # is the scheme's accepted leakage surface.
            # (Bumped on an issuing — hence non-idle — cycle, so the count
            # is identical under the naive and fast-forwarding loops; the
            # per-retry delay side is counted by the core's
            # ``protection.decisions.load_delay`` convention instead.)
            self.stats.bump("dom_hits_allowed")
            return IssueDecision(LoadIssueAction.NORMAL)
        return IssueDecision(LoadIssueAction.DELAY)

    # --- implicit channels ------------------------------------------------ #

    def may_resolve_branch(self, uop: DynInst) -> bool:
        # Delay-on-miss does not gate branch resolution.
        return True
