"""Trace capture and replay: record an architectural trace once, replay it
through the timing pipeline many times.

Every cell of a paper-reproduction sweep that shares a (program, initial
memory, instruction budget) triple commits the *same* architectural
instruction stream — protection schemes and memory parameters change the
timing, never the committed semantics (the golden model guarantees it).
This package exploits that:

* :class:`TraceRecorder` / :func:`record_trace` run the functional ISS
  *standalone* (no timing model) and capture the committed stream —
  pc, opcode, fetch/branch outcome, load/store address, result value —
  into a compact, versioned, checksummed binary :class:`ArchTrace`.
* :class:`TraceStore` content-addresses traces on disk next to the
  :class:`~repro.sim.cache.ResultCache` (``<cache>/traces/``), keyed by
  :func:`trace_key` over exactly the architectural material.
* :class:`TraceCursor` plugs a trace into the core's golden-reference
  slot, so a replayed run verifies every commit against the recording
  instead of re-executing the functional model.
* :class:`TraceReplayer` / :func:`replay_execute` /
  :func:`replay_or_execute` produce :class:`~repro.sim.api.RunMetrics`
  **bit-identical** to a live run — the reference is pure validation and
  never feeds the timing model — falling back to live execution whenever
  the trace is missing, torn, or too short.

The trace schema is pinned by sdolint's ``cache-schema`` checker with its
own version-bump rule (``TRACE_SCHEMA_VERSION``), mirroring the result
cache and fabric wire schemas.
"""

from repro.replay.recorder import TraceRecorder, record_trace
from repro.replay.replayer import TraceReplayer, replay_execute, replay_or_execute
from repro.replay.store import TraceStore
from repro.replay.trace import (
    TRACE_SCHEMA_VERSION,
    ArchTrace,
    TraceCursor,
    TraceExhausted,
    TraceFormatError,
    trace_key,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "ArchTrace",
    "TraceCursor",
    "TraceExhausted",
    "TraceFormatError",
    "TraceRecorder",
    "TraceReplayer",
    "TraceStore",
    "record_trace",
    "replay_execute",
    "replay_or_execute",
    "trace_key",
]
