"""The architectural trace: format, content address, and golden cursor.

An :class:`ArchTrace` is the committed instruction stream of one program —
per instruction: pc, opcode, next pc, branch outcome, load/store address,
and the result value written to the destination register.  The stream is a
pure function of (program instructions, initial memory, instruction
budget): protection schemes, attack models, machine/memory parameters and
the cycle budget change *when* instructions commit, never *what* commits
(the golden model enforces exactly this).  :func:`trace_key` therefore
hashes only that architectural material, so one recording serves every
timing configuration of the same workload.

On-disk format (``to_bytes``/``from_bytes``), little-endian::

    magic "RPRT" | u16 version | u8 flags | u8 reserved | u32 count
    | u32 opcode-table length | u64 payload length | u32 crc32
    | opcode table (comma-separated names)
    | payload: opcodes[count] recflags[count] pcs[4*count]
               next_pcs[4*count] mem_addrs[8*count] results[8*count]

The length fields and the CRC-32 (over the header with the checksum field
excluded, plus table and payload) make torn or truncated files — and any
single flipped byte, header included — *detectable*: any violation raises
:class:`TraceFormatError`, which readers treat as a miss — replay then
falls back to live execution rather than verifying against garbage.
Opcodes are stored by name through a per-trace table, so the format
survives opcode-set evolution (an unknown name simply can never match).

``TRACE_SCHEMA_VERSION`` follows the result-cache/wire-schema rule, pinned
by sdolint's ``cache-schema`` checker: any change to the record layout or
the :func:`trace_key` material must bump it (old traces become unreadable
misses instead of wrong answers).
"""

from __future__ import annotations

import hashlib
import json
import struct
import sys
import weakref
import zlib
from array import array
from collections import namedtuple
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.isa.instructions import Opcode
from repro.isa.iss import CommittedOp

if TYPE_CHECKING:
    from repro.sim.api import RunRequest

#: Bump whenever the record layout, header, or :func:`trace_key` material
#: changes — pinned by the sdolint ``cache-schema`` checker (trace section).
TRACE_SCHEMA_VERSION = 1

_MAGIC = b"RPRT"
_HEADER = struct.Struct("<4sHBBIIQI")

#: Header flag: the recording ran to a committed HALT (a replayed run can
#: never outrun the trace).  Unset = the instruction budget cut it short.
_HDR_HALTED = 0x01

#: Per-record flags.
_REC_TAKEN = 0x01
_REC_HAS_MEM = 0x02
_REC_HAS_RESULT = 0x04
_REC_RESULT_FLOAT = 0x08

_F64 = struct.Struct("<d")
_I64 = struct.Struct("<q")

#: Bytes per record across the six parallel payload sections.
_RECORD_BYTES = 1 + 1 + 4 + 4 + 8 + 8


class TraceFormatError(ValueError):
    """A trace blob that cannot be decoded: bad magic, a newer schema,
    a torn/truncated payload, or a checksum mismatch."""


class TraceExhausted(RuntimeError):
    """A replayed run committed past the end of its trace (the recording
    was cut short by its budget) — the caller must fall back to live
    execution."""


#: What :meth:`TraceCursor.step` returns — the subset of
#: :class:`~repro.isa.iss.CommittedOp` the core's golden check reads.
GoldenRecord = namedtuple("GoldenRecord", ("seq", "pc", "opcode", "result"))


def _le(arr: array) -> array:
    """The array with little-endian byte order (no-op on LE hosts)."""
    if sys.byteorder != "little":  # pragma: no cover - LE-only CI hosts
        arr = array(arr.typecode, arr)
        arr.byteswap()
    return arr


def _float_bits(value: float) -> int:
    return _I64.unpack(_F64.pack(value))[0]


def _bits_float(bits: int) -> float:
    return _F64.unpack(_I64.pack(bits))[0]


class ArchTrace:
    """A committed-instruction stream in six parallel arrays.

    Kept columnar (``bytes`` + ``array``) rather than as a list of
    dataclasses so loading a 200k-instruction trace is a handful of buffer
    copies, not 200k allocations — the whole point of replay is that
    fetching the reference is much cheaper than re-interpreting it.
    """

    __slots__ = (
        "opcode_names",
        "opcodes",
        "recflags",
        "pcs",
        "next_pcs",
        "mem_addrs",
        "results",
        "halted",
    )

    def __init__(
        self,
        *,
        opcode_names: Sequence[str],
        opcodes: bytes,
        recflags: bytes,
        pcs: array,
        next_pcs: array,
        mem_addrs: array,
        results: array,
        halted: bool,
    ) -> None:
        self.opcode_names = tuple(opcode_names)
        self.opcodes = opcodes
        self.recflags = recflags
        self.pcs = pcs
        self.next_pcs = next_pcs
        self.mem_addrs = mem_addrs
        self.results = results
        self.halted = halted

    def __len__(self) -> int:
        return len(self.opcodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArchTrace):
            return NotImplemented
        return (
            self.opcode_names == other.opcode_names
            and self.opcodes == other.opcodes
            and self.recflags == other.recflags
            and self.pcs == other.pcs
            and self.next_pcs == other.next_pcs
            and self.mem_addrs == other.mem_addrs
            and self.results == other.results
            and self.halted == other.halted
        )

    # ----------------------------------------------------------- building

    @classmethod
    def from_records(cls, records: Iterable[CommittedOp], *, halted: bool) -> "ArchTrace":
        """Build a trace from an ISS commit stream (see ``Interpreter.run``)."""
        opcode_names = tuple(op.name for op in Opcode)
        opcode_index = {op: i for i, op in enumerate(Opcode)}
        opcodes = bytearray()
        recflags = bytearray()
        pcs = array("I")
        next_pcs = array("I")
        mem_addrs = array("q")
        results = array("q")
        for record in records:
            flags = 0
            mem_addr = 0
            raw_result = 0
            if record.taken:
                flags |= _REC_TAKEN
            if record.mem_addr is not None:
                flags |= _REC_HAS_MEM
                mem_addr = record.mem_addr
            if record.result is not None:
                flags |= _REC_HAS_RESULT
                if isinstance(record.result, float):
                    flags |= _REC_RESULT_FLOAT
                    raw_result = _float_bits(record.result)
                else:
                    raw_result = record.result
            opcodes.append(opcode_index[record.opcode])
            recflags.append(flags)
            pcs.append(record.pc)
            next_pcs.append(record.next_pc)
            mem_addrs.append(mem_addr)
            results.append(raw_result)
        return cls(
            opcode_names=opcode_names,
            opcodes=bytes(opcodes),
            recflags=bytes(recflags),
            pcs=pcs,
            next_pcs=next_pcs,
            mem_addrs=mem_addrs,
            results=results,
            halted=halted,
        )

    def record(self, index: int) -> CommittedOp:
        """Materialize record ``index`` as a :class:`CommittedOp` (tests,
        tools, differential checkers — not the replay hot path)."""
        flags = self.recflags[index]
        result: int | float | None = None
        if flags & _REC_HAS_RESULT:
            raw = self.results[index]
            result = _bits_float(raw) if flags & _REC_RESULT_FLOAT else raw
        name = self.opcode_names[self.opcodes[index]]
        return CommittedOp(
            seq=index,
            pc=self.pcs[index],
            opcode=Opcode[name],
            next_pc=self.next_pcs[index],
            taken=bool(flags & _REC_TAKEN),
            mem_addr=self.mem_addrs[index] if flags & _REC_HAS_MEM else None,
            result=result,
        )

    def records(self) -> list[CommittedOp]:
        return [self.record(i) for i in range(len(self))]

    # -------------------------------------------------------- serialization

    def to_bytes(self) -> bytes:
        table = ",".join(self.opcode_names).encode("utf-8")
        payload = b"".join(
            (
                self.opcodes,
                self.recflags,
                _le(self.pcs).tobytes(),
                _le(self.next_pcs).tobytes(),
                _le(self.mem_addrs).tobytes(),
                _le(self.results).tobytes(),
            )
        )
        # The CRC covers everything but itself — header included, so even a
        # flipped flags byte (e.g. the halted bit) cannot decode silently.
        bare = _HEADER.pack(
            _MAGIC,
            TRACE_SCHEMA_VERSION,
            _HDR_HALTED if self.halted else 0,
            0,
            len(self),
            len(table),
            len(payload),
            0,
        )[:-4]
        checksum = zlib.crc32(bare)
        checksum = zlib.crc32(table, checksum)
        checksum = zlib.crc32(payload, checksum) & 0xFFFFFFFF
        return bare + struct.pack("<I", checksum) + table + payload

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ArchTrace":
        if len(blob) < _HEADER.size:
            raise TraceFormatError(
                f"trace truncated: {len(blob)} bytes is shorter than the "
                f"{_HEADER.size}-byte header"
            )
        magic, version, flags, _, count, table_len, payload_len, checksum = (
            _HEADER.unpack_from(blob)
        )
        if magic != _MAGIC:
            raise TraceFormatError(f"bad trace magic {magic!r}")
        if version > TRACE_SCHEMA_VERSION:
            raise TraceFormatError(
                f"trace schema v{version} is newer than this build's "
                f"v{TRACE_SCHEMA_VERSION}"
            )
        if payload_len != count * _RECORD_BYTES:
            raise TraceFormatError(
                f"length header inconsistent: {count} records need "
                f"{count * _RECORD_BYTES} payload bytes, header says "
                f"{payload_len}"
            )
        header_size = _HEADER.size
        expected = header_size + table_len + payload_len
        if len(blob) != expected:
            raise TraceFormatError(f"trace torn: header promises {expected} bytes, got {len(blob)}")
        body = blob[header_size:]
        actual = zlib.crc32(blob[: header_size - 4])
        actual = zlib.crc32(body, actual) & 0xFFFFFFFF
        if actual != checksum:
            raise TraceFormatError("trace checksum mismatch (corrupt file)")
        table = body[:table_len].decode("utf-8")
        payload = body[table_len:]
        offset = 0

        def take(nbytes: int) -> bytes:
            nonlocal offset
            end = offset + nbytes
            chunk = payload[offset:end]
            offset = end
            return chunk

        opcodes = take(count)
        recflags = take(count)
        pcs = array("I")
        pcs.frombytes(take(4 * count))
        next_pcs = array("I")
        next_pcs.frombytes(take(4 * count))
        mem_addrs = array("q")
        mem_addrs.frombytes(take(8 * count))
        results = array("q")
        results.frombytes(take(8 * count))
        return cls(
            opcode_names=tuple(table.split(",")) if table else (),
            opcodes=opcodes,
            recflags=recflags,
            pcs=_le(pcs),
            next_pcs=_le(next_pcs),
            mem_addrs=_le(mem_addrs),
            results=_le(results),
            halted=bool(flags & _HDR_HALTED),
        )


#: Per-process memo for :func:`trace_key`: canonicalizing a whole program
#: costs milliseconds, and a sweep asks for the same program's key once per
#: cell.  Keyed by ``id(program)`` with a weakref guard (the finalizer
#: evicts the entry, so a recycled id can never alias a dead program).
#: Programs are treated as immutable everywhere (the result cache's
#: ``cache_key`` makes the same assumption).
_KEY_MEMO: dict[int, tuple["weakref.ref", dict[int, str]]] = {}


def trace_key(request: "RunRequest") -> str:
    """Content address of the architectural trace ``request`` commits.

    Deliberately a *strict subset* of the result-cache key: the program's
    instructions and initial memory plus the instruction budget.  Excluded
    — because they cannot change what commits, only when — are the
    protection config, attack model, machine/memory parameters, warm set,
    cycle budget, and ``check_golden``.  That exclusion is the whole
    record-once/replay-many win: every scheme × machine cell of a sweep
    over one workload shares a single trace.
    """
    from repro.sim.cache import _canonical

    program = request.workload.program
    budget = request.max_instructions
    entry = _KEY_MEMO.get(id(program))
    if entry is not None and entry[0]() is program:
        cached = entry[1].get(budget)
        if cached is not None:
            return cached
    material = {
        "schema": TRACE_SCHEMA_VERSION,
        "instructions": _canonical(program.instructions),
        "initial_memory": _canonical(program.initial_memory),
        "max_instructions": budget,
    }
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    key = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    try:
        if entry is not None and entry[0]() is program:
            entry[1][budget] = key
        else:
            ref = weakref.ref(
                program,
                lambda _, pid=id(program): _KEY_MEMO.pop(pid, None),
            )
            _KEY_MEMO[id(program)] = (ref, {budget: key})
    except TypeError:  # pragma: no cover - un-weakref-able program stand-in
        pass
    return key


class TraceCursor:
    """An :class:`ArchTrace` wearing the core's golden-reference protocol.

    ``step()`` yields successive :class:`GoldenRecord` entries; the core
    compares each against what it commits exactly as it would the ISS —
    same checks, same :class:`~repro.pipeline.core.GoldenModelMismatch` on
    divergence — so a replayed run is verified as strongly as a live
    golden-checked one, at a fraction of the per-commit cost.

    Raises :class:`TraceExhausted` if the run commits past the recording
    (only possible when the recording was budget-cut, i.e. not ``halted``).
    """

    __slots__ = (
        "trace",
        "_index",
        "_count",
        "_decode_opcodes",
        "_opcodes",
        "_recflags",
        "_pcs",
        "_results",
    )

    def __init__(self, trace: ArchTrace) -> None:
        self.trace = trace
        self._index = 0
        members = Opcode.__members__
        self._decode_opcodes = tuple(members.get(name) for name in trace.opcode_names)
        # step() runs once per committed instruction — bind the columns
        # directly so the hot path skips the trace-attribute indirection.
        self._count = len(trace.opcodes)
        self._opcodes = trace.opcodes
        self._recflags = trace.recflags
        self._pcs = trace.pcs
        self._results = trace.results

    @property
    def position(self) -> int:
        """How many commits have been verified so far."""
        return self._index

    def step(self) -> GoldenRecord:
        index = self._index
        if index >= self._count:
            raise TraceExhausted(
                f"run committed past the {self._count}-record trace "
                f"(recorded halted={self.trace.halted}); re-run live"
            )
        self._index = index + 1
        flags = self._recflags[index]
        result: int | float | None = None
        if flags & _REC_HAS_RESULT:
            raw = self._results[index]
            result = _bits_float(raw) if flags & _REC_RESULT_FLOAT else raw
        return GoldenRecord(
            index,
            self._pcs[index],
            self._decode_opcodes[self._opcodes[index]],
            result,
        )
