"""Capture an architectural trace by running the functional ISS standalone.

This is the ISS/timing split in action: recording needs *no* timing model
at all.  The :class:`~repro.isa.iss.Interpreter` — the same golden model a
live run steps at every commit — is simply run front to back and its
commit stream packed into an :class:`~repro.replay.trace.ArchTrace`.
Recording therefore costs one functional pass (orders of magnitude cheaper
than one timed cell), and the result serves every timing configuration
that shares the workload's :func:`~repro.replay.trace.trace_key`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.isa.iss import Interpreter
from repro.replay.trace import ArchTrace

if TYPE_CHECKING:
    from repro.isa.program import Program
    from repro.sim.api import RunRequest

#: Extra instructions recorded beyond the request budget.  The core's run
#: loop checks the budget once per cycle *after* committing up to
#: ``commit_width`` instructions, so a timed run can overshoot the budget
#: by at most one commit group; the margin (comfortably wider than any
#: commit width) guarantees the trace always covers the overshoot.
COMMIT_OVERSHOOT_MARGIN = 64


class TraceRecorder:
    """Records :class:`ArchTrace` objects for programs/requests."""

    def record_program(self, program: "Program", max_instructions: int) -> ArchTrace:
        """Run the ISS to HALT or the (margin-padded) budget; pack the
        commit stream."""
        interpreter = Interpreter(program)
        records = interpreter.run(max_instructions=max_instructions + COMMIT_OVERSHOOT_MARGIN)
        return ArchTrace.from_records(records, halted=interpreter.halted)

    def record(self, request: "RunRequest") -> ArchTrace:
        """The trace for ``request``'s workload under its instruction
        budget — the recording every cell sharing the request's
        :func:`~repro.replay.trace.trace_key` replays."""
        return self.record_program(request.workload.program, request.max_instructions)


def record_trace(request: "RunRequest") -> ArchTrace:
    """Module-level convenience over :meth:`TraceRecorder.record`."""
    return TraceRecorder().record(request)
