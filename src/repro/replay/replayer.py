"""Feed a recorded trace through the timing pipeline.

A replayed run builds exactly the machine a live run would —
:func:`~repro.sim.api.execute` with the same request, same protection
scheme, same hierarchy — but plugs a
:class:`~repro.replay.trace.TraceCursor` into the core's golden-reference
slot instead of the functional ISS.  The reference is pure validation:
wrong-path work is still executed and squashed, protection decisions are
still taken by the scheme, and every committed instruction is still
checked (against the recording instead of a re-interpretation).  The
produced :class:`~repro.sim.api.RunMetrics` are **bit-identical** to a
live run's; ``tests/replay/test_equivalence.py`` and the
``replay-equivalence`` CI job enforce this across a scheme × config ×
workload grid.

Fallback ladder (:func:`replay_or_execute`): a missing, torn, or corrupt
trace is a miss; a trace the run outruns (:class:`TraceExhausted` — the
recording was budget-cut) aborts the replay and re-runs live.  A
:class:`~repro.pipeline.core.GoldenModelMismatch`, by contrast, is *not*
swallowed — a checksum-valid trace that disagrees with the core is the
same correctness alarm a live golden check would raise.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.replay.store import TraceStore
from repro.replay.trace import ArchTrace, TraceCursor, TraceExhausted, trace_key

if TYPE_CHECKING:
    from repro.sim.api import RunMetrics, RunRequest


def replay_execute(request: "RunRequest", trace: ArchTrace) -> "RunMetrics":
    """Run ``request`` through the timing pipeline against ``trace``.

    Raises :class:`TraceExhausted` if the run commits past the recording
    and :class:`~repro.pipeline.core.GoldenModelMismatch` if the core
    diverges from it.
    """
    from repro.sim.api import execute

    return execute(request, golden=TraceCursor(trace))


def replay_or_execute(request: "RunRequest", store: "TraceStore | str | Path") -> "RunMetrics":
    """Replay ``request`` from ``store`` when possible, else run it live.

    The returned metrics are identical either way; the store only decides
    how much work producing them costs.
    """
    from repro.sim.api import execute

    if not isinstance(store, TraceStore):
        store = TraceStore(store)
    trace = store.get(trace_key(request))
    if trace is None:
        return execute(request)
    try:
        return replay_execute(request, trace)
    except TraceExhausted:
        return execute(request)


class TraceReplayer:
    """Replays requests against a :class:`TraceStore`, recording on miss.

    ``ensure(request)`` makes the store cover the request (recording the
    trace functionally if absent); ``replay(request)`` then produces the
    bit-identical metrics.  The sweep engine and the fabric worker both
    drive this ensure-then-replay shape.
    """

    def __init__(self, store: TraceStore) -> None:
        self.store = store

    def ensure(self, request: "RunRequest") -> str:
        """Record the request's trace into the store if missing; returns
        the trace key either way."""
        from repro.replay.recorder import record_trace

        key = trace_key(request)
        if not self.store.has(key):
            self.store.put(key, record_trace(request))
        return key

    def replay(self, request: "RunRequest") -> "RunMetrics":
        """``ensure`` + replay-or-live: never fails on store state alone."""
        self.ensure(request)
        return replay_or_execute(request, self.store)
