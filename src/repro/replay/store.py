"""Content-addressed on-disk trace store, kept alongside the result cache.

Layout mirrors :class:`~repro.sim.cache.ResultCache`: entries live under
``<root>/v<TRACE_SCHEMA_VERSION>/<key[:2]>/<key>.trace`` where the key is
:func:`~repro.replay.trace.trace_key` — so a schema bump orphans old
traces instead of misreading them, and the sharded layout stays ``ls``-able
at scale.  Writes are atomic (tempfile + rename) against concurrent
readers and crashing writers; a reader that does catch a torn, truncated,
or corrupt file gets a **miss** (the format's length header and CRC make
that detectable), never a wrong trace — the caller then records afresh or
runs live.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro.replay.trace import (
    TRACE_SCHEMA_VERSION,
    ArchTrace,
    TraceFormatError,
)


class TraceStore:
    """Filesystem map from :func:`~repro.replay.trace.trace_key` to
    :class:`ArchTrace`."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / f"v{TRACE_SCHEMA_VERSION}" / key[:2] / f"{key}.trace"

    def get(self, key: str) -> ArchTrace | None:
        """The stored trace, or ``None`` on a miss *or* any detectable
        corruption (torn write, truncation, checksum failure)."""
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            return ArchTrace.from_bytes(blob)
        except TraceFormatError:
            return None

    def put(self, key: str, trace: ArchTrace) -> Path:
        """Store ``trace`` under ``key``; atomic against readers."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(trace.to_bytes())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def has(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        version_dir = self.root / f"v{TRACE_SCHEMA_VERSION}"
        if not version_dir.is_dir():
            return 0
        return sum(1 for _ in version_dir.glob("*/*.trace"))
