"""Figure 6: execution time normalized to Unsafe.

The paper's main result: per SPEC2017 benchmark, the execution time of STT
and every STT+SDO variant, normalized to the insecure baseline, for both
attack models, with averages on the right.  The headline numbers derived
from it: Hybrid improves stand-alone STT by ~44.4%/50.1% (vs STT{ld} /
STT{ld+fp}) in the Spectre model, Static L2 by ~36.3%/55.1% in the
Futuristic model, and Perfect bounds the technique at ~51-66%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.common.config import AttackModel
from repro.eval.report import geometric_mean, render_table, warn_unhalted
from repro.sim.api import RunMetrics
from repro.sim.configs import EVALUATED_CONFIGS

if TYPE_CHECKING:
    from repro.sim.api import Session
    from repro.workloads.workload import Workload


@dataclass
class Figure6:
    """Normalized execution times: ``data[model][config][workload]``."""

    data: dict[AttackModel, dict[str, dict[str, float]]] = field(default_factory=dict)
    workloads: tuple[str, ...] = ()
    configs: tuple[str, ...] = ()

    def average(self, model: AttackModel, config: str) -> float:
        """Geometric-mean normalized execution time across the suite."""
        per_workload = self.data[model][config]
        return geometric_mean([per_workload[w] for w in self.workloads])

    def overhead(self, model: AttackModel, config: str) -> float:
        """Average overhead vs. Unsafe, as a fraction (0.042 = 4.2%)."""
        return self.average(model, config) - 1.0

    def improvement_over(self, model: AttackModel, config: str, baseline: str) -> float:
        """The paper's headline metric: by what fraction ``config`` reduces
        ``baseline``'s overhead (e.g. Hybrid vs STT{ld})."""
        base = self.overhead(model, baseline)
        own = self.overhead(model, config)
        if base <= 0:
            return 0.0
        return (base - own) / base

    def render(self, model: AttackModel) -> str:
        headers = ["benchmark"] + list(self.configs)
        rows = []
        for workload in self.workloads:
            rows.append(
                [workload]
                + [self.data[model][config][workload] for config in self.configs]
            )
        rows.append(
            ["average (geomean)"]
            + [self.average(model, config) for config in self.configs]
        )
        return render_table(
            headers,
            rows,
            title=f"Figure 6 ({model.value} model): execution time normalized to Unsafe",
        )


def build_figure6(results: list[RunMetrics]) -> Figure6:
    """Assemble Figure 6 from a full sweep (must include Unsafe runs)."""
    warn_unhalted(results, "Figure 6")
    baselines: dict[tuple[AttackModel, str], RunMetrics] = {}
    for metrics in results:
        if metrics.config == "Unsafe":
            baselines[(metrics.attack_model, metrics.workload)] = metrics

    figure = Figure6()
    workloads: list[str] = []
    configs: list[str] = []
    for metrics in results:
        if metrics.config == "Unsafe":
            continue
        key = (metrics.attack_model, metrics.workload)
        if key not in baselines:
            raise ValueError(f"no Unsafe baseline for {key}")
        normalized = metrics.normalized_to(baselines[key])
        model_data = figure.data.setdefault(metrics.attack_model, {})
        model_data.setdefault(metrics.config, {})[metrics.workload] = normalized
        if metrics.workload not in workloads:
            workloads.append(metrics.workload)
        if metrics.config not in configs:
            configs.append(metrics.config)
    figure.workloads = tuple(workloads)
    figure.configs = tuple(configs)
    return figure


def figure6_from_session(
    session: "Session",
    workloads: Sequence["Workload"],
    configs=EVALUATED_CONFIGS,
    attack_models: Sequence[AttackModel] = (
        AttackModel.SPECTRE,
        AttackModel.FUTURISTIC,
    ),
) -> Figure6:
    """Run the required sweep through ``session`` (parallel workers, result
    cache, event observers) and assemble Figure 6 from it."""
    results = session.sweep(workloads, configs=configs, attack_models=attack_models)
    return build_figure6(results)
