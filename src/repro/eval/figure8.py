"""Figure 8: relationship between squashes and execution time.

For every SDO variant (both attack models), the paper plots the number of
squashes against execution time normalized to Unsafe, averaged over the
suite, and observes that overhead is roughly proportional to squash count —
with the Static L3 exception (fewest squashes, but imprecision pays for
them in latency instead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.common.config import AttackModel
from repro.eval.report import geometric_mean, render_table, warn_unhalted
from repro.sim.api import RunMetrics
from repro.sim.configs import SDO_CONFIG_NAMES, config_by_name

if TYPE_CHECKING:
    from repro.sim.api import Session
    from repro.workloads.workload import Workload


@dataclass(frozen=True)
class Figure8Point:
    config: str
    model: AttackModel
    squashes: float  # mean SDO-induced squashes per 1k instructions
    normalized_time: float


@dataclass
class Figure8:
    points: list[Figure8Point] = field(default_factory=list)

    def by_config(self, model: AttackModel) -> dict[str, Figure8Point]:
        return {p.config: p for p in self.points if p.model is model}

    def correlation(self, model: AttackModel, exclude: tuple[str, ...] = ("Static L3",)) -> float:
        """Pearson correlation between squashes and normalized time.

        ``exclude`` defaults to Static L3, the paper's called-out exception
        (its accuracy trades squashes for imprecision latency).
        """
        pts = [p for p in self.points if p.model is model and p.config not in exclude]
        if len(pts) < 2:
            return 0.0
        xs = [p.squashes for p in pts]
        ys = [p.normalized_time for p in pts]
        n = len(pts)
        mean_x, mean_y = sum(xs) / n, sum(ys) / n
        cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys, strict=True))
        var_x = sum((x - mean_x) ** 2 for x in xs)
        var_y = sum((y - mean_y) ** 2 for y in ys)
        if var_x == 0 or var_y == 0:
            return 0.0
        return cov / (var_x * var_y) ** 0.5

    def render(self, model: AttackModel) -> str:
        headers = ["config", "squashes / 1k inst", "normalized time"]
        rows = [
            [p.config, p.squashes, p.normalized_time]
            for p in self.points
            if p.model is model
        ]
        return render_table(
            headers,
            rows,
            title=f"Figure 8 ({model.value} model): squashes vs execution time",
        )


def build_figure8(
    results: list[RunMetrics], sdo_configs: tuple[str, ...]
) -> Figure8:
    warn_unhalted(results, "Figure 8")
    baselines = {
        (m.attack_model, m.workload): m for m in results if m.config == "Unsafe"
    }
    grouped: dict[tuple[AttackModel, str], list[RunMetrics]] = {}
    for metrics in results:
        if metrics.config in sdo_configs:
            grouped.setdefault((metrics.attack_model, metrics.config), []).append(metrics)

    figure = Figure8()
    for (model, config), runs in sorted(grouped.items(), key=lambda kv: (kv[0][0].value, kv[0][1])):
        squash_rates = [
            1000.0 * m.squashes / max(1, m.instructions) for m in runs
        ]
        normalized = [
            m.normalized_to(baselines[(model, m.workload)]) for m in runs
        ]
        figure.points.append(
            Figure8Point(
                config=config,
                model=model,
                squashes=sum(squash_rates) / len(squash_rates),
                normalized_time=geometric_mean(normalized),
            )
        )
    return figure


def figure8_from_session(
    session: "Session",
    workloads: Sequence["Workload"],
    sdo_configs: tuple[str, ...] = SDO_CONFIG_NAMES,
    attack_models: Sequence[AttackModel] = (
        AttackModel.SPECTRE,
        AttackModel.FUTURISTIC,
    ),
) -> Figure8:
    """Sweep (Unsafe + ``sdo_configs``) through ``session`` and build the
    squashes-vs-time points; the Unsafe baseline is added automatically."""
    run_configs = [config_by_name("Unsafe")] + [config_by_name(n) for n in sdo_configs]
    results = session.sweep(workloads, configs=run_configs, attack_models=attack_models)
    return build_figure8(results, tuple(sdo_configs))
