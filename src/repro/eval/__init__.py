"""Experiment harness: regenerates every table and figure of the paper.

One module per artifact:

* :mod:`repro.eval.figure6` — execution time normalized to Unsafe, per
  benchmark, per design variant, per attack model;
* :mod:`repro.eval.figure7` — overhead breakdown (prediction inaccuracy,
  imprecision, validation stalls, TLB protection, other);
* :mod:`repro.eval.figure8` — squash count vs. normalized execution time;
* :mod:`repro.eval.tables` — Table I (architecture), Table II (variants),
  and Table III (predictor precision/accuracy).

All of them consume :class:`repro.sim.api.RunMetrics` lists so a single
simulation sweep can feed every artifact; the ``*_from_session`` variants
drive that sweep through a :class:`repro.sim.api.Session` (worker pool,
result cache, event observers); ``repro.eval.report`` renders aligned text
tables and CSV.
"""

from repro.eval.report import render_table, to_csv
from repro.eval.figure6 import Figure6, build_figure6, figure6_from_session
from repro.eval.figure7 import Figure7, build_figure7, figure7_from_session
from repro.eval.figure8 import Figure8, build_figure8, figure8_from_session
from repro.eval.tables import (
    table1_rows,
    table2_rows,
    table3_from_session,
    table3_rows,
)

__all__ = [
    "Figure6",
    "Figure7",
    "Figure8",
    "build_figure6",
    "build_figure7",
    "build_figure8",
    "figure6_from_session",
    "figure7_from_session",
    "figure8_from_session",
    "render_table",
    "table1_rows",
    "table2_rows",
    "table3_from_session",
    "table3_rows",
    "to_csv",
]
