"""Plain-text and CSV rendering for experiment results."""

from __future__ import annotations

import io
import sys
from typing import Iterable, Sequence


def warn_unhalted(results: Iterable[object], context: str) -> list[object]:
    """Warn (stderr) about cells that exhausted their budget without halting.

    Figures and tables happily average whatever metrics they are handed, but
    a run that stopped at ``max_cycles``/``max_instructions`` measured a
    truncated execution — its numbers are suspect and the reader must know.
    Returns the offending metrics so callers can test the detection.
    """
    unhalted = [
        m for m in results
        if getattr(m, "termination", "halted") != "halted"
    ]
    if unhalted:
        cells = ", ".join(
            f"{m.workload}/{m.config} ({m.attack_model.value}: {m.termination})"
            for m in unhalted[:5]
        )
        if len(unhalted) > 5:
            cells += f", … {len(unhalted) - 5} more"
        print(
            f"warning: {context} includes {len(unhalted)} unhalted "
            f"run(s) whose budgets ran out — their numbers reflect a "
            f"truncated execution: {cells}",
            file=sys.stderr,
        )
    return unhalted


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned monospace table."""
    formatted_rows = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(width) for cell, width in zip(cells, widths, strict=True)
        ).rstrip()

    out = io.StringIO()
    if title:
        out.write(title + "\n")
        out.write("=" * len(title) + "\n")
    out.write(line(headers) + "\n")
    out.write(line(["-" * w for w in widths]) + "\n")
    for row in formatted_rows:
        out.write(line(row) + "\n")
    return out.getvalue()


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """CSV with no quoting surprises (values are simple scalars)."""
    def cell(value: object) -> str:
        text = str(value)
        if "," in text or '"' in text:
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(cell(h) for h in headers)]
    for row in rows:
        lines.append(",".join(cell(c) for c in row))
    return "\n".join(lines) + "\n"


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geometric mean of nothing")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean needs positive values, got {value}")
        product *= value
    return product ** (1.0 / len(values))
