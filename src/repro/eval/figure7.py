"""Figure 7: breakdown of the slowdown into design components.

The paper attributes each SDO variant's overhead (vs. Unsafe) to:
inaccurate prediction (squash cost), imprecise prediction (extra wait-buffer
latency), validation stalls, TLB/virtual-memory protection, and "other"
(no cache-state change by Obl-Lds, implicit-channel handling, extra memory
contention).  We reconstruct the same attribution from the simulator's
event counters; "other" is the unattributed remainder, exactly as in a
hardware-counter-based breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.common.config import AttackModel
from repro.eval.report import render_table, warn_unhalted
from repro.sim.api import RunMetrics
from repro.sim.configs import SDO_CONFIG_NAMES, config_by_name

if TYPE_CHECKING:
    from repro.sim.api import Session
    from repro.workloads.workload import Workload

#: Cost model for attributing counters to cycles.  A squash costs roughly
#: the refetch penalty plus re-execution of the squashed window; we charge
#: the directly measured squashed uops at one issue slot each plus the
#: redirect penalty per event.
_SQUASH_REDIRECT_COST = 5

COMPONENTS = (
    "inaccurate prediction",
    "imprecise prediction",
    "validation stall",
    "TLB protection",
    "other",
)


@dataclass
class Figure7:
    """Per-config overhead fractions: ``data[model][config][component]``.

    Fractions are of total overhead cycles (summing to 1 for each config
    with nonzero overhead), mirroring the paper's 100%-stacked bars.
    """

    data: dict[AttackModel, dict[str, dict[str, float]]] = field(default_factory=dict)
    overhead_cycles: dict[AttackModel, dict[str, float]] = field(default_factory=dict)

    def render(self, model: AttackModel) -> str:
        configs = sorted(self.data.get(model, {}))
        headers = ["component"] + configs
        rows = []
        for component in COMPONENTS:
            rows.append(
                [component]
                + [self.data[model][config].get(component, 0.0) for config in configs]
            )
        return render_table(
            headers,
            rows,
            title=f"Figure 7 ({model.value} model): share of total slowdown vs Unsafe",
        )


def _attribute(metrics: RunMetrics, baseline: RunMetrics) -> tuple[float, dict[str, float]]:
    overhead_cycles = max(
        0.0,
        metrics.cycles - baseline.cycles * (metrics.instructions / max(1, baseline.instructions)),
    )
    stats = metrics.stats
    fail_squashes = (
        stats.get("core.obl_fail_squashes", 0)
        + stats.get("core.fp_fail_squashes", 0)
        + stats.get("core.validation_mismatch_squashes", 0)
    )
    squash_cost = (
        stats.get("core.sdo_squashed_uops", 0) / 8.0
        + fail_squashes * _SQUASH_REDIRECT_COST
    )
    inaccurate = max(0.0, squash_cost)
    imprecise = stats.get("core.imprecision_cycles", 0)
    # Prefer the per-cycle stall attribution (core.stall.validation_wait,
    # measured at the ROB head) over the legacy estimate; fall back for
    # results produced before the observability layer existed (old caches).
    validation = stats.get(
        "core.stall.validation_wait", stats.get("core.validation_stall_cycles", 0)
    )
    tlb = stats.get("mem.obl_tlb_fails", 0) * _SQUASH_REDIRECT_COST
    attributed = inaccurate + imprecise + validation + tlb
    if overhead_cycles == 0:
        # The run was not slower than the baseline: nothing to attribute
        # (raw counters may still be nonzero — the costs were hidden).
        zero = dict.fromkeys(COMPONENTS, 0.0)
        return 0.0, zero
    if attributed > overhead_cycles > 0:
        # Attribution estimates can overshoot the measured overhead when
        # costs overlap (a squash hides a validation stall, etc.); scale the
        # components down so shares stay meaningful.
        scale = overhead_cycles / attributed
        inaccurate *= scale
        imprecise *= scale
        validation *= scale
        tlb *= scale
        attributed = overhead_cycles
    other = max(0.0, overhead_cycles - attributed)
    return overhead_cycles, {
        "inaccurate prediction": inaccurate,
        "imprecise prediction": imprecise,
        "validation stall": validation,
        "TLB protection": tlb,
        "other": other,
    }


def build_figure7(results: list[RunMetrics], configs: tuple[str, ...] | None = None) -> Figure7:
    """Attribute overhead cycles per (model, config), averaged over the suite."""
    warn_unhalted(results, "Figure 7")
    baselines = {
        (m.attack_model, m.workload): m for m in results if m.config == "Unsafe"
    }
    sums: dict[tuple[AttackModel, str], dict[str, float]] = {}
    totals: dict[tuple[AttackModel, str], float] = {}
    for metrics in results:
        if metrics.config == "Unsafe":
            continue
        if configs is not None and metrics.config not in configs:
            continue
        baseline = baselines[(metrics.attack_model, metrics.workload)]
        overhead, parts = _attribute(metrics, baseline)
        key = (metrics.attack_model, metrics.config)
        bucket = sums.setdefault(key, {component: 0.0 for component in COMPONENTS})
        for component, cycles in parts.items():
            bucket[component] += cycles
        totals[key] = totals.get(key, 0.0) + overhead

    figure = Figure7()
    for (model, config), bucket in sums.items():
        total = totals[(model, config)]
        fractions = {
            component: (cycles / total if total > 0 else 0.0)
            for component, cycles in bucket.items()
        }
        figure.data.setdefault(model, {})[config] = fractions
        figure.overhead_cycles.setdefault(model, {})[config] = total
    return figure


def figure7_from_session(
    session: "Session",
    workloads: Sequence["Workload"],
    configs: tuple[str, ...] = SDO_CONFIG_NAMES,
    attack_models: Sequence[AttackModel] = (
        AttackModel.SPECTRE,
        AttackModel.FUTURISTIC,
    ),
) -> Figure7:
    """Sweep (Unsafe + ``configs``) through ``session`` and attribute the
    overhead; the Unsafe baseline is added automatically."""
    run_configs = [config_by_name("Unsafe")] + [config_by_name(n) for n in configs]
    results = session.sweep(workloads, configs=run_configs, attack_models=attack_models)
    return build_figure7(results, configs=tuple(configs))
