"""Tables I, II and III.

Table I and II are configuration tables — they are regenerated from the
live config objects so the documentation can never drift from the code.
Table III (predictor precision/accuracy) is measured from a sweep.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.common.config import AttackModel, MachineConfig
from repro.eval.report import render_table, warn_unhalted
from repro.sim.api import RunMetrics
from repro.sim.configs import EVALUATED_CONFIGS, SDO_CONFIG_NAMES, config_by_name

if TYPE_CHECKING:
    from repro.sim.api import Session
    from repro.workloads.workload import Workload


def table1_rows(machine: MachineConfig | None = None) -> list[list[str]]:
    """Table I: simulated architecture parameters."""
    machine = machine or MachineConfig()
    core = machine.core

    def cache_row(config) -> str:
        kb = config.size // 1024
        return (
            f"{kb}KB, {config.line_size}B line, {config.assoc}-way, "
            f"{config.latency}-cycle latency"
        )

    return [
        ["Pipeline",
         f"{core.fetch_width} fetch/decode/issue/commit, "
         f"{core.sq_entries}/{core.lq_entries} SQ/LQ entries, "
         f"{core.rob_entries} ROB, {machine.l1d.mshrs} MSHRs, "
         f"Tournament branch predictor"],
        ["L1 I-Cache", cache_row(machine.l1i)],
        ["L1 D-Cache", cache_row(machine.l1d)],
        ["L2 Cache", cache_row(machine.l2)],
        ["L3 Cache", cache_row(machine.l3)],
        ["Network",
         f"{machine.mesh_dims[0]}x{machine.mesh_dims[1]} mesh, "
         f"{machine.mesh_hop_latency} cycle latency per hop"],
        ["Coherence Protocol", "Directory-based MESI protocol"],
        ["DRAM", f"{machine.dram.latency} cycles after L2 "
                 f"(row-buffer hit: {machine.dram.row_buffer_hit_latency})"],
    ]


def render_table1(machine: MachineConfig | None = None) -> str:
    return render_table(
        ["HW Components", "Parameters"],
        table1_rows(machine),
        title="Table I: simulated architecture parameters",
    )


def table2_rows() -> list[list[str]]:
    """Table II: evaluated design variants."""
    return [[c.name, c.description] for c in EVALUATED_CONFIGS]


def render_table2() -> str:
    return render_table(
        ["Configuration", "Description"],
        table2_rows(),
        title="Table II: evaluated design variants",
    )


def table3_rows(results: list[RunMetrics]) -> list[list[object]]:
    """Table III: precision and accuracy per SDO predictor and attack model.

    Aggregated over all workloads that made at least one prediction
    (a workload with no tainted loads contributes no denominators).
    """
    warn_unhalted(results, "Table III")
    sums: dict[tuple[str, AttackModel], dict[str, float]] = {}
    for metrics in results:
        total = metrics.stats.get("stt.sdo.predictions", 0)
        if not total:
            continue
        key = (metrics.config, metrics.attack_model)
        bucket = sums.setdefault(key, {"total": 0.0, "precise": 0.0, "accurate": 0.0})
        bucket["total"] += total
        bucket["precise"] += metrics.stats.get("stt.sdo.precise", 0)
        bucket["accurate"] += metrics.stats.get("stt.sdo.accurate", 0)

    configs = sorted({config for config, _ in sums})
    rows: list[list[object]] = []
    for config in configs:
        row: list[object] = [config]
        for model in (AttackModel.SPECTRE, AttackModel.FUTURISTIC):
            bucket = sums.get((config, model))
            if bucket is None or not bucket["total"]:
                row.extend(["-", "-"])
            else:
                row.append(100.0 * bucket["precise"] / bucket["total"])
                row.append(100.0 * bucket["accurate"] / bucket["total"])
        rows.append(row)
    return rows


def render_table3(results: list[RunMetrics]) -> str:
    return render_table(
        ["Configuration", "Spectre Prec%", "Spectre Acc%", "Futuristic Prec%", "Futuristic Acc%"],
        table3_rows(results),
        title="Table III: precision and accuracy of evaluated SDO predictors",
        float_format="{:.2f}",
    )


def table3_from_session(
    session: "Session",
    workloads: Sequence["Workload"],
    configs: tuple[str, ...] = SDO_CONFIG_NAMES,
    attack_models: Sequence[AttackModel] = (
        AttackModel.SPECTRE,
        AttackModel.FUTURISTIC,
    ),
) -> list[list[object]]:
    """Sweep the SDO configs through ``session`` and tabulate Table III."""
    run_configs = [config_by_name(name) for name in configs]
    results = session.sweep(workloads, configs=run_configs, attack_models=attack_models)
    return table3_rows(results)
