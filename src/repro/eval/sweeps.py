"""Parameter-sweep utilities: sensitivity of the SDO result to the machine.

The paper evaluates one machine (Table I).  A natural reviewer question is
how the STT-vs-SDO gap moves with the microarchitecture: a bigger ROB hides
more of STT's delay; a slower DRAM widens taint windows; a smaller L2
shifts the location predictor's target distribution.  ``sweep`` runs a
(workload, config-set) pair across a list of machine variants and tabulates
normalized execution times, so those questions are one function call.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.common.config import AttackModel, CacheConfig, MachineConfig
from repro.eval.report import render_table
from repro.sim.api import RunMetrics, Session
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class MachineVariant:
    """A named mutation of the baseline machine."""

    name: str
    mutate: Callable[[MachineConfig], MachineConfig]

    def build(self, base: MachineConfig | None = None) -> MachineConfig:
        return self.mutate(base or MachineConfig())


def rob_variant(entries: int) -> MachineVariant:
    def mutate(machine: MachineConfig) -> MachineConfig:
        return dataclasses.replace(
            machine, core=dataclasses.replace(machine.core, rob_entries=entries)
        )
    return MachineVariant(f"ROB={entries}", mutate)


def lq_variant(entries: int) -> MachineVariant:
    def mutate(machine: MachineConfig) -> MachineConfig:
        return dataclasses.replace(
            machine, core=dataclasses.replace(machine.core, lq_entries=entries)
        )
    return MachineVariant(f"LQ={entries}", mutate)


def dram_latency_variant(latency: int) -> MachineVariant:
    def mutate(machine: MachineConfig) -> MachineConfig:
        return dataclasses.replace(
            machine,
            dram=dataclasses.replace(
                machine.dram,
                latency=latency,
                row_buffer_hit_latency=max(10, latency * 6 // 10),
            ),
        )
    return MachineVariant(f"DRAM={latency}cyc", mutate)


def l2_size_variant(kilobytes: int) -> MachineVariant:
    def mutate(machine: MachineConfig) -> MachineConfig:
        return dataclasses.replace(
            machine,
            l2=CacheConfig(
                "L2", kilobytes * 1024, machine.l2.line_size, machine.l2.assoc,
                machine.l2.latency, banks=machine.l2.banks,
                mshrs=machine.l2.mshrs, ports=machine.l2.ports,
            ),
        )
    return MachineVariant(f"L2={kilobytes}KB", mutate)


@dataclass
class SweepResult:
    """Normalized times: ``table[variant][config]`` (vs per-variant Unsafe)."""

    workload: str
    attack_model: AttackModel
    variants: tuple[str, ...]
    configs: tuple[str, ...]
    table: dict[str, dict[str, float]]
    raw: dict[str, dict[str, RunMetrics]]

    def render(self) -> str:
        headers = ["machine"] + list(self.configs)
        rows = [
            [variant] + [self.table[variant][config] for config in self.configs]
            for variant in self.variants
        ]
        return render_table(
            headers, rows,
            title=f"Sensitivity sweep: {self.workload} ({self.attack_model.value})",
        )


def sweep(
    workload: Workload,
    variants: Sequence[MachineVariant],
    config_names: Sequence[str] = ("STT{ld}", "Hybrid", "Perfect"),
    attack_model: AttackModel = AttackModel.SPECTRE,
    check_golden: bool = False,
    session: Session | None = None,
    jobs: int = 1,
) -> SweepResult:
    """Run ``workload`` under every (variant, config) pair.

    Each variant gets its own Unsafe baseline, so the normalized numbers
    isolate the protection cost from the machine change itself.  All
    (variant, config) cells go through the sweep engine as one batch, so
    ``jobs`` (or a ``session`` with workers/cache/observers) parallelizes
    across variants as well as configs.
    """
    if session is None:
        from repro.sim.policies import CachePolicy, ExecutionPolicy

        session = Session(
            execution=ExecutionPolicy(jobs=jobs),
            cache=CachePolicy(enabled=False),
            check_golden=check_golden,
        )
    per_variant = ("Unsafe", *config_names)
    requests = [
        session.request(
            workload, name, attack_model,
            machine=machine, check_golden=check_golden,
        )
        for machine in (variant.build() for variant in variants)
        for name in per_variant
    ]
    metrics = session.run_many(requests, strict=True)

    table: dict[str, dict[str, float]] = {}
    raw: dict[str, dict[str, RunMetrics]] = {}
    for position, variant in enumerate(variants):
        chunk = metrics[position * len(per_variant):(position + 1) * len(per_variant)]
        baseline = chunk[0]
        row_raw: dict[str, RunMetrics] = {"Unsafe": baseline}
        row: dict[str, float] = {}
        for name, run in zip(config_names, chunk[1:], strict=True):
            row[name] = run.normalized_to(baseline)
            row_raw[name] = run
        table[variant.name] = row
        raw[variant.name] = row_raw
    return SweepResult(
        workload=workload.name,
        attack_model=attack_model,
        variants=tuple(v.name for v in variants),
        configs=tuple(config_names),
        table=table,
        raw=raw,
    )
