"""Functional instruction-set simulator (the golden model).

The out-of-order timing model in ``repro.pipeline`` is execution-driven and
speculative; its committed architectural state must match this simple
in-order interpreter instruction for instruction.  The integration tests
(``tests/integration/test_golden_model.py``) enforce exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.isa.instructions import (
    FP_BASE,
    Instruction,
    Opcode,
    is_fp_reg,
)
from repro.isa.program import Program

_INT_MASK = (1 << 64) - 1


def wrap64(value: int) -> int:
    """Wrap to a signed 64-bit integer (two's complement)."""
    value &= _INT_MASK
    return value - (1 << 64) if value >> 63 else value


@dataclass
class ArchState:
    """Architectural state: register files + data memory."""

    int_regs: list[int] = field(default_factory=lambda: [0] * 32)
    fp_regs: list[float] = field(default_factory=lambda: [0.0] * 16)
    memory: dict[int, int | float] = field(default_factory=dict)

    def read_reg(self, reg: int) -> int | float:
        if is_fp_reg(reg):
            return self.fp_regs[reg - FP_BASE]
        if reg == 0:
            return 0
        return self.int_regs[reg]

    def write_reg(self, reg: int, value: int | float) -> None:
        if is_fp_reg(reg):
            self.fp_regs[reg - FP_BASE] = float(value)
        elif reg != 0:  # r0 is hardwired to zero
            self.int_regs[reg] = wrap64(int(value))

    def read_mem(self, addr: int) -> int | float:
        return self.memory.get(addr, 0)

    def write_mem(self, addr: int, value: int | float) -> None:
        self.memory[addr] = value

    def snapshot(self) -> "ArchState":
        return ArchState(list(self.int_regs), list(self.fp_regs), dict(self.memory))


@dataclass(frozen=True)
class CommittedOp:
    """One architecturally committed instruction, for trace comparison."""

    seq: int
    pc: int
    opcode: Opcode
    next_pc: int
    taken: bool = False
    mem_addr: int | None = None
    result: int | float | None = None


def _fp_sqrt(value: float) -> float:
    # Hardware returns a NaN rather than trapping; model that.
    return math.sqrt(value) if value >= 0.0 else math.nan


def _safe_div(num: float, den: float) -> float:
    if den == 0.0:
        return math.inf if num > 0 else (-math.inf if num < 0 else math.nan)
    try:
        return num / den
    except OverflowError:
        return math.inf if (num > 0) == (den > 0) else -math.inf


def execute_instruction(
    inst: Instruction, pc: int, state: ArchState
) -> tuple[int, bool, int | None, int | float | None]:
    """Execute one instruction against ``state``.

    Returns ``(next_pc, taken, mem_addr, result)`` where ``result`` is the
    value written to ``inst.rd`` (None if no destination).  This function is
    shared verbatim by the ISS and by the OoO core's execute stage (the OoO
    core calls it with *renamed* operand values), so the two cannot diverge
    semantically.
    """
    op = inst.opcode
    rs1 = state.read_reg(inst.rs1) if inst.rs1 is not None else 0
    rs2 = state.read_reg(inst.rs2) if inst.rs2 is not None else 0
    next_pc = pc + 1
    taken = False
    mem_addr: int | None = None
    result: int | float | None = None

    if op is Opcode.ADD:
        result = wrap64(rs1 + rs2)
    elif op is Opcode.SUB:
        result = wrap64(rs1 - rs2)
    elif op is Opcode.AND:
        result = rs1 & rs2
    elif op is Opcode.OR:
        result = rs1 | rs2
    elif op is Opcode.XOR:
        result = rs1 ^ rs2
    elif op is Opcode.SLT:
        result = 1 if rs1 < rs2 else 0
    elif op is Opcode.SHL:
        result = wrap64(rs1 << (rs2 & 63))
    elif op is Opcode.SHR:
        result = (rs1 & _INT_MASK) >> (rs2 & 63)
    elif op is Opcode.MUL:
        result = wrap64(rs1 * rs2)
    elif op is Opcode.ADDI:
        result = wrap64(rs1 + int(inst.imm))
    elif op is Opcode.ANDI:
        result = rs1 & int(inst.imm)
    elif op is Opcode.LI:
        result = wrap64(int(inst.imm))
    elif op in (Opcode.LOAD, Opcode.FLOAD):
        mem_addr = wrap64(rs1 + int(inst.imm))
        result = state.read_mem(mem_addr)
        if op is Opcode.FLOAD:
            result = float(result)
        else:
            result = wrap64(int(result))
    elif op in (Opcode.STORE, Opcode.FSTORE):
        # rs1 = value, rs2 = base (assembler signature "ssi").
        mem_addr = wrap64(rs2 + int(inst.imm))
        state.write_mem(mem_addr, rs1)
    elif op is Opcode.BEQ:
        taken = rs1 == rs2
    elif op is Opcode.BNE:
        taken = rs1 != rs2
    elif op is Opcode.BLT:
        taken = rs1 < rs2
    elif op is Opcode.BGE:
        taken = rs1 >= rs2
    elif op is Opcode.JMP:
        taken = True
    elif op is Opcode.FADD:
        result = rs1 + rs2
    elif op is Opcode.FSUB:
        result = rs1 - rs2
    elif op is Opcode.FMUL:
        result = rs1 * rs2
    elif op is Opcode.FDIV:
        result = _safe_div(rs1, rs2)
    elif op is Opcode.FSQRT:
        result = _fp_sqrt(rs1)
    elif op is Opcode.FLI:
        result = float(inst.imm)
    elif op in (Opcode.NOP, Opcode.HALT):
        pass
    else:  # pragma: no cover - exhaustive over Opcode
        raise NotImplementedError(op)

    if taken:
        next_pc = inst.target if inst.target is not None else next_pc
    if result is not None and inst.rd is not None:
        state.write_reg(inst.rd, result)
    return next_pc, taken, mem_addr, result


class Interpreter:
    """In-order functional execution of a :class:`Program`."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.state = ArchState(memory=dict(program.initial_memory))
        self.pc = 0
        self.halted = False
        self.instructions_retired = 0

    def step(self) -> CommittedOp:
        """Execute one instruction and return its commit record."""
        if self.halted:
            raise RuntimeError("interpreter already halted")
        inst = self.program[self.pc]
        pc = self.pc
        next_pc, taken, mem_addr, result = execute_instruction(inst, pc, self.state)
        record = CommittedOp(
            seq=self.instructions_retired,
            pc=pc,
            opcode=inst.opcode,
            next_pc=next_pc,
            taken=taken,
            mem_addr=mem_addr,
            result=result,
        )
        self.instructions_retired += 1
        self.pc = next_pc
        if inst.opcode is Opcode.HALT:
            self.halted = True
        return record

    def run(self, max_instructions: int = 1_000_000) -> list[CommittedOp]:
        """Run to HALT (or the instruction limit); return the commit trace."""
        trace: list[CommittedOp] = []
        while not self.halted and len(trace) < max_instructions:
            trace.append(self.step())
        return trace
