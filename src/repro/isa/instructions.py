"""Instruction definitions for the micro-ISA.

Register naming convention: registers are plain integers.  Integer registers
occupy ``0..NUM_INT_REGS-1``; floating point registers are offset by
:data:`FP_BASE` so a single rename table can cover both files.  Use
:func:`int_reg` / :func:`fp_reg` to construct them and
:func:`is_fp_reg` to classify.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

NUM_INT_REGS = 32
NUM_FP_REGS = 16
FP_BASE = 100

#: Magnitude below which a (nonzero) float takes the slow FP path.  This is
#: the single-precision subnormal threshold; the exact value is irrelevant to
#: the mechanism, only that some inputs are "slow" (Section I-A of the paper).
SUBNORMAL_THRESHOLD = 2.0 ** -126


def int_reg(index: int) -> int:
    """Architectural integer register ``r<index>``."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return index


def fp_reg(index: int) -> int:
    """Architectural floating point register ``f<index>``."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return FP_BASE + index


def is_fp_reg(reg: int) -> bool:
    return reg >= FP_BASE


def reg_name(reg: int | None) -> str:
    if reg is None:
        return "-"
    if is_fp_reg(reg):
        return f"f{reg - FP_BASE}"
    return f"r{reg}"


def is_subnormal(value: float) -> bool:
    """True if ``value`` triggers the slow floating point path."""
    return value != 0.0 and abs(value) < SUBNORMAL_THRESHOLD


class OpClass(enum.Enum):
    """Execution resource class; maps to functional units and latencies."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    FP = "fp"
    SYSTEM = "system"


class Opcode(enum.Enum):
    # Integer ALU.
    ADD = ("add", OpClass.INT_ALU)
    SUB = ("sub", OpClass.INT_ALU)
    AND = ("and", OpClass.INT_ALU)
    OR = ("or", OpClass.INT_ALU)
    XOR = ("xor", OpClass.INT_ALU)
    SLT = ("slt", OpClass.INT_ALU)
    SHL = ("shl", OpClass.INT_ALU)
    SHR = ("shr", OpClass.INT_ALU)
    ADDI = ("addi", OpClass.INT_ALU)
    ANDI = ("andi", OpClass.INT_ALU)
    LI = ("li", OpClass.INT_ALU)
    MUL = ("mul", OpClass.INT_MUL)
    # Memory.  Address is rs1 + imm; value register is rd (load) / rs2 (store).
    LOAD = ("load", OpClass.LOAD)
    STORE = ("store", OpClass.STORE)
    FLOAD = ("fload", OpClass.LOAD)
    FSTORE = ("fstore", OpClass.STORE)
    # Control flow.  Conditional branches compare rs1 against rs2.
    BEQ = ("beq", OpClass.BRANCH)
    BNE = ("bne", OpClass.BRANCH)
    BLT = ("blt", OpClass.BRANCH)
    BGE = ("bge", OpClass.BRANCH)
    JMP = ("jmp", OpClass.BRANCH)
    # Floating point.
    FADD = ("fadd", OpClass.FP)
    FSUB = ("fsub", OpClass.FP)
    FMUL = ("fmul", OpClass.FP)
    FDIV = ("fdiv", OpClass.FP)
    FSQRT = ("fsqrt", OpClass.FP)
    FLI = ("fli", OpClass.FP)
    # System.
    NOP = ("nop", OpClass.SYSTEM)
    HALT = ("halt", OpClass.SYSTEM)

    def __init__(self, mnemonic: str, op_class: OpClass) -> None:
        self.mnemonic = mnemonic
        self.op_class = op_class


#: FP micro-ops treated as transmitters under STT{ld+fp} (Table II: "unsafe
#: loads and fmult/div/fsqrt micro-ops").  FADD/FSUB are fixed-latency in the
#: modelled machine and therefore not transmitters.
FP_TRANSMIT_OPS = frozenset({Opcode.FMUL, Opcode.FDIV, Opcode.FSQRT})

#: Conditional branch opcodes (JMP is unconditional and never mispredicts
#: direction, only its BTB target on a cold miss).
CONDITIONAL_BRANCHES = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE})


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    ``rd`` is the destination register (or None), ``rs1``/``rs2`` sources,
    ``imm`` an integer or float immediate, and ``target`` a branch target
    expressed as an instruction index.
    """

    opcode: Opcode
    rd: int | None = None
    rs1: int | None = None
    rs2: int | None = None
    imm: int | float = 0
    target: int | None = None
    label: str | None = field(default=None, compare=False)

    @property
    def op_class(self) -> OpClass:
        return self.opcode.op_class

    @property
    def is_load(self) -> bool:
        return self.op_class is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op_class is OpClass.STORE

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_branch(self) -> bool:
        return self.op_class is OpClass.BRANCH

    @property
    def is_conditional_branch(self) -> bool:
        return self.opcode in CONDITIONAL_BRANCHES

    @property
    def is_fp_transmitter(self) -> bool:
        return self.opcode in FP_TRANSMIT_OPS

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`).

        ``None`` fields are dropped for compactness — a program is thousands
        of instructions on the fabric wire.  The opcode travels by enum
        *name* (``"FLOAD"``), which is stable across mnemonic edits.
        """
        payload: dict[str, object] = {"opcode": self.opcode.name}
        for attr in ("rd", "rs1", "rs2", "target", "label"):
            value = getattr(self, attr)
            if value is not None:
                payload[attr] = value
        if self.imm != 0 or isinstance(self.imm, float):
            payload["imm"] = self.imm
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Instruction":
        return cls(
            opcode=Opcode[payload["opcode"]],
            rd=payload.get("rd"),
            rs1=payload.get("rs1"),
            rs2=payload.get("rs2"),
            imm=payload.get("imm", 0),
            target=payload.get("target"),
            label=payload.get("label"),
        )

    def sources(self) -> tuple[int, ...]:
        """Source registers actually read by this instruction."""
        srcs = []
        if self.rs1 is not None:
            srcs.append(self.rs1)
        if self.rs2 is not None:
            srcs.append(self.rs2)
        return tuple(srcs)

    def __str__(self) -> str:
        parts = [self.opcode.mnemonic]
        if self.rd is not None:
            parts.append(reg_name(self.rd))
        if self.rs1 is not None:
            parts.append(reg_name(self.rs1))
        if self.rs2 is not None:
            parts.append(reg_name(self.rs2))
        if self.opcode in (Opcode.ADDI, Opcode.ANDI, Opcode.LI, Opcode.FLI,
                           Opcode.LOAD, Opcode.STORE, Opcode.FLOAD, Opcode.FSTORE):
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"@{self.target}")
        return " ".join(parts)
