"""A small RISC-like micro-ISA.

This is the language every workload in the repository is written in and the
contract between the functional interpreter (:class:`Interpreter`, the golden
model) and the out-of-order timing model (``repro.pipeline``).

The ISA is deliberately tiny but covers everything the paper's mechanisms
care about:

* integer ALU ops (single-cycle) and multiplies,
* loads and stores (the transmitters that dominate STT's overhead),
* conditional branches and jumps (the speculation source),
* floating point add/mul/div/sqrt with a *subnormal slow path* — the
  transmitter family used by the paper's running Obl-FP example,
* ``HALT``.

Programs are sequences of :class:`Instruction` plus an initial data memory
image; the PC is simply an index into the instruction list.
"""

from repro.isa.instructions import (
    FP_TRANSMIT_OPS,
    Instruction,
    Opcode,
    OpClass,
    fp_reg,
    int_reg,
    is_subnormal,
)
from repro.isa.program import Program
from repro.isa.assembler import assemble, AssemblyError
from repro.isa.iss import ArchState, Interpreter, CommittedOp

__all__ = [
    "ArchState",
    "AssemblyError",
    "CommittedOp",
    "FP_TRANSMIT_OPS",
    "Instruction",
    "Interpreter",
    "OpClass",
    "Opcode",
    "Program",
    "assemble",
    "fp_reg",
    "int_reg",
    "is_subnormal",
]
