"""Program representation: instructions + initial data memory."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction, Opcode


@dataclass
class Program:
    """A static program.

    ``instructions`` is the code segment; the PC is an index into it.
    ``initial_memory`` maps addresses to 64-bit integer words (floating point
    values are stored as Python floats; the simulator's memory is typed by
    whatever was stored).  ``name`` is used in reports.
    """

    instructions: list[Instruction]
    initial_memory: dict[int, int | float] = field(default_factory=dict)
    name: str = "anonymous"

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ValueError("a program needs at least one instruction")
        limit = len(self.instructions)
        for pc, inst in enumerate(self.instructions):
            if inst.target is not None and not 0 <= inst.target < limit:
                raise ValueError(
                    f"instruction {pc} ({inst}) branches to {inst.target}, "
                    f"outside program of length {limit}"
                )
        if self.instructions[-1].opcode is not Opcode.HALT and not any(
            inst.opcode is Opcode.HALT for inst in self.instructions
        ):
            raise ValueError(f"program {self.name!r} has no HALT instruction")

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`).

        ``initial_memory`` becomes ``[[address, value], …]`` pairs: JSON
        object keys are strings, and the addresses must survive as ints for
        the cache key to be stable across the wire.
        """
        return {
            "name": self.name,
            "instructions": [inst.to_dict() for inst in self.instructions],
            "initial_memory": [
                [address, value] for address, value in self.initial_memory.items()
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Program":
        return cls(
            instructions=[
                Instruction.from_dict(inst) for inst in payload["instructions"]
            ],
            initial_memory={
                int(address): value
                for address, value in payload.get("initial_memory", [])
            },
            name=payload.get("name", "anonymous"),
        )

    def listing(self) -> str:
        """Human-readable disassembly."""
        lines = []
        for pc, inst in enumerate(self.instructions):
            label = f"{inst.label}:" if inst.label else ""
            lines.append(f"{label:>12} {pc:4d}  {inst}")
        return "\n".join(lines)
