"""A small two-pass assembler for the micro-ISA.

Syntax, one instruction per line (``;`` or ``#`` starts a comment)::

    loop:                       ; labels end with a colon
        li    r1, 100
        load  r2, r1, 8         ; r2 = mem[r1 + 8]
        store r2, r1, 16        ; mem[r1 + 16] = r2
        addi  r1, r1, 1
        blt   r1, r3, loop      ; branch to a label
        fli   f0, 1.5
        fmul  f1, f0, f0
        halt

Registers: ``r0``–``r31`` (``r0`` reads as zero by convention of the
interpreter) and ``f0``–``f15``.  Branch targets may be labels or absolute
instruction indices.
"""

from __future__ import annotations

import re

from repro.isa.instructions import (
    FP_BASE,
    NUM_FP_REGS,
    NUM_INT_REGS,
    Instruction,
    Opcode,
)
from repro.isa.program import Program


class AssemblyError(ValueError):
    """Raised on malformed assembly input, with a line number."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


_MNEMONICS = {op.mnemonic: op for op in Opcode}
_REG_RE = re.compile(r"^(r|f)(\d+)$")

# Operand signature per opcode: a string of operand kinds.
#   d = dest reg, s = source reg, i = int immediate, f = float immediate,
#   t = branch target (label or index)
_SIGNATURES: dict[Opcode, str] = {
    Opcode.ADD: "dss", Opcode.SUB: "dss", Opcode.AND: "dss", Opcode.OR: "dss",
    Opcode.XOR: "dss", Opcode.SLT: "dss", Opcode.SHL: "dss", Opcode.SHR: "dss",
    Opcode.MUL: "dss",
    Opcode.ADDI: "dsi", Opcode.ANDI: "dsi",
    Opcode.LI: "di",
    Opcode.LOAD: "dsi", Opcode.FLOAD: "dsi",
    Opcode.STORE: "ssi", Opcode.FSTORE: "ssi",  # store value, base, offset
    Opcode.BEQ: "sst", Opcode.BNE: "sst", Opcode.BLT: "sst", Opcode.BGE: "sst",
    Opcode.JMP: "t",
    Opcode.FADD: "dss", Opcode.FSUB: "dss", Opcode.FMUL: "dss",
    Opcode.FDIV: "dss", Opcode.FSQRT: "ds",
    Opcode.FLI: "df",
    Opcode.NOP: "", Opcode.HALT: "",
}


def _parse_reg(token: str, line_no: int) -> int:
    match = _REG_RE.match(token)
    if not match:
        raise AssemblyError(line_no, f"expected register, got {token!r}")
    kind, index = match.group(1), int(match.group(2))
    if kind == "r":
        if index >= NUM_INT_REGS:
            raise AssemblyError(line_no, f"no such integer register {token!r}")
        return index
    if index >= NUM_FP_REGS:
        raise AssemblyError(line_no, f"no such fp register {token!r}")
    return FP_BASE + index


def _parse_int(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(line_no, f"expected integer immediate, got {token!r}") from None


def _parse_float(token: str, line_no: int) -> float:
    try:
        return float(token)
    except ValueError:
        raise AssemblyError(line_no, f"expected float immediate, got {token!r}") from None


def assemble(
    source: str,
    initial_memory: dict[int, int | float] | None = None,
    name: str = "asm",
) -> Program:
    """Assemble ``source`` into a :class:`Program`.

    A two-pass assembler: the first pass records label positions, the second
    encodes instructions and resolves branch targets.
    """
    labels: dict[str, int] = {}
    parsed: list[tuple[int, str, list[str], str | None]] = []

    pending_label: str | None = None
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = re.split(r"[;#]", raw, maxsplit=1)[0].strip()
        if not line:
            continue
        while True:
            label_match = re.match(r"^([A-Za-z_]\w*):\s*(.*)$", line)
            if not label_match:
                break
            label = label_match.group(1)
            if label in labels or label == pending_label:
                raise AssemblyError(line_no, f"duplicate label {label!r}")
            if pending_label is not None:
                raise AssemblyError(line_no, "two labels on the same instruction")
            pending_label = label
            labels[label] = len(parsed)
            line = label_match.group(2).strip()
        if not line:
            continue
        tokens = line.replace(",", " ").split()
        mnemonic, operands = tokens[0].lower(), tokens[1:]
        if mnemonic not in _MNEMONICS:
            raise AssemblyError(line_no, f"unknown mnemonic {mnemonic!r}")
        parsed.append((line_no, mnemonic, operands, pending_label))
        pending_label = None

    if pending_label is not None:
        raise AssemblyError(0, f"label {pending_label!r} at end of program")

    instructions: list[Instruction] = []
    for line_no, mnemonic, operands, label in parsed:
        opcode = _MNEMONICS[mnemonic]
        signature = _SIGNATURES[opcode]
        if len(operands) != len(signature):
            raise AssemblyError(
                line_no,
                f"{mnemonic} takes {len(signature)} operands, got {len(operands)}",
            )
        rd = rs1 = rs2 = target = None
        imm: int | float = 0
        sources: list[int] = []
        for kind, token in zip(signature, operands, strict=True):
            if kind == "d":
                rd = _parse_reg(token, line_no)
            elif kind == "s":
                sources.append(_parse_reg(token, line_no))
            elif kind == "i":
                imm = _parse_int(token, line_no)
            elif kind == "f":
                imm = _parse_float(token, line_no)
            elif kind == "t":
                if token in labels:
                    target = labels[token]
                else:
                    target = _parse_int(token, line_no)
                    if not 0 <= target < len(parsed):
                        raise AssemblyError(line_no, f"branch target {token!r} out of range")
        if sources:
            rs1 = sources[0]
        if len(sources) > 1:
            rs2 = sources[1]
        instructions.append(
            Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2, imm=imm, target=target, label=label)
        )

    return Program(instructions, dict(initial_memory or {}), name=name)


def _render_reg(reg: int) -> str:
    return f"f{reg - FP_BASE}" if reg >= FP_BASE else f"r{reg}"


def disassemble(program: Program) -> str:
    """Render ``program`` back to :func:`assemble`-able source.

    The inverse of :func:`assemble` up to label naming: re-assembling the
    output yields a program with identical opcodes, operands, immediates
    and branch targets.  Branch targets are emitted as labels — the target
    instruction's own ``label`` when it has one, a synthesized ``L<pc>``
    otherwise.
    """
    labels: dict[int, str] = {
        pc: inst.label
        for pc, inst in enumerate(program.instructions)
        if inst.label
    }
    used = set(labels.values())
    for inst in program.instructions:
        if inst.target is not None and inst.target not in labels:
            name = f"L{inst.target}"
            while name in used:
                name += "_"
            labels[inst.target] = name
            used.add(name)
    lines: list[str] = []
    for pc, inst in enumerate(program.instructions):
        if pc in labels:
            lines.append(f"{labels[pc]}:")
        operands: list[str] = []
        sources = [reg for reg in (inst.rs1, inst.rs2) if reg is not None]
        for kind in _SIGNATURES[inst.opcode]:
            if kind == "d":
                operands.append(_render_reg(inst.rd))
            elif kind == "s":
                operands.append(_render_reg(sources.pop(0)))
            elif kind == "i":
                operands.append(str(int(inst.imm)))
            elif kind == "f":
                operands.append(repr(float(inst.imm)))
            elif kind == "t":
                operands.append(labels[inst.target])
        body = inst.opcode.mnemonic
        if operands:
            body += " " + ", ".join(operands)
        lines.append("    " + body)
    return "\n".join(lines) + "\n"
