"""Machine assembly and experiment running.

:mod:`repro.sim.configs` defines the Table II design variants;
:mod:`repro.sim.runner` builds a (core + hierarchy + protection) machine for
a (workload, configuration, attack model) triple and runs it to completion,
returning the metrics the evaluation harness consumes.
"""

from repro.sim.configs import (
    EVALUATED_CONFIGS,
    SDO_CONFIG_NAMES,
    config_by_name,
    make_protection,
)
from repro.sim.runner import RunMetrics, run_workload, run_suite

__all__ = [
    "EVALUATED_CONFIGS",
    "RunMetrics",
    "SDO_CONFIG_NAMES",
    "config_by_name",
    "make_protection",
    "run_suite",
    "run_workload",
]
