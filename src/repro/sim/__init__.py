"""Machine assembly and experiment running.

:mod:`repro.sim.configs` defines the Table II design variants;
:mod:`repro.sim.api` is the simulation API — a frozen
:class:`~repro.sim.api.RunRequest` describes one (workload, configuration,
attack model) run, :func:`~repro.sim.api.execute` simulates it on a freshly
built machine, and a :class:`~repro.sim.api.Session` batches requests
through :mod:`repro.sim.engine`'s worker pool, the content-addressed
:mod:`repro.sim.cache`, and the :mod:`repro.sim.events` observer stream.

Session behaviour is configured by the frozen policy objects in
:mod:`repro.sim.policies`; an :class:`~repro.sim.policies.ExecutionPolicy`
with a ``fabric`` URL routes sweeps to the distributed scheduler in
:mod:`repro.fabric`.
"""

from repro.sim.api import (
    FAILURE_BUDGET,
    FAILURE_CANCELLED,
    FAILURE_CRASH,
    FAILURE_HANG,
    FAILURE_KINDS,
    FAILURE_TIMEOUT,
    TRANSIENT_FAILURE_KINDS,
    Instrumentation,
    RunFailure,
    RunMetrics,
    RunRequest,
    Session,
    execute,
)
from repro.sim.cache import ResultCache, SweepJournal, cache_key
from repro.sim.configs import (
    EVALUATED_CONFIGS,
    SDO_CONFIG_NAMES,
    EvaluatedConfig,
    config_by_name,
    make_protection,
)
from repro.sim.engine import RetryPolicy, SweepEngine
from repro.sim.events import JsonlEventLog, ProgressLine, RunEvent, read_events
from repro.sim.policies import CachePolicy, ExecutionPolicy, JournalPolicy

__all__ = [
    "CachePolicy",
    "EVALUATED_CONFIGS",
    "EvaluatedConfig",
    "ExecutionPolicy",
    "FAILURE_BUDGET",
    "FAILURE_CANCELLED",
    "FAILURE_CRASH",
    "FAILURE_HANG",
    "FAILURE_KINDS",
    "FAILURE_TIMEOUT",
    "Instrumentation",
    "JournalPolicy",
    "JsonlEventLog",
    "ProgressLine",
    "ResultCache",
    "RetryPolicy",
    "RunEvent",
    "RunFailure",
    "RunMetrics",
    "RunRequest",
    "SDO_CONFIG_NAMES",
    "Session",
    "SweepEngine",
    "SweepJournal",
    "TRANSIENT_FAILURE_KINDS",
    "cache_key",
    "config_by_name",
    "execute",
    "make_protection",
    "read_events",
]
