"""The simulation API: :class:`RunRequest`, :class:`RunMetrics`,
:class:`RunFailure`, and :class:`Session`.

A :class:`RunRequest` is the frozen, self-contained description of one
simulation — workload, Table II configuration, attack model, machine, and
limits.  :func:`execute` turns a request into :class:`RunMetrics` by
building a fresh (core + hierarchy + protection) machine; it is a pure
function of the request, which is what makes sweeps embarrassingly parallel
and results content-addressable.

A :class:`Session` owns the pieces a sweep needs — worker pool size, the
on-disk result cache, and event observers — and offers three entry points:

>>> session = Session(execution=ExecutionPolicy(jobs=4))  # doctest: +SKIP
>>> metrics = session.run(workload, "Hybrid")             # doctest: +SKIP
>>> results = session.sweep(suite())                      # doctest: +SKIP

Session behaviour (worker pool, cache, journal, fabric routing) is
configured by the frozen policy objects in :mod:`repro.sim.policies`.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence, Union

from repro.common.config import AttackModel, MachineConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.core import Core
from repro.sim.configs import (
    EVALUATED_CONFIGS,
    EvaluatedConfig,
    config_by_name,
    make_protection,
)
from repro.workloads.workload import Workload

if TYPE_CHECKING:
    from repro.sim.cache import ResultCache, SweepJournal
    from repro.sim.events import EventObserver
    from repro.sim.policies import CachePolicy, ExecutionPolicy, JournalPolicy

#: Default commit budget per run (the seed harness's historical default).
DEFAULT_MAX_INSTRUCTIONS = 200_000

#: The failure taxonomy (``RunFailure.kind``).  ``crash`` is any worker
#: exception; ``hang`` is the core watchdog's :class:`SimulationHang`;
#: ``timeout`` is a wall-clock kill by the sweep engine; ``budget-exhausted``
#: is a run that hit its cycle/instruction budget without halting (only a
#: failure when the engine is told to treat it as one); ``cancelled`` is a
#: cell abandoned on SIGINT/SIGTERM before it ran.
FAILURE_CRASH = "crash"
FAILURE_HANG = "hang"
FAILURE_TIMEOUT = "timeout"
FAILURE_BUDGET = "budget-exhausted"
FAILURE_CANCELLED = "cancelled"
FAILURE_KINDS = frozenset(
    {FAILURE_CRASH, FAILURE_HANG, FAILURE_TIMEOUT, FAILURE_BUDGET, FAILURE_CANCELLED}
)
#: Kinds worth retrying by default: a timeout or crash may be environmental
#: (loaded host, OOM-killed worker); a hang or exhausted budget is a
#: deterministic property of the simulation and will simply repeat.
TRANSIENT_FAILURE_KINDS = frozenset({FAILURE_CRASH, FAILURE_TIMEOUT})


@dataclass(frozen=True)
class Instrumentation:
    """Opt-in observability for a single run.

    ``trace_jsonl``/``trace_konata`` name output files for the cycle trace
    (either or both); ``profile`` turns on wall-time phase profiling whose
    numbers land in ``RunMetrics.stats`` under ``profile.*``.  An *active*
    instrumentation makes the run side-effecting and host-dependent, so the
    engine bypasses the result cache for it in both directions — an
    instrumented run is never served from cache (the trace files must be
    produced) and never stored (profile stats describe this machine only).
    """

    trace_jsonl: str | Path | None = None
    trace_konata: str | Path | None = None
    trace_buffer: int = 4096
    profile: bool = False

    @property
    def traced(self) -> bool:
        return self.trace_jsonl is not None or self.trace_konata is not None

    @property
    def active(self) -> bool:
        return self.traced or self.profile

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`).

        Paths are serialized as strings; note that an *active*
        instrumentation is host-bound and refused by the fabric client.
        """
        return {
            "trace_jsonl": str(self.trace_jsonl) if self.trace_jsonl else None,
            "trace_konata": str(self.trace_konata) if self.trace_konata else None,
            "trace_buffer": self.trace_buffer,
            "profile": self.profile,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Instrumentation":
        return cls(
            trace_jsonl=payload.get("trace_jsonl"),
            trace_konata=payload.get("trace_konata"),
            trace_buffer=payload.get("trace_buffer", 4096),
            profile=payload.get("profile", False),
        )


@dataclass(frozen=True)
class RunMetrics:
    """Results of one simulation run."""

    workload: str
    config: str
    attack_model: AttackModel
    cycles: int
    instructions: int
    stats: dict[str, float] = field(repr=False, default_factory=dict)
    #: Why the run stopped: ``halted`` (clean HALT commit), ``max_cycles``
    #: or ``max_instructions`` (budget exhausted without halting).  Mirrors
    #: ``SimulationResult.termination``; eval tables/figures warn when they
    #: are fed unhalted cells.
    termination: str = "halted"

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def halted(self) -> bool:
        return self.termination == "halted"

    def normalized_to(self, baseline: "RunMetrics") -> float:
        """Execution time normalized to a baseline run (Figure 6's metric).

        Uses cycles-per-instruction so runs that committed slightly different
        instruction counts (e.g. capped runs) stay comparable.
        """
        if self.attack_model is not baseline.attack_model:
            raise ValueError(
                f"cannot normalize across attack models: {self.config}/"
                f"{self.workload} ran under {self.attack_model.value!r} but "
                f"the baseline {baseline.config}/{baseline.workload} ran "
                f"under {baseline.attack_model.value!r}"
            )
        if self.instructions == 0 or baseline.instructions == 0:
            raise ValueError("cannot normalize a run that committed nothing")
        own = self.cycles / self.instructions
        base = baseline.cycles / baseline.instructions
        return own / base

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "workload": self.workload,
            "config": self.config,
            "attack_model": self.attack_model.value,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "stats": dict(self.stats),
            "termination": self.termination,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunMetrics":
        return cls(
            workload=payload["workload"],
            config=payload["config"],
            attack_model=AttackModel(payload["attack_model"]),
            cycles=int(payload["cycles"]),
            instructions=int(payload["instructions"]),
            stats=dict(payload["stats"]),
            termination=payload.get("termination", "halted"),
        )

    @property
    def squashes(self) -> float:
        """SDO-induced squashes (Figure 8's x-axis): Obl-Ld fails + Obl-FP
        fails + validation mismatches — branch mispredicts excluded, they
        exist in every configuration."""
        return (
            self.stats.get("core.obl_fail_squashes", 0)
            + self.stats.get("core.fp_fail_squashes", 0)
            + self.stats.get("core.validation_mismatch_squashes", 0)
        )

    @property
    def predictor_precision(self) -> float:
        total = self.stats.get("stt.sdo.predictions", 0)
        return self.stats.get("stt.sdo.precise", 0) / total if total else 0.0

    @property
    def predictor_accuracy(self) -> float:
        total = self.stats.get("stt.sdo.predictions", 0)
        return self.stats.get("stt.sdo.accurate", 0) / total if total else 0.0


@dataclass(frozen=True)
class RunRequest:
    """Everything needed to simulate one (workload, config, model) cell.

    Frozen: a request is a value.  Two equal requests produce equal metrics
    (simulation is deterministic), which is what the result cache keys on.
    """

    workload: Workload
    config: EvaluatedConfig
    attack_model: AttackModel = AttackModel.SPECTRE
    machine: MachineConfig = field(default_factory=MachineConfig)
    check_golden: bool = True
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS
    #: Optional tracing/profiling.  Deliberately NOT part of the cache key
    #: (see ``repro.sim.cache.cache_key``) — it never changes the simulated
    #: outcome; instrumented runs bypass the cache entirely instead.
    instrumentation: Instrumentation | None = None
    #: Forward-progress watchdog window in cycles (``None`` → the core's
    #: default).  Also NOT part of the cache key: the watchdog can only
    #: abort a wedged run, never change the metrics of one that completes.
    hang_window: int | None = None

    def to_dict(self) -> dict[str, object]:
        """JSON-ready wire form of the request (inverse of :meth:`from_dict`).

        This is what travels to the fabric scheduler: the whole workload
        (program + warm set), the Table II config, the machine, and the run
        limits — everything a remote worker needs to reproduce this cell
        bit-identically, and exactly the material the content-addressed
        cache key hashes.
        """
        return {
            "workload": self.workload.to_dict(),
            "config": self.config.to_dict(),
            "attack_model": self.attack_model.value,
            "machine": self.machine.to_dict(),
            "check_golden": self.check_golden,
            "max_instructions": self.max_instructions,
            "instrumentation": (
                self.instrumentation.to_dict() if self.instrumentation else None
            ),
            "hang_window": self.hang_window,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRequest":
        instrumentation = payload.get("instrumentation")
        return cls(
            workload=Workload.from_dict(payload["workload"]),
            config=EvaluatedConfig.from_dict(payload["config"]),
            attack_model=AttackModel(payload["attack_model"]),
            machine=MachineConfig.from_dict(payload["machine"]),
            check_golden=payload.get("check_golden", True),
            max_instructions=payload.get(
                "max_instructions", DEFAULT_MAX_INSTRUCTIONS
            ),
            instrumentation=(
                Instrumentation.from_dict(instrumentation)
                if instrumentation
                else None
            ),
            hang_window=payload.get("hang_window"),
        )


@dataclass(frozen=True)
class RunFailure:
    """A run that did not produce metrics.

    The engine converts worker exceptions into these so one bad cell cannot
    kill a whole sweep; the traceback is captured as text because exception
    objects do not reliably cross process boundaries.  ``kind`` classifies
    the failure (see :data:`FAILURE_KINDS`) so retry policies and
    post-mortems can tell a wall-clock timeout from a simulator hang from a
    plain crash; ``attempts`` counts how many executions were tried
    (``> 1`` means retries were exhausted).
    """

    workload: str
    config: str
    attack_model: AttackModel
    error_type: str
    message: str
    traceback: str = field(default="", repr=False)
    kind: str = FAILURE_CRASH
    attempts: int = 1

    def __str__(self) -> str:
        tries = f" after {self.attempts} attempts" if self.attempts > 1 else ""
        return (
            f"{self.workload}/{self.config} ({self.attack_model.value}) "
            f"[{self.kind}{tries}]: {self.error_type}: {self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "workload": self.workload,
            "config": self.config,
            "attack_model": self.attack_model.value,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "kind": self.kind,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunFailure":
        return cls(
            workload=payload["workload"],
            config=payload["config"],
            attack_model=AttackModel(payload["attack_model"]),
            error_type=payload["error_type"],
            message=payload["message"],
            traceback=payload.get("traceback", ""),
            kind=payload.get("kind", FAILURE_CRASH),
            attempts=int(payload.get("attempts", 1)),
        )


#: What a sweep yields per cell.
RunOutcome = Union[RunMetrics, RunFailure]


def execute(request: RunRequest, *, golden=None) -> RunMetrics:
    """Simulate one request on a freshly built machine.

    A fresh core + hierarchy is built per call (no state leaks between
    runs); the workload's warm addresses are pre-loaded first.  The
    ablation knobs on the request machine's protection (``dram_do_variant``,
    ``early_forwarding``) survive the config-derived protection swap, so a
    machine built for an ablation study keeps its meaning.

    If the request carries an active :class:`Instrumentation`, the run is
    additionally traced (cycle trace → JSONL and/or Konata files) and/or
    profiled (``profile.*`` wall-time stats merged into the result).

    ``golden`` injects a commit-time golden reference into the core in
    place of the default functional ISS (see
    :class:`~repro.pipeline.core.GoldenReference`).  The reference is pure
    validation — it can abort a wrong run but never changes the metrics of
    a correct one — so ``repro.replay`` uses this hook to drive the timing
    pipeline from a recorded architectural trace while producing
    bit-identical :class:`RunMetrics`.
    """
    instrumentation = request.instrumentation
    profiler = None
    if instrumentation is not None and instrumentation.profile:
        from repro.analysis.profiler import PhaseProfiler

        profiler = PhaseProfiler()
    tracer = None

    def timed(name):
        if profiler is None:
            return nullcontext()
        return profiler.phase(name)

    with timed("build"):
        knobs = request.machine.protection
        protection_config = replace(
            request.config.protection_config(request.attack_model),
            dram_do_variant=knobs.dram_do_variant,
            early_forwarding=knobs.early_forwarding,
        )
        machine = request.machine.with_protection(protection_config)
        protection = make_protection(
            request.config, request.attack_model, dram_do_variant=knobs.dram_do_variant
        )
        hierarchy = MemoryHierarchy(machine)
        core = Core(
            request.workload.program,
            config=machine,
            protection=protection,
            hierarchy=hierarchy,
            check_golden=request.check_golden,
            golden=golden,
        )
        if instrumentation is not None and instrumentation.traced:
            from repro.analysis.trace import CycleTracer

            tracer = CycleTracer(
                jsonl_path=instrumentation.trace_jsonl,
                konata_path=instrumentation.trace_konata,
                buffer_capacity=instrumentation.trace_buffer,
            ).attach(core)
    with timed("warm"):
        if request.workload.warm_addresses:
            hierarchy.warm(request.workload.warm_addresses)
    try:
        with timed("simulate"):
            result = core.run(
                max_instructions=request.max_instructions,
                max_cycles=request.workload.max_cycles,
                hang_window=request.hang_window,
            )
    finally:
        if tracer is not None:
            with timed("finalize"):
                tracer.close()
    stats = result.stats
    if profiler is not None:
        stats = dict(stats)
        stats.update(profiler.as_stats(result.cycles, result.instructions))
    return RunMetrics(
        workload=request.workload.name,
        config=request.config.name,
        attack_model=request.attack_model,
        cycles=result.cycles,
        instructions=result.instructions,
        stats=stats,
        termination=result.termination,
    )


#: Sentinel distinguishing "``cache`` not passed" from the legacy explicit
#: ``cache=None`` (which meant "no caching" and still must).
_UNSET = object()

#: Legacy ``Session`` keyword → the policy expression that replaces it.
_LEGACY_EXECUTION_KWARGS = {
    "jobs": "execution=ExecutionPolicy(jobs=...)",
    "timeout": "execution=ExecutionPolicy(timeout=...)",
    "retries": "execution=ExecutionPolicy(retries=...)",
    "hang_window": "execution=ExecutionPolicy(hang_window=...)",
    "fail_on_unhalted": "execution=ExecutionPolicy(fail_on_unhalted=...)",
}


def _warn_legacy_kwarg(old: str, replacement: str) -> None:
    import warnings

    warnings.warn(
        f"Session({old}=...) is deprecated; pass {replacement} instead "
        "(the keyword will be removed in the next release)",
        DeprecationWarning,
        stacklevel=4,
    )


class Session:
    """Owns the sweep engine, the result cache, and the event observers.

    Behaviour is configured by three frozen policy objects (see
    :mod:`repro.sim.policies`):

    >>> from repro.sim.policies import CachePolicy, ExecutionPolicy  # doctest: +SKIP
    >>> Session(execution=ExecutionPolicy(jobs=4, retries=2))        # doctest: +SKIP
    >>> Session(cache=CachePolicy(enabled=False))                    # doctest: +SKIP
    >>> Session(execution=ExecutionPolicy(fabric="http://host:8700"))  # doctest: +SKIP

    Parameters
    ----------
    machine:
        Default machine for requests built by this session (Table I if
        omitted); per-request machines override it.
    execution:
        :class:`~repro.sim.policies.ExecutionPolicy` — worker count,
        per-run timeout, retry policy, watchdog window, and the optional
        ``fabric`` scheduler URL that routes sweeps to the distributed
        fabric instead of the in-process pool.
    cache:
        :class:`~repro.sim.policies.CachePolicy`, or a ready-made
        :class:`~repro.sim.cache.ResultCache`.  Defaults to the on-disk
        cache under ``.repro-cache/``.
    journal:
        :class:`~repro.sim.policies.JournalPolicy`, or a ready-made
        :class:`~repro.sim.cache.SweepJournal`.  Terminal outcomes are
        recorded as they settle; ``resume`` replays recorded outcomes
        instead of re-executing their cells.
    observers:
        Callables receiving every :class:`~repro.sim.events.RunEvent`.
    check_golden / max_instructions:
        Defaults for requests built by this session.

    The pre-policy keyword arguments (``jobs``, ``cache_dir``, ``timeout``,
    ``retries``, ``resume``, ``hang_window``, ``fail_on_unhalted``, and
    boolean ``cache`` / path ``journal``) are still accepted for one release
    but emit a :class:`DeprecationWarning` naming the replacement.
    """

    def __init__(
        self,
        machine: MachineConfig | None = None,
        *,
        execution: "ExecutionPolicy | None" = None,
        cache: "CachePolicy | ResultCache | bool | None" = _UNSET,
        journal: "JournalPolicy | SweepJournal | str | Path | None" = None,
        observers: Iterable["EventObserver"] = (),
        check_golden: bool = True,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
        **legacy: object,
    ) -> None:
        # Imported lazily: engine/cache/policies depend on the types above.
        from repro.sim.cache import ResultCache, SweepJournal
        from repro.sim.engine import SweepEngine
        from repro.sim.policies import CachePolicy, ExecutionPolicy, JournalPolicy

        self.machine = machine or MachineConfig()
        self.check_golden = check_golden
        self.max_instructions = max_instructions

        overrides = {}
        for name, replacement in _LEGACY_EXECUTION_KWARGS.items():
            if name in legacy:
                _warn_legacy_kwarg(name, replacement)
                overrides[name] = legacy.pop(name)
        if overrides:
            if execution is not None:
                raise TypeError(
                    f"legacy keyword(s) {sorted(overrides)} conflict with "
                    "execution=ExecutionPolicy(...); pass one or the other"
                )
            execution = ExecutionPolicy(**overrides)
        self.execution = execution or ExecutionPolicy()
        self.hang_window = self.execution.hang_window

        cache_dir = legacy.pop("cache_dir", None)
        if cache_dir is not None:
            _warn_legacy_kwarg("cache_dir", "cache=CachePolicy(cache_dir=...)")
        resume = bool(legacy.pop("resume", False))
        if resume:
            _warn_legacy_kwarg("resume", "journal=JournalPolicy(resume=True)")
        if legacy:
            raise TypeError(
                f"Session() got unexpected keyword argument(s) {sorted(legacy)}"
            )

        if isinstance(cache, CachePolicy):
            if cache_dir is not None:
                raise TypeError("cache_dir conflicts with cache=CachePolicy(...)")
            self.cache_policy = cache
        elif isinstance(cache, ResultCache):
            # NB: isinstance, not truthiness — an *empty* ResultCache is
            # falsy (__len__).  A ready-made cache stays first-class.
            self.cache_policy = CachePolicy(cache_dir=str(cache.root))
        else:
            if cache is not _UNSET:
                _warn_legacy_kwarg("cache", "cache=CachePolicy(enabled=...)")
            self.cache_policy = CachePolicy(
                enabled=True if cache is _UNSET else bool(cache),
                cache_dir=str(cache_dir) if cache_dir is not None else None,
            )
        self.cache: "ResultCache | None" = (
            cache if isinstance(cache, ResultCache) else self.cache_policy.build()
        )

        if isinstance(journal, JournalPolicy):
            if resume:
                raise TypeError("resume conflicts with journal=JournalPolicy(...)")
            self.journal_policy = journal
        elif isinstance(journal, SweepJournal):
            self.journal_policy = JournalPolicy(path=str(journal.path), resume=resume)
            if resume:
                journal.load()
        else:
            if isinstance(journal, (str, Path)):
                _warn_legacy_kwarg("journal", "journal=JournalPolicy(path=...)")
            elif journal is not None:
                raise TypeError(
                    "journal must be a JournalPolicy, SweepJournal, or path; "
                    f"got {type(journal).__name__}"
                )
            if resume and journal is None:
                raise ValueError("resume=True requires a journal")
            self.journal_policy = JournalPolicy(
                path=str(journal) if journal is not None else None, resume=resume
            )
        self.journal: "SweepJournal | None" = (
            journal
            if isinstance(journal, SweepJournal)
            else self.journal_policy.build()
        )

        # The trace store lives next to the result cache so the same root
        # directory carries both content-addressed artifact kinds.
        self.trace_store = None
        if self.execution.replay:
            from repro.replay.store import TraceStore

            if self.cache is not None:
                trace_root = Path(self.cache.root) / "traces"
            else:
                trace_root = (
                    Path(self.cache_policy.cache_dir or ".repro-cache") / "traces"
                )
            self.trace_store = TraceStore(trace_root)

        self.engine = SweepEngine(
            jobs=self.execution.jobs,
            cache=self.cache,
            observers=observers,
            timeout=self.execution.timeout,
            retry=self.execution.retry_policy,
            journal=self.journal,
            fail_on_unhalted=self.execution.fail_on_unhalted,
            trace_store=self.trace_store,
        )
        self._fabric_client = None
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def add_observer(self, observer: "EventObserver") -> None:
        self.engine.add_observer(observer)

    def close(self) -> None:
        """Release session resources: the fabric client connection (if any)
        and the sweep journal.  Idempotent — safe to call any number of
        times, including via the context-manager protocol *and* explicitly.
        """
        if self._closed:
            return
        self._closed = True
        if self._fabric_client is not None:
            self._fabric_client.close()
            self._fabric_client = None
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _fabric(self):
        """The lazily created fabric client (``execution.fabric`` is set)."""
        if self._fabric_client is None:
            from repro.fabric.client import FabricClient

            self._fabric_client = FabricClient(
                self.execution.fabric, execution=self.execution
            )
        return self._fabric_client

    def request(
        self,
        workload: Workload,
        config: EvaluatedConfig | str,
        attack_model: AttackModel | str = AttackModel.SPECTRE,
        *,
        machine: MachineConfig | None = None,
        check_golden: bool | None = None,
        max_instructions: int | None = None,
        instrumentation: Instrumentation | None = None,
        hang_window: int | None = None,
    ) -> RunRequest:
        """Build a request against the session's defaults.  ``config`` and
        ``attack_model`` accept their string names for convenience."""
        if isinstance(config, str):
            config = config_by_name(config)
        if isinstance(attack_model, str):
            attack_model = AttackModel(attack_model)
        return RunRequest(
            workload=workload,
            config=config,
            attack_model=attack_model,
            machine=machine or self.machine,
            check_golden=(
                self.check_golden if check_golden is None else check_golden
            ),
            max_instructions=(
                self.max_instructions if max_instructions is None else max_instructions
            ),
            instrumentation=instrumentation,
            hang_window=self.hang_window if hang_window is None else hang_window,
        )

    def run(
        self,
        workload: Workload | RunRequest,
        config: EvaluatedConfig | str | None = None,
        attack_model: AttackModel | str = AttackModel.SPECTRE,
        *,
        machine: MachineConfig | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> RunMetrics:
        """Run one cell (through cache and observers) and return its metrics.

        Accepts either a prebuilt :class:`RunRequest` or the
        (workload, config, attack model) triple.  Raises if the run failed.
        """
        if isinstance(workload, RunRequest):
            request = workload
            if instrumentation is not None:
                request = replace(request, instrumentation=instrumentation)
        else:
            if config is None:
                raise TypeError("run() needs a config unless given a RunRequest")
            request = self.request(
                workload,
                config,
                attack_model,
                machine=machine,
                instrumentation=instrumentation,
            )
        [outcome] = self.run_many([request], strict=True)
        return outcome

    def run_many(
        self, requests: Sequence[RunRequest], *, strict: bool = False
    ) -> list[RunOutcome]:
        """Run a batch; results keep request order.

        With ``strict=False`` (default) crashed cells come back as
        :class:`RunFailure` entries; with ``strict=True`` the first failure
        raises ``RuntimeError`` after the whole batch has completed.

        When the session's :class:`~repro.sim.policies.ExecutionPolicy`
        names a ``fabric`` scheduler, the batch is submitted there instead
        of the in-process pool; events stream back through the same
        observers, and settled outcomes land in the local cache and journal
        exactly as a local run's would.
        """
        if self._closed:
            raise RuntimeError("Session is closed")
        if self.execution.fabric is not None:
            outcomes = self._run_on_fabric(requests)
        else:
            outcomes = self.engine.run(requests)
        if strict:
            failures = [o for o in outcomes if isinstance(o, RunFailure)]
            if failures:
                summary = "; ".join(str(f) for f in failures[:3])
                if len(failures) > 3:
                    summary += f"; … {len(failures) - 3} more"
                raise RuntimeError(
                    f"{len(failures)}/{len(outcomes)} runs failed: {summary}"
                ) from None
        return outcomes

    def _run_on_fabric(self, requests: Sequence[RunRequest]) -> list[RunOutcome]:
        """Submit a batch to the fabric scheduler and await its outcomes.

        Every request goes over the wire — including ones the local cache
        could answer — so event indices line up with the submitted batch
        and the scheduler's artifact store stays the source of truth.
        Settled outcomes are then recorded locally (cache + journal) so a
        later offline run of the same cells is free.
        """
        for request in requests:
            if request.instrumentation is not None and request.instrumentation.active:
                raise ValueError(
                    "instrumented runs are host-bound (trace/profile output "
                    "lands on the worker) and cannot be submitted to a "
                    f"fabric: {request.workload.name}/{request.config.name}"
                )
        outcomes = self._fabric().run_many(requests, emit=self.engine.emit_event)
        if self.cache is not None or self.journal is not None:
            from repro.sim.cache import cache_key

            for request, outcome in zip(requests, outcomes):
                key = cache_key(request)
                if self.cache is not None and isinstance(outcome, RunMetrics):
                    if self.cache.get(request) is None:
                        self.cache.put(request, outcome)
                if self.journal is not None:
                    self.journal.record(key, outcome)
        return outcomes

    def sweep(
        self,
        workloads: Sequence[Workload],
        configs: Sequence[EvaluatedConfig] = EVALUATED_CONFIGS,
        attack_models: Sequence[AttackModel] = (
            AttackModel.SPECTRE,
            AttackModel.FUTURISTIC,
        ),
        *,
        machine: MachineConfig | None = None,
        strict: bool = True,
    ) -> list[RunOutcome]:
        """The full evaluation grid: every (model, workload, config) cell.

        Result order is deterministic — attack models outermost, then
        workloads, then configs — regardless of worker count, cache hits,
        or fabric scheduling.
        """
        requests = [
            self.request(workload, config, attack_model, machine=machine)
            for attack_model in attack_models
            for workload in workloads
            for config in configs
        ]
        return self.run_many(requests, strict=strict)


def _rebrand(metrics: RunMetrics, request: RunRequest) -> RunMetrics:
    """Stamp a cached result with the request's identity fields.

    The cache is content-addressed on the *semantic* inputs (program, warm
    set, configs…), so a renamed but otherwise identical workload hits the
    same entry; the name on the returned metrics must come from the request,
    not from whoever populated the cache.
    """
    if (
        metrics.workload == request.workload.name
        and metrics.config == request.config.name
        and metrics.attack_model is request.attack_model
    ):
        return metrics
    return replace(
        metrics,
        workload=request.workload.name,
        config=request.config.name,
        attack_model=request.attack_model,
    )
