"""The evaluated design variants (Table II, plus competing baselines).

==============  ==============================================================
Unsafe          an unmodified insecure processor
STT{ld}         STT, delaying the execution of unsafe loads only
STT{ld+fp}      STT, delaying unsafe loads and fmul/fdiv/fsqrt micro-ops
Static L1/2/3   SDO with a predictor always predicting that cache level
Hybrid          SDO with the hybrid location predictor (Section V-D)
Perfect         SDO with an oracle predictor
SpecBox         label-based transparent speculation (speculative buffer)
DelayOnMiss     speculative L1 misses delayed to the visibility point
Fence           every speculative load delayed to the visibility point
==============  ==============================================================

Per Section VIII-A, every SDO configuration also protects FP transmitters by
statically predicting normal inputs (Obl-FP), and handles virtual memory
with the single L1-TLB DO variant.  Each configuration can be instantiated
under either attack model.  The last three rows are not from the paper:
they are published competing schemes (plus the fence-every-load worst
case) added as first-class baselines so the figure matrix and the
security harnesses can compare against them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import (
    AttackModel,
    PredictorKind,
    ProtectionConfig,
    ProtectionKind,
)
from repro.baselines import (
    DelayOnMissProtection,
    FenceProtection,
    SpecBoxProtection,
)
from repro.core.predictors import make_predictor
from repro.core.protection import SdoProtection
from repro.pipeline.protection import ProtectionScheme, UnsafeProtection
from repro.stt.protection import SttProtection


@dataclass(frozen=True)
class EvaluatedConfig:
    """One Table II row."""

    name: str
    kind: ProtectionKind
    predictor: PredictorKind | None = None
    fp_transmitters: bool = False
    description: str = ""

    def protection_config(self, attack_model: AttackModel) -> ProtectionConfig:
        return ProtectionConfig(
            kind=self.kind,
            attack_model=attack_model,
            predictor=self.predictor,
            fp_transmitters=self.fp_transmitters,
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "kind": self.kind.value,
            "predictor": self.predictor.value if self.predictor else None,
            "fp_transmitters": self.fp_transmitters,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EvaluatedConfig":
        predictor = payload.get("predictor")
        return cls(
            name=payload["name"],
            kind=ProtectionKind(payload["kind"]),
            predictor=PredictorKind(predictor) if predictor else None,
            fp_transmitters=payload.get("fp_transmitters", False),
            description=payload.get("description", ""),
        )


EVALUATED_CONFIGS: tuple[EvaluatedConfig, ...] = (
    EvaluatedConfig(
        "Unsafe", ProtectionKind.UNSAFE,
        description="An unmodified insecure processor",
    ),
    EvaluatedConfig(
        "STT{ld}", ProtectionKind.STT,
        description="STT, delaying the execution of unsafe loads only",
    ),
    EvaluatedConfig(
        "STT{ld+fp}", ProtectionKind.STT, fp_transmitters=True,
        description="STT, delaying unsafe loads and fmul/div/fsqrt micro-ops",
    ),
    EvaluatedConfig(
        "Static L1", ProtectionKind.STT_SDO, PredictorKind.STATIC_L1,
        fp_transmitters=True,
        description="SDO with predictor always predicting L1 D-Cache",
    ),
    EvaluatedConfig(
        "Static L2", ProtectionKind.STT_SDO, PredictorKind.STATIC_L2,
        fp_transmitters=True,
        description="SDO with predictor always predicting L2",
    ),
    EvaluatedConfig(
        "Static L3", ProtectionKind.STT_SDO, PredictorKind.STATIC_L3,
        fp_transmitters=True,
        description="SDO with predictor always predicting L3",
    ),
    EvaluatedConfig(
        "Hybrid", ProtectionKind.STT_SDO, PredictorKind.HYBRID,
        fp_transmitters=True,
        description="SDO with proposed hybrid location predictor",
    ),
    EvaluatedConfig(
        "Perfect", ProtectionKind.STT_SDO, PredictorKind.PERFECT,
        fp_transmitters=True,
        description="SDO with oracle predictor always predicting correctly",
    ),
    EvaluatedConfig(
        "SpecBox", ProtectionKind.SPECBOX,
        description="Label-based transparent speculation: speculative loads "
                    "fill a speculative buffer, released into the caches at "
                    "commit and dropped on squash",
    ),
    EvaluatedConfig(
        "DelayOnMiss", ProtectionKind.DELAY_ON_MISS,
        description="Speculative loads that miss the L1 are delayed to the "
                    "visibility point; L1 hits proceed",
    ),
    EvaluatedConfig(
        "Fence", ProtectionKind.FENCE,
        description="Fence on every load: every speculative load is delayed "
                    "to its visibility point — the worst-case conservative "
                    "baseline",
    ),
)

#: The SDO rows of Table II (used by Figure 8 / Table III harnesses).
SDO_CONFIG_NAMES: tuple[str, ...] = (
    "Static L1", "Static L2", "Static L3", "Hybrid", "Perfect",
)


#: Name → config index, built once (``config_by_name`` is on the hot path of
#: request construction for every sweep cell).
_CONFIGS_BY_NAME: dict[str, EvaluatedConfig] = {c.name: c for c in EVALUATED_CONFIGS}


def config_by_name(name: str) -> EvaluatedConfig:
    try:
        return _CONFIGS_BY_NAME[name]
    except KeyError:
        import difflib

        close = difflib.get_close_matches(name, _CONFIGS_BY_NAME, n=1, cutoff=0.5)
        hint = f"; did you mean {close[0]!r}?" if close else ""
        raise KeyError(
            f"no configuration named {name!r}{hint}; available: "
            f"{[c.name for c in EVALUATED_CONFIGS]}"
        ) from None


def make_protection(
    config: EvaluatedConfig,
    attack_model: AttackModel,
    dram_do_variant: bool = False,
) -> ProtectionScheme:
    """Instantiate a fresh protection scheme for one run.

    ``dram_do_variant`` is the Section VI-B2 ablation knob (a DO variant for
    DRAM); the paper's evaluated designs all leave it off.
    """
    if config.kind is ProtectionKind.UNSAFE:
        return UnsafeProtection()
    if config.kind is ProtectionKind.STT:
        return SttProtection(
            attack_model=attack_model, fp_transmitters=config.fp_transmitters
        )
    if config.kind is ProtectionKind.SPECBOX:
        return SpecBoxProtection(attack_model=attack_model)
    if config.kind is ProtectionKind.DELAY_ON_MISS:
        return DelayOnMissProtection(attack_model=attack_model)
    if config.kind is ProtectionKind.FENCE:
        return FenceProtection(attack_model=attack_model)
    return SdoProtection(
        make_predictor(config.predictor),
        attack_model=attack_model,
        fp_transmitters=config.fp_transmitters,
        dram_do_variant=dram_do_variant,
    )
