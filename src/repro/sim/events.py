"""Run-lifecycle events and observers.

The sweep engine narrates every run through a stream of :class:`RunEvent`
records — ``queued`` when a request enters a batch, ``cache_hit`` when the
on-disk cache already holds its result, ``started`` when it is handed to a
worker, and ``finished``/``failed`` when it completes (with wall time and,
on success, committed cycles).  Observers are plain callables taking one
event; this replaces the ad-hoc ``progress`` callback the pre-1.1 harness
took, and feeds both the terminal progress line and a machine-readable
JSONL event log from the same stream.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Protocol, TextIO, runtime_checkable

#: Version stamp for serialized events.  Bump only on *incompatible*
#: changes (renamed/retyped fields); purely additive fields keep the
#: version — :meth:`RunEvent.from_dict` ignores unknown keys, so old
#: readers parse new events and vice versa.  The fabric streams events
#: across processes and hosts, where producer and consumer may be one
#: release apart.
EVENT_SCHEMA_VERSION = 1

#: The lifecycle stages, in the order a single run can traverse them.
#: ``queued → (cache_hit | cancelled | started → [timed_out → retrying →
#: started …] → (finished | failed | cancelled))``.  ``timed_out`` marks a
#: wall-clock kill and ``retrying`` a scheduled re-execution; both are
#: informational — the run still ends in exactly one terminal event.
QUEUED = "queued"
CACHE_HIT = "cache_hit"
STARTED = "started"
FINISHED = "finished"
FAILED = "failed"
TIMED_OUT = "timed_out"
RETRYING = "retrying"
CANCELLED = "cancelled"

#: Events that terminate a run (exactly one is emitted per request).
TERMINAL_EVENTS = frozenset({CACHE_HIT, FINISHED, FAILED, CANCELLED})


@dataclass(frozen=True)
class RunEvent:
    """One lifecycle event of one (workload, config, attack model) run.

    ``index`` is the request's position in its batch — results keep batch
    order, so the index ties out-of-order completion events back to their
    slot.  ``model`` is the attack model's string value (``"spectre"`` /
    ``"futuristic"``) so events serialize without enum baggage.
    """

    kind: str
    index: int
    workload: str
    config: str
    model: str
    wall_time: float | None = None
    cycles: int | None = None
    instructions: int | None = None
    error: str | None = None
    #: ``RunFailure.kind`` taxonomy value on ``failed``/``timed_out``/
    #: ``retrying``/``cancelled`` events.
    failure_kind: str | None = None
    #: 1-based execution attempt, present once a cell has been retried.
    attempt: int | None = None

    def to_dict(self) -> dict[str, object]:
        """JSON-ready dict; ``None`` fields are dropped.  Includes a
        ``schema`` stamp (:data:`EVENT_SCHEMA_VERSION`) so wire consumers
        can detect incompatible producers."""
        payload: dict[str, object] = {"schema": EVENT_SCHEMA_VERSION}
        payload.update(
            {k: v for k, v in asdict(self).items() if v is not None}
        )
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RunEvent":
        """Inverse of :meth:`to_dict`, built for forward compatibility.

        Unknown keys are ignored — the ``seq``/``ts`` bookkeeping keys
        :class:`JsonlEventLog` adds, and any fields a *newer* producer
        grew — so readers keep working across additive schema evolution.
        An explicit ``schema`` stamp newer than ours is the one thing we
        refuse: field meanings may have changed incompatibly.
        """
        schema = payload.get("schema", EVENT_SCHEMA_VERSION)
        if schema > EVENT_SCHEMA_VERSION:
            raise ValueError(
                f"event schema v{schema} is newer than this reader "
                f"(v{EVENT_SCHEMA_VERSION}); upgrade the consumer"
            )
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})


#: Anything callable with a single event is an observer.
EventObserver = Callable[[RunEvent], None]


@runtime_checkable
class ClosableObserver(Protocol):
    """Observers holding resources (files) additionally expose ``close``."""

    def __call__(self, event: RunEvent) -> None: ...

    def close(self) -> None: ...


class ProgressLine:
    """Terminal progress: one carriage-returned line updated per completion.

    Counts ``queued`` events to learn the batch size, then rewrites the line
    on every terminal event, tagging cache hits and failures.  Writes to
    stderr by default so piped stdout stays machine-readable.
    """

    _TAGS = {
        CACHE_HIT: "cached",
        FINISHED: "ok",
        FAILED: "FAILED",
        CANCELLED: "cancel",
    }

    def __init__(self, stream: TextIO | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.total = 0
        self.done = 0
        self.failures = 0
        self.cache_hits = 0
        self.cancelled = 0
        self.retries = 0
        self._started = time.time()

    def __call__(self, event: RunEvent) -> None:
        if event.kind == QUEUED:
            self.total += 1
            return
        if event.kind == RETRYING:
            self.retries += 1
            return
        if event.kind not in TERMINAL_EVENTS:
            return
        self.done += 1
        if event.kind == FAILED:
            self.failures += 1
        elif event.kind == CACHE_HIT:
            self.cache_hits += 1
        elif event.kind == CANCELLED:
            self.cancelled += 1
        elapsed = time.time() - self._started
        self.stream.write(
            f"\r[{self.done:4d}/{self.total}] {elapsed:6.0f}s  "
            f"{event.model:10s} {event.workload:18s} {event.config:12s} "
            f"{self._TAGS[event.kind]:6s}"
        )
        if self.done >= self.total:
            tallies = [
                text
                for count, text in (
                    (self.cache_hits, f"{self.cache_hits} cached"),
                    (self.failures, f"{self.failures} failed"),
                    (self.cancelled, f"{self.cancelled} cancelled"),
                    (self.retries, f"{self.retries} retries"),
                )
                if count
            ]
            self.stream.write(f"\n({', '.join(tallies)})\n" if tallies else "\n")
        self.stream.flush()


class JsonlEventLog:
    """Machine-readable event log: one JSON object per line.

    Each record is the event's fields plus a monotonically increasing
    ``seq`` and a wall-clock ``ts``, e.g.::

        {"config": "Hybrid", "cycles": 81234, "index": 3, "kind": "finished",
         "model": "spectre", "seq": 9, "ts": 1754400000.25,
         "wall_time": 1.93, "workload": "mcf_like"}

    The conventional file suffix is ``.events.jsonl`` (gitignored).

    The output file is opened lazily on the first event, so constructing a
    log and then crashing (or sweeping an empty batch) neither truncates an
    existing file nor leaves an empty one behind.  ``close()`` is idempotent
    and permanently seals the log: construction-to-close with no events is
    a no-op on the filesystem.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: TextIO | None = None
        self._closed = False
        self._seq = 0

    def __call__(self, event: RunEvent) -> None:
        if self._closed:
            return
        if self._fh is None:
            self._fh = self.path.open("w")
        record: dict[str, object] = {"seq": self._seq, "ts": round(time.time(), 6)}
        record.update(event.to_dict())
        self._seq += 1
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        self._closed = True
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlEventLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def read_events(path: str | Path) -> list[RunEvent]:
    """Parse a :class:`JsonlEventLog` file back into events (blank lines
    skipped), preserving file order — the round-trip inverse of the log."""
    events: list[RunEvent] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(RunEvent.from_dict(json.loads(line)))
    return events
