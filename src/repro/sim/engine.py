"""The parallel, cache-aware, fault-tolerant sweep engine.

:class:`SweepEngine` takes a batch of :class:`~repro.sim.api.RunRequest`
and returns one outcome per request, **in request order**, regardless of
worker count, cache state, or faults:

* cached results are resolved in the parent process without building a
  single :class:`~repro.pipeline.core.Core`;
* the remainder fans out over a managed worker-process pool (``jobs > 1``
  or a wall-clock ``timeout``) or runs in-process;
* a crashed run becomes a structured :class:`~repro.sim.api.RunFailure` in
  its slot — one bad cell cannot kill a sweep;
* a run exceeding the wall-clock ``timeout`` has its worker killed and is
  classified ``timeout``; a :class:`~repro.pipeline.core.SimulationHang`
  from the core watchdog is classified ``hang``;
* transient failures are retried per :class:`RetryPolicy` (exponential
  backoff with deterministic jitter);
* SIGINT/SIGTERM cancels the cells that have not started, drains the ones
  running, and returns partial results in request order;
* every terminal outcome is recorded in an optional
  :class:`~repro.sim.cache.SweepJournal` so an interrupted sweep resumes
  without re-executing finished cells;
* every lifecycle step is narrated to the registered observers as
  :class:`~repro.sim.events.RunEvent` records.

Simulation is deterministic, so ``jobs=N`` produces results identical to
``jobs=1`` — parallelism, caching, and fault tolerance are pure
reliability/go-faster knobs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import multiprocessing
import signal
import sys
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass
from queue import Empty
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.pipeline.core import SimulationHang
from repro.sim.api import (
    FAILURE_BUDGET,
    FAILURE_CANCELLED,
    FAILURE_CRASH,
    FAILURE_HANG,
    FAILURE_TIMEOUT,
    TRANSIENT_FAILURE_KINDS,
    RunFailure,
    RunMetrics,
    RunOutcome,
    RunRequest,
    _rebrand,
    execute,
)
from repro.sim.cache import ResultCache, cache_key
from repro.sim.events import (
    CACHE_HIT,
    CANCELLED,
    FAILED,
    FINISHED,
    QUEUED,
    RETRYING,
    STARTED,
    TIMED_OUT,
    EventObserver,
    RunEvent,
)

if TYPE_CHECKING:
    from repro.sim.cache import SweepJournal

#: (error type name, message, formatted traceback, failure kind) —
#: exceptions are reduced to text in the worker because they do not
#: reliably cross process pickling.
_ErrorInfo = tuple[str, str, str, str]

#: Parent-loop polling granularity (seconds): the latency floor for
#: noticing a finished worker or an expired deadline.
_TICK = 0.05


def _execute_indexed(
    index: int, request: RunRequest, trace_dir: str | None = None
) -> tuple[int, RunMetrics | None, _ErrorInfo | None, float]:
    """Worker entry point: run one request, never raise.

    With ``trace_dir`` set, the request is resolved through the replay
    backend first: a recorded architectural trace covering the request
    replaces the per-commit functional ISS (bit-identical metrics, see
    ``repro.replay``), and any missing/torn/outrun trace falls back to a
    plain live run.

    A :class:`SimulationHang` from the core's forward-progress watchdog is
    classified ``hang`` (its message carries the diagnostics snapshot —
    blocked ROB-head uop, stall reason, event-heap head); any other
    exception is a plain ``crash``.
    """
    started = time.perf_counter()
    try:
        if trace_dir is not None:
            from repro.replay.replayer import replay_or_execute

            metrics = replay_or_execute(request, trace_dir)
        else:
            metrics = execute(request)
    except SimulationHang as exc:
        info = (type(exc).__name__, str(exc), traceback.format_exc(), FAILURE_HANG)
        return index, None, info, time.perf_counter() - started
    except Exception as exc:
        info = (type(exc).__name__, str(exc), traceback.format_exc(), FAILURE_CRASH)
        return index, None, info, time.perf_counter() - started
    return index, metrics, None, time.perf_counter() - started


def _worker_main(worker_id: int, inbox, outbox, trace_dir: str | None = None) -> None:
    """Worker-process loop: execute tasks until told to stop (``None``)."""
    # Workers must not react to the terminal's Ctrl-C themselves: the
    # parent decides whether to drain or kill them.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    while True:
        task = inbox.get()
        if task is None:
            return
        index, request = task
        outbox.put((worker_id, *_execute_indexed(index, request, trace_dir)))


def _pool_context():
    """Prefer fork where available: cheap start-up, workloads shared by COW."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclass(frozen=True)
class RetryPolicy:
    """When and how failed cells are re-executed.

    ``max_retries`` extra attempts are made for failures whose ``kind`` is
    in ``retry_kinds`` (by default the transient ones: ``crash`` and
    ``timeout`` — a ``hang`` or exhausted budget is a deterministic
    property of the simulation and would simply repeat).  The n-th retry
    waits ``backoff_base * backoff_factor**(n-1)`` seconds, capped at
    ``backoff_max``, with a deterministic jitter of up to ±``jitter`` of
    the delay derived from the cell's cache key and attempt number — the
    schedule is fully reproducible for a given sweep, yet different cells
    never thundering-herd on the same instant.
    """

    max_retries: int = 0
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.1
    retry_kinds: frozenset[str] = TRANSIENT_FAILURE_KINDS

    def should_retry(self, kind: str, attempt: int) -> bool:
        """May a cell that just failed its ``attempt``-th execution with
        ``kind`` be tried again?"""
        return kind in self.retry_kinds and attempt <= self.max_retries

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`) — the
        policy travels to the fabric scheduler, which drives retries
        server-side."""
        return {
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "backoff_max": self.backoff_max,
            "jitter": self.jitter,
            "retry_kinds": sorted(self.retry_kinds),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RetryPolicy":
        kinds = payload.get("retry_kinds")
        return cls(
            max_retries=payload.get("max_retries", 0),
            backoff_base=payload.get("backoff_base", 0.5),
            backoff_factor=payload.get("backoff_factor", 2.0),
            backoff_max=payload.get("backoff_max", 30.0),
            jitter=payload.get("jitter", 0.1),
            retry_kinds=(
                frozenset(kinds) if kinds is not None else TRANSIENT_FAILURE_KINDS
            ),
        )

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before the ``attempt``-th execution (attempt >= 2),
        deterministic in (cell key, attempt)."""
        raw = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 2),
        )
        if not self.jitter or raw <= 0:
            return max(0.0, raw)
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).hexdigest()
        fraction = (int(digest[:8], 16) / 0xFFFFFFFF) * 2.0 - 1.0
        return max(0.0, raw * (1.0 + self.jitter * fraction))


class _WorkerSlot:
    """One managed worker process and its private task queue."""

    __slots__ = ("worker_id", "process", "inbox", "busy_index", "started_at")

    def __init__(self, worker_id: int, ctx, outbox, trace_dir: str | None = None) -> None:
        self.worker_id = worker_id
        self.inbox = ctx.Queue(1)
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, self.inbox, outbox, trace_dir),
            daemon=True,
        )
        self.process.start()
        self.busy_index: int | None = None
        self.started_at = 0.0

    def kill(self) -> None:
        """Forcibly stop the worker (used for wall-clock timeouts)."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - obstinate process
            self.process.kill()
            self.process.join(timeout=5.0)
        self.inbox.close()

    def stop(self) -> None:
        """Ask the worker to exit once its current task (if any) is done."""
        try:
            self.inbox.put_nowait(None)
        except Exception:  # pragma: no cover - full/closed inbox
            pass


class _SignalGuard:
    """Graceful-shutdown handler for SIGINT/SIGTERM during a sweep.

    The first signal sets the cancel flag (the engine stops dispatching,
    cancels pending cells, and drains the running ones); a second SIGINT
    raises :class:`KeyboardInterrupt` for an immediate abort.  Installed
    only in the main thread of the main interpreter — elsewhere (e.g. a
    sweep driven from a worker thread) signal handling stays untouched.
    """

    def __init__(self) -> None:
        self.cancelled = False
        self._installed: list[tuple[int, object]] = []

    def _handle(self, signum, _frame) -> None:
        if self.cancelled and signum == signal.SIGINT:
            raise KeyboardInterrupt
        self.cancelled = True

    def __enter__(self) -> "_SignalGuard":
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    previous = signal.signal(signum, self._handle)
                except (ValueError, OSError):  # pragma: no cover
                    continue
                self._installed.append((signum, previous))
        return self

    def __exit__(self, *_exc) -> None:
        for signum, previous in self._installed:
            signal.signal(signum, previous)
        self._installed.clear()


class SweepEngine:
    """Runs request batches through cache + worker pool + event stream.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` runs in-process unless ``timeout`` forces
        a killable worker.
    cache:
        Optional :class:`ResultCache` consulted/updated around execution.
    observers:
        Callables receiving every :class:`RunEvent`.
    timeout:
        Per-run wall-clock budget in seconds.  A run exceeding it has its
        worker process killed and becomes a ``timeout``
        :class:`RunFailure`.  With ``jobs == 1`` a timeout forces the
        single run into a worker process too (in-process code cannot be
        preempted).
    retry:
        :class:`RetryPolicy`, or an int meaning "that many retries with
        the default backoff", or ``None``/0 for no retries.
    journal:
        Optional :class:`~repro.sim.cache.SweepJournal`.  Terminal
        outcomes are recorded as they settle; outcomes already present
        (a loaded journal) are replayed without execution — the resume
        path.
    fail_on_unhalted:
        Treat a run that exhausted its cycle/instruction budget without
        halting as a ``budget-exhausted`` :class:`RunFailure` instead of
        returning its (suspect) metrics.
    trace_store:
        Optional :class:`~repro.replay.store.TraceStore` enabling the
        record-once/replay-many backend.  Before dispatch, the engine
        groups the cells that miss the cache by
        :func:`~repro.replay.trace.trace_key` (cells differing only in
        protection scheme, attack model, or machine parameters share a
        key) and records each group's architectural trace **once** with
        the standalone functional ISS; every execution then replays the
        trace through the timing pipeline instead of re-running the ISS
        per commit.  Replayed metrics are bit-identical to live ones, so
        cache entries, journals, and events are unaffected; a missing,
        torn, or outrun trace silently falls back to live execution.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: ResultCache | None = None,
        observers: Iterable[EventObserver] = (),
        timeout: float | None = None,
        retry: "RetryPolicy | int | None" = None,
        journal: "SweepJournal | None" = None,
        fail_on_unhalted: bool = False,
        trace_store=None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.jobs = jobs
        self.cache = cache
        self.observers: list[EventObserver] = list(observers)
        self.timeout = timeout
        if retry is None:
            retry = RetryPolicy(max_retries=0)
        elif isinstance(retry, int):
            retry = RetryPolicy(max_retries=retry)
        self.retry = retry
        self.journal = journal
        self.fail_on_unhalted = fail_on_unhalted
        self.trace_store = trace_store
        self._muted_observers: set[int] = set()
        self._keys: dict[int, str] = {}

    def add_observer(self, observer: EventObserver) -> None:
        self.observers.append(observer)

    def _emit(self, kind: str, index: int, request: RunRequest, **extra) -> None:
        if not self.observers:
            return
        self.emit_event(
            RunEvent(
                kind=kind,
                index=index,
                workload=request.workload.name,
                config=request.config.name,
                model=request.attack_model.value,
                **extra,
            )
        )

    def emit_event(self, event: RunEvent) -> None:
        """Deliver an already-built event to every observer (with the same
        mute-on-first-failure behaviour as engine-originated events).  The
        fabric client uses this to replay scheduler-streamed events into
        the session's normal observer pipeline."""
        for observer in self.observers:
            # Observers are diagnostics; a broken one must not kill the runs
            # it is narrating.  First failure per observer warns, later ones
            # are silent so a sweep is not drowned in repeats.
            try:
                observer(event)
            except Exception as exc:
                if id(observer) not in self._muted_observers:
                    self._muted_observers.add(id(observer))
                    print(
                        f"warning: event observer {observer!r} raised "
                        f"{type(exc).__name__}: {exc} (further errors from it "
                        "are suppressed)",
                        file=sys.stderr,
                    )

    @staticmethod
    def _cacheable(request: RunRequest) -> bool:
        """Instrumented runs bypass the cache in both directions: a cache
        hit would skip producing the trace files, and profile stats must
        never be stored (they describe the host, not the simulation)."""
        return request.instrumentation is None or not request.instrumentation.active

    def _key(self, index: int, request: RunRequest) -> str:
        """Memoized cache key for slot ``index`` (journal + retry jitter)."""
        key = self._keys.get(index)
        if key is None:
            key = self._keys[index] = cache_key(request)
        return key

    def run(self, requests: Sequence[RunRequest]) -> list[RunOutcome]:
        """Execute a batch; the result list mirrors ``requests`` by index."""
        requests = list(requests)
        results: list[RunOutcome | None] = [None] * len(requests)
        self._keys = {}
        for index, request in enumerate(requests):
            self._emit(QUEUED, index, request)

        pending: list[int] = []
        for index, request in enumerate(requests):
            if self._resolve_without_running(index, request, results):
                continue
            pending.append(index)

        if pending:
            if self.trace_store is not None:
                self._prepare_traces(requests, pending)
            with _SignalGuard() as guard:
                use_pool = self.jobs > 1 and len(pending) > 1
                if self.timeout is not None:
                    use_pool = True  # in-process runs cannot be preempted
                if use_pool:
                    self._run_pool(requests, pending, results, guard)
                else:
                    self._run_serial(requests, pending, results, guard)

        assert all(outcome is not None for outcome in results)
        return results  # type: ignore[return-value]

    def _trace_dir(self) -> str | None:
        if self.trace_store is None:
            return None
        return str(self.trace_store.root)

    def _prepare_traces(self, requests, pending) -> None:
        """Record (once, in the parent) the architectural trace of every
        distinct :func:`~repro.replay.trace.trace_key` among the pending
        cells.  Recording is one functional-ISS pass per unique workload ×
        budget — far cheaper than a single timed cell — and is purely an
        accelerator: any failure here leaves the store unchanged and the
        affected cells simply run live."""
        from repro.replay.recorder import record_trace
        from repro.replay.trace import trace_key

        seen: set[str] = set()
        for index in pending:
            request = requests[index]
            try:
                key = trace_key(request)
                if key in seen:
                    continue
                seen.add(key)
                if not self.trace_store.has(key):
                    self.trace_store.put(key, record_trace(request))
            except Exception as exc:
                print(
                    f"warning: trace recording for cell {index} failed with "
                    f"{type(exc).__name__}: {exc} (cell will run live)",
                    file=sys.stderr,
                )

    def _resolve_without_running(
        self, index: int, request: RunRequest, results
    ) -> bool:
        """Try to settle ``index`` from the journal or the result cache."""
        if not self._cacheable(request):
            return False
        if self.journal is not None:
            replayed = self.journal.get(self._key(index, request))
            if replayed is not None:
                outcome = _restamp(replayed, request)
                results[index] = outcome
                if isinstance(outcome, RunFailure):
                    self._emit(
                        FAILED, index, request,
                        failure_kind=outcome.kind, attempt=outcome.attempts,
                        error=f"{outcome.error_type}: {outcome.message}",
                    )
                else:
                    self._emit(
                        CACHE_HIT, index, request,
                        cycles=outcome.cycles, instructions=outcome.instructions,
                    )
                return True
        if self.cache is not None:
            cached = self.cache.get(request)
            if cached is not None:
                results[index] = cached
                if self.journal is not None:
                    self.journal.record(self._key(index, request), cached)
                self._emit(
                    CACHE_HIT, index, request,
                    cycles=cached.cycles, instructions=cached.instructions,
                )
                return True
        return False

    # ------------------------------------------------------------------ #
    # In-process execution (jobs == 1, no wall-clock timeout)
    # ------------------------------------------------------------------ #

    def _run_serial(self, requests, pending, results, guard) -> None:
        remaining = deque(pending)
        while remaining:
            index = remaining.popleft()
            if guard.cancelled:
                self._settle_cancelled(requests, results, index)
                continue
            request = requests[index]
            attempt = 1
            while True:
                self._emit(
                    STARTED, index, request,
                    attempt=attempt if attempt > 1 else None,
                )
                try:
                    _, metrics, error, wall = _execute_indexed(
                        index, request, self._trace_dir()
                    )
                except KeyboardInterrupt:
                    guard.cancelled = True
                    self._settle_cancelled(requests, results, index)
                    break
                done, kind = self._settle(
                    requests, results, index, metrics, error, wall, attempt
                )
                if done:
                    break
                attempt += 1
                delay = self.retry.delay(self._key(index, request), attempt)
                self._emit(
                    RETRYING, index, request,
                    attempt=attempt, failure_kind=kind, wall_time=delay,
                )
                if delay > 0:
                    time.sleep(delay)

    # ------------------------------------------------------------------ #
    # Managed worker pool (parallelism, wall-clock kills, draining)
    # ------------------------------------------------------------------ #

    def _run_pool(self, requests, pending, results, guard) -> None:
        ctx = _pool_context()
        workers = min(self.jobs, len(pending))
        outbox = ctx.Queue()
        slots = [
            _WorkerSlot(i, ctx, outbox, self._trace_dir()) for i in range(workers)
        ]
        ready: deque[int] = deque(pending)
        delayed: list[tuple[float, int]] = []  # (ready_at, index) heap
        attempts: dict[int, int] = {index: 1 for index in pending}
        outstanding: set[int] = set(pending)

        def busy_slots():
            return [slot for slot in slots if slot.busy_index is not None]

        try:
            while outstanding:
                now = time.monotonic()
                if guard.cancelled and (ready or delayed):
                    # Cancel everything not yet dispatched; keep draining
                    # the runs already on workers.
                    for index in list(ready):
                        self._settle_cancelled(
                            requests, results, index, attempts[index]
                        )
                        outstanding.discard(index)
                    ready.clear()
                    for _, index in delayed:
                        self._settle_cancelled(
                            requests, results, index, attempts[index]
                        )
                        outstanding.discard(index)
                    delayed.clear()
                while delayed and delayed[0][0] <= now and not guard.cancelled:
                    _, index = heapq.heappop(delayed)
                    ready.append(index)
                for slot in slots:
                    if not ready:
                        break
                    if slot.busy_index is not None:
                        continue
                    index = ready.popleft()
                    attempt = attempts[index]
                    slot.busy_index = index
                    slot.started_at = time.monotonic()
                    slot.inbox.put((index, requests[index]))
                    self._emit(
                        STARTED, index, requests[index],
                        attempt=attempt if attempt > 1 else None,
                    )
                if not outstanding:
                    break
                try:
                    item = outbox.get(timeout=_TICK)
                except Empty:
                    item = None
                if item is not None:
                    worker_id, index, metrics, error, wall = item
                    slot = slots[worker_id]
                    if slot.busy_index != index:
                        # A result from a worker killed after its deadline
                        # already settled this cell; drop the straggler.
                        continue
                    slot.busy_index = None
                    self._finish_attempt(
                        requests, results, index, metrics, error, wall,
                        attempts, delayed, outstanding,
                    )
                    continue
                self._reap_workers(
                    slots, ctx, outbox, requests, results,
                    attempts, delayed, outstanding,
                )
                if guard.cancelled and not busy_slots() and not outstanding:
                    break
        finally:
            for slot in slots:
                if slot.busy_index is None and slot.process.is_alive():
                    slot.stop()
            for slot in slots:
                if slot.busy_index is not None:
                    # Cancel settled or abandoned mid-drain (second SIGINT):
                    # don't wait for the run, kill it.
                    slot.kill()
                else:
                    slot.process.join(timeout=5.0)
                    if slot.process.is_alive():  # pragma: no cover
                        slot.kill()
            outbox.close()

    def _reap_workers(
        self, slots, ctx, outbox, requests, results,
        attempts, delayed, outstanding,
    ) -> None:
        """Kill over-deadline workers; replace unexpectedly dead ones."""
        now = time.monotonic()
        for position, slot in enumerate(slots):
            if slot.busy_index is None:
                continue
            index = slot.busy_index
            request = requests[index]
            timed_out = (
                self.timeout is not None and now - slot.started_at > self.timeout
            )
            died = not slot.process.is_alive()
            if not timed_out and not died:
                continue
            wall = now - slot.started_at
            slot.busy_index = None
            slot.kill()
            slots[position] = _WorkerSlot(
                slot.worker_id, ctx, outbox, self._trace_dir()
            )
            if timed_out:
                self._emit(
                    TIMED_OUT, index, request,
                    wall_time=wall, failure_kind=FAILURE_TIMEOUT,
                    attempt=attempts[index],
                )
                error = (
                    "TimeoutError",
                    f"run exceeded the {self.timeout:g}s wall-clock timeout",
                    "",
                    FAILURE_TIMEOUT,
                )
            else:
                error = (
                    "WorkerDied",
                    f"worker process exited unexpectedly after {wall:.1f}s "
                    "(killed by the OS?)",
                    "",
                    FAILURE_CRASH,
                )
            self._finish_attempt(
                requests, results, index, None, error, wall,
                attempts, delayed, outstanding,
            )

    def _finish_attempt(
        self, requests, results, index, metrics, error, wall,
        attempts, delayed, outstanding,
    ) -> None:
        """Settle a finished pool attempt, or schedule its retry."""
        attempt = attempts[index]
        done, kind = self._settle(
            requests, results, index, metrics, error, wall, attempt
        )
        if done:
            outstanding.discard(index)
            return
        attempts[index] = attempt + 1
        delay = self.retry.delay(self._key(index, requests[index]), attempt + 1)
        self._emit(
            RETRYING, index, requests[index],
            attempt=attempt + 1, failure_kind=kind, wall_time=delay,
        )
        heapq.heappush(delayed, (time.monotonic() + delay, index))

    # ------------------------------------------------------------------ #
    # Settlement
    # ------------------------------------------------------------------ #

    def _settle_cancelled(
        self, requests, results, index, attempts: int = 1
    ) -> None:
        request = requests[index]
        results[index] = RunFailure(
            workload=request.workload.name,
            config=request.config.name,
            attack_model=request.attack_model,
            error_type="Cancelled",
            message="sweep interrupted before this cell ran",
            kind=FAILURE_CANCELLED,
            attempts=attempts - 1 if attempts > 1 else 1,
        )
        self._emit(CANCELLED, index, request, failure_kind=FAILURE_CANCELLED)

    def _settle(
        self, requests, results, index, metrics, error, wall_time, attempt
    ) -> tuple[bool, str | None]:
        """Record one attempt's outcome.

        Returns ``(True, kind_or_None)`` when the cell is terminal, or
        ``(False, kind)`` when the failure should be retried.
        """
        request = requests[index]
        if error is None and self.fail_on_unhalted and not metrics.halted:
            error = (
                "BudgetExhausted",
                f"run stopped at {metrics.termination} after "
                f"{metrics.cycles} cycles / {metrics.instructions} "
                "instructions without halting",
                "",
                FAILURE_BUDGET,
            )
        if error is not None:
            error_type, message, trace, kind = error
            if self.retry.should_retry(kind, attempt):
                return False, kind
            failure = RunFailure(
                workload=request.workload.name,
                config=request.config.name,
                attack_model=request.attack_model,
                error_type=error_type,
                message=message,
                traceback=trace,
                kind=kind,
                attempts=attempt,
            )
            results[index] = failure
            if self.journal is not None and self._cacheable(request):
                self.journal.record(self._key(index, request), failure)
            self._emit(
                FAILED, index, request,
                wall_time=wall_time, failure_kind=kind,
                attempt=attempt if attempt > 1 else None,
                error=f"{error_type}: {message}",
            )
            return True, kind
        results[index] = metrics
        if self._cacheable(request):
            if self.cache is not None:
                self.cache.put(request, metrics)
            if self.journal is not None:
                self.journal.record(self._key(index, request), metrics)
        self._emit(
            FINISHED, index, request,
            wall_time=wall_time, cycles=metrics.cycles,
            instructions=metrics.instructions,
            attempt=attempt if attempt > 1 else None,
        )
        return True, None


def _restamp(outcome: RunOutcome, request: RunRequest) -> RunOutcome:
    """Stamp a journal-replayed outcome with the request's identity fields
    (the journal is content-addressed, like the cache)."""
    if isinstance(outcome, RunMetrics):
        return _rebrand(outcome, request)
    if (
        outcome.workload == request.workload.name
        and outcome.config == request.config.name
        and outcome.attack_model is request.attack_model
    ):
        return outcome
    return dataclasses.replace(
        outcome,
        workload=request.workload.name,
        config=request.config.name,
        attack_model=request.attack_model,
    )
