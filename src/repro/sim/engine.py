"""The parallel, cache-aware sweep engine.

:class:`SweepEngine` takes a batch of :class:`~repro.sim.api.RunRequest`
and returns one outcome per request, **in request order**, regardless of
worker count or cache state:

* cached results are resolved in the parent process without building a
  single :class:`~repro.pipeline.core.Core`;
* the remainder fans out over a ``concurrent.futures`` process pool
  (``jobs > 1``) or runs in-process (``jobs == 1``);
* a crashed run becomes a structured :class:`~repro.sim.api.RunFailure` in
  its slot — one bad cell cannot kill a sweep;
* every lifecycle step is narrated to the registered observers as
  :class:`~repro.sim.events.RunEvent` records.

Simulation is deterministic, so ``jobs=N`` produces results identical to
``jobs=1`` — parallelism and caching are pure go-faster knobs.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
import traceback
from collections import deque
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Iterable, Sequence

from repro.sim.api import RunFailure, RunMetrics, RunOutcome, RunRequest, execute
from repro.sim.cache import ResultCache
from repro.sim.events import (
    CACHE_HIT,
    FAILED,
    FINISHED,
    QUEUED,
    STARTED,
    EventObserver,
    RunEvent,
)

#: (error type name, message, formatted traceback) — exceptions are reduced
#: to text in the worker because they do not reliably cross process pickling.
_ErrorInfo = tuple[str, str, str]


def _execute_indexed(
    index: int, request: RunRequest
) -> tuple[int, RunMetrics | None, _ErrorInfo | None, float]:
    """Worker entry point: run one request, never raise."""
    started = time.perf_counter()
    try:
        metrics = execute(request)
    except Exception as exc:
        info = (type(exc).__name__, str(exc), traceback.format_exc())
        return index, None, info, time.perf_counter() - started
    return index, metrics, None, time.perf_counter() - started


def _pool_context():
    """Prefer fork where available: cheap start-up, workloads shared by COW."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


class SweepEngine:
    """Runs request batches through cache + worker pool + event stream."""

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: ResultCache | None = None,
        observers: Iterable[EventObserver] = (),
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.observers: list[EventObserver] = list(observers)
        self._muted_observers: set[int] = set()

    def add_observer(self, observer: EventObserver) -> None:
        self.observers.append(observer)

    def _emit(self, kind: str, index: int, request: RunRequest, **extra) -> None:
        if not self.observers:
            return
        event = RunEvent(
            kind=kind,
            index=index,
            workload=request.workload.name,
            config=request.config.name,
            model=request.attack_model.value,
            **extra,
        )
        for observer in self.observers:
            # Observers are diagnostics; a broken one must not kill the runs
            # it is narrating.  First failure per observer warns, later ones
            # are silent so a sweep is not drowned in repeats.
            try:
                observer(event)
            except Exception as exc:
                if id(observer) not in self._muted_observers:
                    self._muted_observers.add(id(observer))
                    print(
                        f"warning: event observer {observer!r} raised "
                        f"{type(exc).__name__}: {exc} (further errors from it "
                        "are suppressed)",
                        file=sys.stderr,
                    )

    @staticmethod
    def _cacheable(request: RunRequest) -> bool:
        """Instrumented runs bypass the cache in both directions: a cache
        hit would skip producing the trace files, and profile stats must
        never be stored (they describe the host, not the simulation)."""
        return request.instrumentation is None or not request.instrumentation.active

    def run(self, requests: Sequence[RunRequest]) -> list[RunOutcome]:
        """Execute a batch; the result list mirrors ``requests`` by index."""
        requests = list(requests)
        results: list[RunOutcome | None] = [None] * len(requests)
        for index, request in enumerate(requests):
            self._emit(QUEUED, index, request)

        pending: list[int] = []
        for index, request in enumerate(requests):
            cached = (
                self.cache.get(request)
                if self.cache is not None and self._cacheable(request)
                else None
            )
            if cached is not None:
                results[index] = cached
                self._emit(
                    CACHE_HIT, index, request,
                    cycles=cached.cycles, instructions=cached.instructions,
                )
            else:
                pending.append(index)

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                self._run_serial(requests, pending, results)
            else:
                self._run_parallel(requests, pending, results)

        assert all(outcome is not None for outcome in results)
        return results  # type: ignore[return-value]

    def _run_serial(self, requests, pending, results) -> None:
        for index in pending:
            self._emit(STARTED, index, requests[index])
            self._settle(requests, results, *_execute_indexed(index, requests[index]))

    def _run_parallel(self, requests, pending, results) -> None:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        ) as pool:
            futures = []
            for index in pending:
                futures.append(pool.submit(_execute_indexed, index, requests[index]))
            # The pool starts tasks in submission order as workers free up,
            # so narrate ``started`` the same way: the first ``workers``
            # requests immediately, then one more each time a run
            # terminates.  The event stream therefore never claims more
            # than ``workers`` runs in flight at once.
            not_started = deque(pending)
            for _ in range(workers):
                index = not_started.popleft()
                self._emit(STARTED, index, requests[index])
            # Completion order is nondeterministic; slot order is not.
            for future in as_completed(futures):
                self._settle(requests, results, *future.result())
                if not_started:
                    index = not_started.popleft()
                    self._emit(STARTED, index, requests[index])

    def _settle(self, requests, results, index, metrics, error, wall_time) -> None:
        request = requests[index]
        if error is not None:
            error_type, message, trace = error
            results[index] = RunFailure(
                workload=request.workload.name,
                config=request.config.name,
                attack_model=request.attack_model,
                error_type=error_type,
                message=message,
                traceback=trace,
            )
            self._emit(
                FAILED, index, request,
                wall_time=wall_time, error=f"{error_type}: {message}",
            )
            return
        results[index] = metrics
        if self.cache is not None and self._cacheable(request):
            self.cache.put(request, metrics)
        self._emit(
            FINISHED, index, request,
            wall_time=wall_time, cycles=metrics.cycles,
            instructions=metrics.instructions,
        )
