"""Session policy objects: how runs execute, cache, and journal.

:class:`~repro.sim.api.Session` used to take a dozen ad-hoc keyword
arguments (``jobs``, ``timeout``, ``retries``, ``cache_dir``, ``resume``,
…).  Those knobs are now grouped into three frozen policy dataclasses:

* :class:`ExecutionPolicy` — where and how cells run: worker count,
  per-run wall-clock timeout, retry policy, watchdog window, budget
  classification, and the ``fabric`` scheduler URL that switches the
  session from the in-process pool to the distributed sweep fabric.
* :class:`CachePolicy` — whether and where results are cached on disk.
* :class:`JournalPolicy` — the resumable sweep journal.

Each policy is a frozen value with ``to_dict``/``from_dict``, so the exact
same object that configures a local session can travel over the fabric
wire: a scheduler receives the submitting session's :class:`ExecutionPolicy`
and drives server-side retries with the identical
:class:`~repro.sim.engine.RetryPolicy` the local engine would have used.

>>> from repro.sim.api import Session                       # doctest: +SKIP
>>> Session(execution=ExecutionPolicy(jobs=4, retries=2))   # doctest: +SKIP
>>> Session(execution=ExecutionPolicy(fabric="http://host:8700"))  # doctest: +SKIP

The legacy keyword arguments still work for one release but emit a
:class:`DeprecationWarning` naming the policy replacement.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from pathlib import Path

from repro.sim.engine import RetryPolicy


@dataclass(frozen=True)
class ExecutionPolicy:
    """How sweep cells are executed.

    ``jobs``
        Worker processes for the in-process pool (``1`` runs serially).
        Ignored when ``fabric`` is set — worker count is then a property of
        the fabric, not the session.
    ``timeout``
        Per-run wall-clock budget in seconds; an exceeding run's worker is
        killed and the cell becomes a ``timeout`` failure.  Travels to
        fabric workers, which enforce it the same way.
    ``retries``
        Extra attempts for transient failures: an int (that many retries
        with default backoff), a full :class:`RetryPolicy`, or ``None`` for
        no retries.  Normalized to a :class:`RetryPolicy` at construction.
    ``hang_window``
        Default forward-progress watchdog window (cycles) for requests
        built by the session.
    ``fabric``
        Scheduler base URL (``http://host:8700``).  When set, sweeps are
        submitted to the distributed fabric instead of the local pool.
    ``fail_on_unhalted``
        Classify budget-exhausted runs as ``budget-exhausted`` failures.
    ``replay``
        Enable the record-once/replay-many execution backend: the session
        keeps a trace store next to its result cache, records each distinct
        architectural trace with the functional ISS before dispatch, and
        cells sharing a trace replay it instead of re-running the ISS per
        commit.  Metrics are bit-identical to live execution.
    ``transport``
        Network-retry knobs for fabric sessions: a
        :class:`~repro.fabric.transport.TransportPolicy` (or its dict form)
        controlling HTTP retry count, backoff, jitter, and the circuit
        breaker.  ``None`` means the transport defaults.  Ignored for
        purely local sessions.
    """

    jobs: int = 1
    timeout: float | None = None
    retries: RetryPolicy | int | None = None
    hang_window: int | None = None
    fabric: str | None = None
    fail_on_unhalted: bool = False
    replay: bool = False
    transport: object | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        retries = self.retries
        if retries is None or retries == 0:
            retries = RetryPolicy(max_retries=0)
        elif isinstance(retries, int):
            retries = RetryPolicy(max_retries=retries)
        elif not isinstance(retries, RetryPolicy):
            raise TypeError(
                f"retries must be an int or RetryPolicy, got {type(retries).__name__}"
            )
        object.__setattr__(self, "retries", retries)
        if self.transport is not None:
            # Lazy import: repro.fabric's package __init__ reaches back into
            # repro.sim at import time, so a module-level import here would
            # be circular.
            from repro.fabric.transport import TransportPolicy

            transport = self.transport
            if isinstance(transport, dict):
                transport = TransportPolicy.from_dict(transport)
            elif not isinstance(transport, TransportPolicy):
                raise TypeError(
                    "transport must be a TransportPolicy or dict, got "
                    f"{type(transport).__name__}"
                )
            object.__setattr__(self, "transport", transport)

    @property
    def retry_policy(self) -> RetryPolicy:
        """The normalized retry policy (``retries`` is always one post-init)."""
        return self.retries  # type: ignore[return-value]

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "jobs": self.jobs,
            "timeout": self.timeout,
            "retries": self.retry_policy.to_dict(),
            "hang_window": self.hang_window,
            "fabric": self.fabric,
            "fail_on_unhalted": self.fail_on_unhalted,
            "replay": self.replay,
            "transport": (
                None if self.transport is None else self.transport.to_dict()
            ),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExecutionPolicy":
        retries = payload.get("retries")
        return cls(
            jobs=payload.get("jobs", 1),
            timeout=payload.get("timeout"),
            retries=RetryPolicy.from_dict(retries) if retries is not None else None,
            hang_window=payload.get("hang_window"),
            fabric=payload.get("fabric"),
            fail_on_unhalted=payload.get("fail_on_unhalted", False),
            replay=payload.get("replay", False),
            transport=payload.get("transport"),
        )


@dataclass(frozen=True)
class CachePolicy:
    """Whether and where run results are cached on disk.

    ``enabled=False`` disables the content-addressed result cache entirely;
    ``cache_dir`` overrides the default ``.repro-cache/`` root.  Paths are
    normalized to strings so the policy serializes cleanly.
    """

    enabled: bool = True
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        if isinstance(self.cache_dir, Path):
            object.__setattr__(self, "cache_dir", str(self.cache_dir))

    def build(self):
        """Materialize the :class:`~repro.sim.cache.ResultCache` (or None)."""
        if not self.enabled:
            return None
        from repro.sim.cache import ResultCache

        return ResultCache(self.cache_dir or ".repro-cache")

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {"enabled": self.enabled, "cache_dir": self.cache_dir}

    @classmethod
    def from_dict(cls, payload: dict) -> "CachePolicy":
        return cls(
            enabled=payload.get("enabled", True),
            cache_dir=payload.get("cache_dir"),
        )


@dataclass(frozen=True)
class JournalPolicy:
    """The resumable sweep journal.

    ``path`` names the JSONL journal file (``None`` → no journal);
    ``resume`` loads it before running so recorded outcomes replay instead
    of re-executing.  ``resume=True`` without a path is rejected.
    """

    path: str | None = None
    resume: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.path, Path):
            object.__setattr__(self, "path", str(self.path))
        if self.resume and self.path is None:
            raise ValueError("JournalPolicy(resume=True) requires a path")

    def build(self):
        """Materialize the :class:`~repro.sim.cache.SweepJournal` (or None),
        loading it when ``resume`` is set."""
        if self.path is None:
            return None
        from repro.sim.cache import SweepJournal

        journal = SweepJournal(self.path)
        if self.resume:
            journal.load()
        return journal

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {"path": self.path, "resume": self.resume}

    @classmethod
    def from_dict(cls, payload: dict) -> "JournalPolicy":
        return cls(
            path=payload.get("path"),
            resume=payload.get("resume", False),
        )


#: Every policy class, in wire order — the lint wire-schema checker pins
#: their serialized field sets alongside the fabric messages.
POLICY_CLASSES = (ExecutionPolicy, CachePolicy, JournalPolicy)


def policy_field_names(cls) -> tuple[str, ...]:
    """The serialized field names of a policy class (wire-schema surface)."""
    return tuple(f.name for f in fields(cls))
