"""Deprecated run harness — thin shims over :mod:`repro.sim.api`.

``run_workload`` and ``run_suite`` predate the :class:`~repro.sim.api.Session`
API; they are kept so existing scripts and notebooks keep working, but new
code should build a :class:`~repro.sim.api.RunRequest` and hand it to a
session, which adds the worker pool, the on-disk result cache, and the
run-lifecycle event stream the old functions never had:

>>> from repro.sim.api import Session            # doctest: +SKIP
>>> Session(jobs=4).sweep(workloads)             # doctest: +SKIP

:class:`RunMetrics` is re-exported from here for backward compatibility;
it now lives in :mod:`repro.sim.api`.
"""

from __future__ import annotations

import warnings

from repro.common.config import AttackModel, MachineConfig
from repro.sim.api import (
    DEFAULT_MAX_INSTRUCTIONS,
    Instrumentation,
    RunMetrics,
    RunRequest,
    Session,
    execute,
)
from repro.sim.configs import EVALUATED_CONFIGS, EvaluatedConfig
from repro.workloads.workload import Workload

__all__ = ["RunMetrics", "run_suite", "run_workload"]


def run_workload(
    workload: Workload,
    config: EvaluatedConfig,
    attack_model: AttackModel = AttackModel.SPECTRE,
    machine: MachineConfig | None = None,
    check_golden: bool = True,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    instrumentation: Instrumentation | None = None,
) -> RunMetrics:
    """Deprecated: build a :class:`RunRequest` and :func:`execute` it (or use
    :meth:`Session.run` to get caching and parallel sweeps)."""
    warnings.warn(
        "run_workload() is deprecated; use repro.sim.api.Session.run() "
        "or execute(RunRequest(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    return execute(
        RunRequest(
            workload=workload,
            config=config,
            attack_model=attack_model,
            machine=machine or MachineConfig(),
            check_golden=check_golden,
            max_instructions=max_instructions,
            instrumentation=instrumentation,
        )
    )


def run_suite(
    workloads,
    configs=EVALUATED_CONFIGS,
    attack_models=(AttackModel.SPECTRE, AttackModel.FUTURISTIC),
    machine: MachineConfig | None = None,
    check_golden: bool = True,
    progress=None,
    jobs: int = 1,
) -> list[RunMetrics]:
    """Deprecated: the full evaluation sweep, now a ``Session.sweep`` shim.

    ``progress`` is the legacy callback ``(workload_name, config_name,
    model) -> None``; it is adapted onto the event stream.  Unlike a real
    session, no result cache is used, matching the old behavior exactly.
    """
    warnings.warn(
        "run_suite() is deprecated; use repro.sim.api.Session.sweep(), "
        "which adds caching, parallelism (jobs=N) and event observers",
        DeprecationWarning,
        stacklevel=2,
    )
    observers = []
    if progress is not None:
        def adapter(event) -> None:
            # attempt is set on retry re-dispatches; the legacy callback
            # expects exactly one call per cell.
            if event.kind == "started" and event.attempt is None:
                progress(event.workload, event.config, AttackModel(event.model))
        observers.append(adapter)
    session = Session(
        machine=machine,
        jobs=jobs,
        cache=False,
        observers=observers,
        check_golden=check_golden,
    )
    return session.sweep(workloads, configs=configs, attack_models=attack_models)
