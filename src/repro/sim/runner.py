"""Run (workload, configuration, attack model) triples and collect metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import AttackModel, MachineConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.core import Core
from repro.sim.configs import EVALUATED_CONFIGS, EvaluatedConfig, make_protection
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class RunMetrics:
    """Results of one simulation run."""

    workload: str
    config: str
    attack_model: AttackModel
    cycles: int
    instructions: int
    stats: dict[str, float] = field(repr=False, default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def normalized_to(self, baseline: "RunMetrics") -> float:
        """Execution time normalized to a baseline run (Figure 6's metric).

        Uses cycles-per-instruction so runs that committed slightly different
        instruction counts (e.g. capped runs) stay comparable.
        """
        if self.instructions == 0 or baseline.instructions == 0:
            raise ValueError("cannot normalize a run that committed nothing")
        own = self.cycles / self.instructions
        base = baseline.cycles / baseline.instructions
        return own / base

    @property
    def squashes(self) -> float:
        """SDO-induced squashes (Figure 8's x-axis): Obl-Ld fails + Obl-FP
        fails + validation mismatches — branch mispredicts excluded, they
        exist in every configuration."""
        return (
            self.stats.get("core.obl_fail_squashes", 0)
            + self.stats.get("core.fp_fail_squashes", 0)
            + self.stats.get("core.validation_mismatch_squashes", 0)
        )

    @property
    def predictor_precision(self) -> float:
        total = self.stats.get("stt.sdo.predictions", 0)
        return self.stats.get("stt.sdo.precise", 0) / total if total else 0.0

    @property
    def predictor_accuracy(self) -> float:
        total = self.stats.get("stt.sdo.predictions", 0)
        return self.stats.get("stt.sdo.accurate", 0) / total if total else 0.0


def run_workload(
    workload: Workload,
    config: EvaluatedConfig,
    attack_model: AttackModel = AttackModel.SPECTRE,
    machine: MachineConfig | None = None,
    check_golden: bool = True,
    max_instructions: int = 200_000,
) -> RunMetrics:
    """Simulate one workload under one configuration.

    A fresh machine is built per run (no state leaks between
    configurations); the workload's warm addresses are pre-loaded first.
    """
    machine = machine or MachineConfig()
    machine = machine.with_protection(config.protection_config(attack_model))
    protection = make_protection(config, attack_model)
    hierarchy = MemoryHierarchy(machine)
    core = Core(
        workload.program,
        config=machine,
        protection=protection,
        hierarchy=hierarchy,
        check_golden=check_golden,
    )
    if workload.warm_addresses:
        hierarchy.warm(workload.warm_addresses)
    result = core.run(max_instructions=max_instructions, max_cycles=workload.max_cycles)
    return RunMetrics(
        workload=workload.name,
        config=config.name,
        attack_model=attack_model,
        cycles=result.cycles,
        instructions=result.instructions,
        stats=result.stats,
    )


def run_suite(
    workloads,
    configs=EVALUATED_CONFIGS,
    attack_models=(AttackModel.SPECTRE, AttackModel.FUTURISTIC),
    machine: MachineConfig | None = None,
    check_golden: bool = True,
    progress=None,
) -> list[RunMetrics]:
    """The full evaluation sweep.  ``progress`` is an optional callback
    ``(workload_name, config_name, model) -> None`` for harness logging."""
    results: list[RunMetrics] = []
    for attack_model in attack_models:
        for workload in workloads:
            for config in configs:
                if progress is not None:
                    progress(workload.name, config.name, attack_model)
                results.append(
                    run_workload(
                        workload,
                        config,
                        attack_model,
                        machine=machine,
                        check_golden=check_golden,
                    )
                )
    return results
