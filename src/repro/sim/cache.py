"""Content-addressed on-disk result cache.

Simulation is a pure function of a :class:`~repro.sim.api.RunRequest`, so a
result can be reused whenever the *semantic* inputs match: the workload's
program, initial memory and warm set, the Table II configuration, the attack
model, the machine, and the run limits.  :func:`cache_key` folds exactly
those into a SHA-256 hex digest; names and descriptions are deliberately
excluded, so a renamed but otherwise identical workload still hits.

Entries live under ``<root>/v<SCHEMA_VERSION>/<key[:2]>/<key>.json`` and
hold the serialized metrics.  ``SCHEMA_VERSION`` is part of the key
material: bump it whenever the simulator's timing model changes in a way
that should invalidate old results.  Unreadable or corrupt entries are
treated as misses — the cache can always be rebuilt by re-running.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.sim.api import (
    FAILURE_CANCELLED,
    RunFailure,
    RunMetrics,
    RunOutcome,
    RunRequest,
    _rebrand,
)

#: Bump when RunMetrics serialization or simulator timing semantics change.
#: v2: RunMetrics gained ``termination`` (halted / max_cycles /
#: max_instructions) — v1 entries cannot say whether the run halted.
SCHEMA_VERSION = 2


def _canonical(obj: object) -> object:
    """Reduce configs/instructions to a JSON-stable structure.

    Dataclasses become ``{field: value}`` (non-compare fields like
    instruction labels are skipped), enums become their names, dicts become
    sorted ``[key, value]`` pairs.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if f.compare
        }
    if isinstance(obj, enum.Enum):
        return obj.name
    if isinstance(obj, dict):
        return sorted([str(key), _canonical(value)] for key, value in obj.items())
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for cache key")


def cache_key(request: RunRequest) -> str:
    """Stable content hash of a request's semantic inputs.

    ``request.instrumentation`` is deliberately absent: tracing/profiling
    never changes the simulated outcome.  The engine instead bypasses the
    cache entirely for instrumented requests (the trace files must actually
    be produced, and host-dependent ``profile.*`` stats must not be stored).
    """
    program = request.workload.program
    material = {
        "schema": SCHEMA_VERSION,
        "instructions": _canonical(program.instructions),
        "initial_memory": _canonical(program.initial_memory),
        "warm_addresses": _canonical(request.workload.warm_addresses),
        "max_cycles": request.workload.max_cycles,
        "config": _canonical(request.config),
        "attack_model": request.attack_model.name,
        "machine": _canonical(request.machine),
        "check_golden": request.check_golden,
        "max_instructions": request.max_instructions,
    }
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Filesystem-backed map from :func:`cache_key` to :class:`RunMetrics`."""

    def __init__(self, root: str | Path = ".repro-cache") -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / f"v{SCHEMA_VERSION}" / key[:2] / f"{key}.json"

    def get(self, request: RunRequest) -> RunMetrics | None:
        """The cached metrics for ``request``, or ``None`` on a miss.

        Identity fields (workload/config names, attack model) are taken from
        the request, since the key ignores them.
        """
        metrics = self.get_key(cache_key(request))
        if metrics is None:
            return None
        return _rebrand(metrics, request)

    def get_key(self, key: str) -> RunMetrics | None:
        """Key-level lookup (the artifact-store face of the cache).

        Unlike :meth:`get` there is no request to rebrand against, so the
        metrics come back with whatever identity fields the producer stored
        — fabric callers rebrand against their own request.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("key") != key:
                return None
            return RunMetrics.from_dict(payload["metrics"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, request: RunRequest, metrics: RunMetrics) -> Path:
        """Store ``metrics`` for ``request``; atomic against readers."""
        return self.put_key(cache_key(request), metrics)

    def put_key(self, key: str, metrics: RunMetrics) -> Path:
        """Key-level store (the artifact-store face of the cache)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"key": key, "schema": SCHEMA_VERSION, "metrics": metrics.to_dict()}
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def has_key(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __contains__(self, request: RunRequest) -> bool:
        return self.has_key(cache_key(request))

    def __len__(self) -> int:
        version_dir = self.root / f"v{SCHEMA_VERSION}"
        if not version_dir.is_dir():
            return 0
        return sum(1 for _ in version_dir.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry of the current schema; returns the count."""
        version_dir = self.root / f"v{SCHEMA_VERSION}"
        removed = 0
        if version_dir.is_dir():
            for entry in version_dir.glob("*/*.json"):
                entry.unlink(missing_ok=True)
                removed += 1
        return removed


class SweepJournal:
    """Append-only JSONL record of a sweep's terminal outcomes, for resume.

    One JSON object per line::

        {"key": "<cache_key>", "kind": "metrics", "payload": {...RunMetrics...}}
        {"key": "<cache_key>", "kind": "failure", "payload": {...RunFailure...}}

    The journal is keyed by :func:`cache_key`, so it survives request
    reordering and workload renames exactly like the result cache.  After a
    crash or SIGINT, re-running the sweep with the journal loaded
    (``python -m repro sweep --resume``) replays every recorded outcome
    without re-executing its cell.  Failures are journalled too — the
    simulation is deterministic, so a recorded hang/crash would simply
    repeat — **except** ``cancelled`` cells, which never ran and must run
    on resume.

    Unlike the result cache the journal also records failures and works when
    caching is disabled, which is what makes interrupted ``--no-cache``
    sweeps resumable.  Corrupt or truncated trailing lines (a crash
    mid-write) are skipped, not fatal.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._entries: dict[str, RunOutcome] = {}
        self._fh = None

    def __len__(self) -> int:
        return len(self._entries)

    def load(self) -> int:
        """Read previously journalled outcomes; returns how many loaded."""
        if not self.path.exists():
            return 0
        loaded = 0
        with self.path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = record["key"]
                    if record["kind"] == "metrics":
                        outcome: RunOutcome = RunMetrics.from_dict(record["payload"])
                    elif record["kind"] == "failure":
                        outcome = RunFailure.from_dict(record["payload"])
                    else:
                        continue
                except (ValueError, KeyError, TypeError):
                    continue  # torn trailing line from a crash mid-write
                self._entries[key] = outcome
                loaded += 1
        return loaded

    def get(self, key: str) -> RunOutcome | None:
        return self._entries.get(key)

    def record(self, key: str, outcome: RunOutcome) -> None:
        """Journal one terminal outcome (idempotent per key)."""
        if key in self._entries:
            return
        if isinstance(outcome, RunFailure):
            if outcome.kind == FAILURE_CANCELLED:
                return  # never ran; must run on resume
            record = {"key": key, "kind": "failure", "payload": outcome.to_dict()}
        else:
            record = {"key": key, "kind": "metrics", "payload": outcome.to_dict()}
        self._entries[key] = outcome
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
