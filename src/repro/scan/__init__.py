"""Static speculative-taint gadget scanner for micro-ISA programs.

``repro.scan`` answers, *before any simulation*, the question the security
harnesses answer dynamically: can this program leak a secret through
speculative execution?  It reconstructs the program's CFG
(:mod:`repro.scan.cfg`), walks bounded speculative windows past every
conditional branch, and runs a forward taint dataflow whose sources are
speculative load results and whose sinks are the resource-modulating
operands of Definition 2 (:mod:`repro.scan.analyzer`).  Findings are
emitted through the sdolint :class:`~repro.lint.findings.Finding` model,
so ``repro scan`` (:mod:`repro.scan.cli`) gets suppressions and a
ratcheted baseline for free.

The scanner is *cross-validated*, not merely unit-tested: the bundled
corpus (:mod:`repro.scan.corpus`) pairs each program with a twin whose
memory differs only in the secret word, and :mod:`repro.scan.crossval`
runs both through the full pipeline model asserting the static verdict
matches observed dynamic non-interference — zero false negatives, and
false positives only where an explicit ``unsound_ok`` annotation names
the accepted model gap.
"""

from repro.scan.analyzer import (
    CLASS_LATENCY,
    CLASS_STORE,
    CLASS_V1,
    DEFAULT_WINDOW,
    GADGET_CLASSES,
    Gadget,
    ScanReport,
    scan_program,
)
from repro.scan.cfg import BasicBlock, ControlFlowGraph, build_cfg, successors
from repro.scan.corpus import (
    HAND_WRITTEN,
    SOUP_SEEDS,
    CorpusEntry,
    entry_by_name,
    full_corpus,
    generated_entries,
)
from repro.scan.crossval import (
    PROBE_ADDRESS,
    SUPPRESSING_CONFIGS,
    CrossValidation,
    DynamicVerdict,
    amplified_workload,
    cross_validate,
    run_dynamic,
    sweep_signal,
)

__all__ = [
    "BasicBlock",
    "CLASS_LATENCY",
    "CLASS_STORE",
    "CLASS_V1",
    "ControlFlowGraph",
    "CorpusEntry",
    "CrossValidation",
    "DEFAULT_WINDOW",
    "DynamicVerdict",
    "GADGET_CLASSES",
    "Gadget",
    "HAND_WRITTEN",
    "PROBE_ADDRESS",
    "SOUP_SEEDS",
    "SUPPRESSING_CONFIGS",
    "ScanReport",
    "amplified_workload",
    "build_cfg",
    "cross_validate",
    "entry_by_name",
    "full_corpus",
    "generated_entries",
    "run_dynamic",
    "scan_program",
    "successors",
    "sweep_signal",
]
