"""Speculative-taint dataflow over bounded mispredict windows.

The static model mirrors the dynamic STT taint discipline
(:mod:`repro.stt.protection`): data is *secret* exactly when it was
produced by a load that executed under an unresolved conditional branch,
and it *leaks* when such data reaches an operand that modulates hardware
resource usage — a load address, a store address, or a variable-latency
FP operation (``fmul``/``fdiv``/``fsqrt``; Definition 2 of the paper).

For every conditional branch the analyzer walks *both* outgoing
directions — a predictor can be trained onto either — up to ``window``
instructions deep, the ROB-depth horizon past an unresolved branch
(default: ``CoreConfig.rob_entries``).  Within the window:

* every LOAD/FLOAD result is a taint **source** (tagged with its pc; an
  already-tainted address folds its sources into the result, so two-hop
  chains report the full chain);
* ALU/FP ops **propagate** the union of their operands' taint;
* LI/FLI (immediate writes) **kill** the destination's taint;
* taint reaching a load's address register is a **v1** gadget, a store's
  address register a **v1.1** gadget, and an FP transmitter's operand a
  **latency** gadget.  Store *values* and branch operands are not sinks:
  in the modelled machine stores touch memory at commit (squashed stores
  leave no trace) and branch resolution is not priced by operand value.

Soundness scope (see DESIGN.md §13): taint through *memory* is not
tracked — a speculative store forwarding secret data to a younger load
inside the same window is invisible to this analysis.  The corpus pins
that gap with an annotated entry rather than pretending it is closed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.common.config import CoreConfig
from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.lint.findings import ERROR, Finding
from repro.scan.cfg import build_cfg, successors

#: Gadget classes, named after the Spectre variant taxonomy.
CLASS_V1 = "v1"  #: tainted load address (load-to-load transmit)
CLASS_STORE = "v1.1"  #: tainted store address (store-based transmit)
CLASS_LATENCY = "latency"  #: tainted variable-latency FP operand
GADGET_CLASSES = (CLASS_V1, CLASS_STORE, CLASS_LATENCY)

#: Default speculative-window horizon: an unresolved branch can shadow at
#: most a ROB's worth of younger instructions.
DEFAULT_WINDOW = CoreConfig().rob_entries

_EMPTY: frozenset[int] = frozenset()
_KILL_OPS = frozenset({Opcode.LI, Opcode.FLI})


@dataclass(frozen=True, order=True)
class Gadget:
    """One statically-found speculative leak path.

    ``source_pcs`` are the window loads whose data reaches the sink at
    ``sink_pc``; ``depth`` is the sink's distance (in instructions walked,
    1-based) past the branch at ``branch_pc``.
    """

    gadget_class: str
    sink_pc: int
    source_pcs: tuple[int, ...]
    branch_pc: int
    depth: int

    def describe(self, program: Program) -> str:
        sources = ", ".join(
            f"{program[pc].opcode.mnemonic}@{pc}" for pc in self.source_pcs
        )
        sink = program[self.sink_pc].opcode.mnemonic
        return (
            f"{self.gadget_class} gadget: speculative load data from "
            f"[{sources}] reaches {sink}@{self.sink_pc}, {self.depth} "
            f"instructions past the branch at pc {self.branch_pc}"
        )


@dataclass
class ScanReport:
    """All gadgets of one program, deduplicated and deterministically ordered."""

    program: Program
    window: int
    gadgets: tuple[Gadget, ...]
    #: Synthetic repo-relative path used for findings/suppressions; defaults
    #: to ``programs/<name>`` so fingerprints are stable across hosts.
    path: str = ""

    def __post_init__(self) -> None:
        if not self.path:
            self.path = f"programs/{self.program.name}"

    @property
    def is_positive(self) -> bool:
        return bool(self.gadgets)

    @property
    def classes(self) -> frozenset[str]:
        return frozenset(g.gadget_class for g in self.gadgets)

    def to_findings(self) -> list[Finding]:
        """Render gadgets through the lint finding model.

        The line number is the sink pc + 1 (1-based, like source lines);
        the fingerprint hangs off checker+path+message, so renumbering a
        program shifts lines without invalidating a baseline only if the
        pcs embedded in the message are unchanged — by design: moving a
        gadget *is* a new finding.
        """
        return [
            Finding(
                path=self.path,
                line=gadget.sink_pc + 1,
                checker=f"gadget-{gadget.gadget_class}",
                message=gadget.describe(self.program),
                severity=ERROR,
            )
            for gadget in self.gadgets
        ]


@dataclass
class _WindowState:
    """Mutable exploration bookkeeping for one branch's window walk."""

    #: pc -> [(taint-pairs, remaining budget)] already explored; a new visit
    #: is redundant if some prior visit had at least as much budget and at
    #: least as much taint (its findings are a superset).
    seen: dict[int, list[tuple[frozenset[tuple[int, int]], int]]] = field(
        default_factory=dict
    )
    found: list[Gadget] = field(default_factory=list)


def _taint_of(taint: dict[int, frozenset[int]], reg: int | None) -> frozenset[int]:
    if reg is None:
        return _EMPTY
    return taint.get(reg, _EMPTY)


def _explore_window(
    program: Program, branch_pc: int, window: int
) -> list[Gadget]:
    """Walk both directions of the branch at ``branch_pc`` up to ``window``."""
    state = _WindowState()
    work: deque[tuple[int, dict[int, frozenset[int]], int]] = deque(
        (succ, {}, window) for succ in successors(program, branch_pc)
    )
    while work:
        pc, taint, budget = work.popleft()
        if budget <= 0:
            continue
        pairs = frozenset(
            (reg, src) for reg, sources in taint.items() for src in sources
        )
        visits = state.seen.setdefault(pc, [])
        if any(
            old_budget >= budget and pairs <= old_pairs
            for old_pairs, old_budget in visits
        ):
            continue
        visits.append((pairs, budget))

        inst = program[pc]
        depth = window - budget + 1
        if inst.is_load:
            address_taint = _taint_of(taint, inst.rs1)
            if address_taint:
                state.found.append(
                    Gadget(CLASS_V1, pc, tuple(sorted(address_taint)),
                           branch_pc, depth)
                )
        elif inst.is_store:
            address_taint = _taint_of(taint, inst.rs2)
            if address_taint:
                state.found.append(
                    Gadget(CLASS_STORE, pc, tuple(sorted(address_taint)),
                           branch_pc, depth)
                )
        elif inst.is_fp_transmitter:
            operand_taint = _taint_of(taint, inst.rs1) | _taint_of(
                taint, inst.rs2
            )
            if operand_taint:
                state.found.append(
                    Gadget(CLASS_LATENCY, pc, tuple(sorted(operand_taint)),
                           branch_pc, depth)
                )

        new_taint = taint
        if inst.is_load:
            # The load's own result is a fresh source; a tainted address
            # folds its provenance in (two-hop chains keep the whole chain).
            new_taint = dict(taint)
            new_taint[inst.rd] = frozenset({pc}) | _taint_of(taint, inst.rs1)
        elif inst.opcode in _KILL_OPS:
            if _taint_of(taint, inst.rd):
                new_taint = dict(taint)
                del new_taint[inst.rd]
        elif inst.rd is not None:
            operand_taint = _taint_of(taint, inst.rs1) | _taint_of(
                taint, inst.rs2
            )
            if operand_taint != _taint_of(taint, inst.rd):
                new_taint = dict(taint)
                if operand_taint:
                    new_taint[inst.rd] = operand_taint
                else:
                    del new_taint[inst.rd]

        for succ in successors(program, pc):
            work.append((succ, new_taint, budget - 1))
    return state.found


def scan_program(
    program: Program, window: int = DEFAULT_WINDOW, path: str = ""
) -> ScanReport:
    """Scan one program; returns every gadget class/sink/source combination.

    The same sink can fire under several branches (nested windows); only
    the tightest enclosure is kept — one gadget per
    ``(class, sink, sources)``, with the smallest depth and then the
    smallest branch pc as tie-breakers.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    cfg = build_cfg(program)
    best: dict[tuple[str, int, tuple[int, ...]], Gadget] = {}
    for branch_pc in cfg.conditional_branch_pcs:
        for gadget in _explore_window(program, branch_pc, window):
            key = (gadget.gadget_class, gadget.sink_pc, gadget.source_pcs)
            old = best.get(key)
            if old is None or (gadget.depth, gadget.branch_pc) < (
                old.depth, old.branch_pc
            ):
                best[key] = gadget
    gadgets = tuple(
        sorted(best.values(), key=lambda g: (g.sink_pc, g.gadget_class,
                                             g.source_pcs))
    )
    return ScanReport(program=program, window=window, gadgets=gadgets,
                      path=path)
