"""``repro scan``: static speculative-taint gadget scanner.

Scans the bundled corpus (and any extra program JSON files given on the
command line) for speculative leak gadgets and reports them through the
sdolint finding machinery: exit status is 0 when no finding exists outside
the committed ratchet baseline, 1 otherwise.  The baseline doubles as the
suppression mechanism — a known-unsound corpus entry's gadgets are
ratcheted in, and any *new* gadget (a corpus regression or a gadget in a
user-supplied program) fails the gate.

Extra files may be either a bare :meth:`Program.to_dict` payload or a
workload-style object with a ``"program"`` key.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import TextIO

from repro.isa.program import Program
from repro.lint.baseline import Baseline
from repro.lint.findings import Finding
from repro.scan.analyzer import DEFAULT_WINDOW, scan_program
from repro.scan.corpus import full_corpus

BASELINE_NAME = "scan-baseline.json"


def add_scan_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "programs", nargs="*", metavar="FILE",
        help="extra program JSON files to scan (Program payloads, or "
             "workload objects with a 'program' key)",
    )
    parser.add_argument(
        "--window", type=int, default=DEFAULT_WINDOW, metavar="N",
        help=f"speculative-window horizon in instructions "
             f"(default {DEFAULT_WINDOW}, the ROB depth)",
    )
    parser.add_argument(
        "--no-corpus", action="store_true",
        help="skip the bundled corpus; scan only the FILEs given",
    )
    parser.add_argument(
        "--format", choices=["human", "json"], default="human",
        help="output format (default human)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"ratchet baseline file (default <root>/{BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept every current finding into the baseline and exit 0",
    )
    parser.add_argument(
        "--show-baselined", action="store_true",
        help="also print findings already covered by the baseline",
    )


def _load_program(path: Path) -> Program:
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object")
    if "instructions" not in payload and isinstance(
        payload.get("program"), dict
    ):
        payload = payload["program"]
    return Program.from_dict(payload)


def _collect_findings(args) -> tuple[list[Finding], int]:
    findings: list[Finding] = []
    scanned = 0
    if not args.no_corpus:
        for entry in full_corpus():
            report = scan_program(
                entry.program(), window=args.window,
                path=f"corpus/{entry.name}",
            )
            findings.extend(report.to_findings())
            scanned += 1
    for raw in args.programs:
        path = Path(raw)
        report = scan_program(
            _load_program(path), window=args.window, path=raw
        )
        findings.extend(report.to_findings())
        scanned += 1
    return findings, scanned


def _default_baseline_path() -> Path:
    # src/repro/scan/cli.py -> repo root is four levels up.
    return Path(__file__).resolve().parents[3] / BASELINE_NAME


def run_scan_command(args, out: TextIO | None = None) -> int:
    out = out if out is not None else sys.stdout
    try:
        findings, scanned = _collect_findings(args)
    except (OSError, ValueError, KeyError) as exc:
        out.write(f"repro scan: {exc}\n")
        return 2

    baseline_path = (
        Path(args.baseline) if args.baseline else _default_baseline_path()
    )
    if args.write_baseline:
        Baseline.from_findings(findings).write(
            baseline_path, command="repro scan"
        )
        out.write(
            f"baseline with {len(findings)} finding(s) written to "
            f"{baseline_path}\n"
        )
        return 0

    diff = Baseline.load(baseline_path).diff(findings)
    # With --no-corpus the whole corpus-backed baseline is trivially
    # unmatched; stale-entry notes would be pure noise.
    stale = [] if args.no_corpus else diff.stale
    if args.format == "json":
        json.dump(
            {
                "programs_scanned": scanned,
                "new": [f.to_dict() for f in diff.new],
                "baselined": [f.to_dict() for f in diff.baselined],
                "stale_baseline_entries": stale,
            },
            out, indent=2,
        )
        out.write("\n")
    else:
        for finding in diff.new:
            out.write(finding.render() + "\n")
        if args.show_baselined:
            for finding in diff.baselined:
                out.write(f"{finding.render()}  (baselined)\n")
        for fingerprint in stale:
            out.write(
                f"note: baseline entry {fingerprint} no longer matches "
                "anything — re-ratchet with --write-baseline\n"
            )
        out.write(
            f"repro scan: {scanned} program(s), {len(diff.new)} new "
            f"gadget(s), {len(diff.baselined)} baselined\n"
        )
    return 1 if diff.new else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro scan", description=__doc__)
    add_scan_arguments(parser)
    return run_scan_command(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
