"""The bundled gadget corpus: hand-written entries plus seeded soups.

Every entry is a *pair* of programs — identical instruction streams whose
initial memories differ in exactly one word, the secret — built on the
bounds-check-bypass skeleton in :mod:`repro.workloads.generators`
(:func:`~repro.workloads.generators.make_bounds_check_gadget`): branchless
attacker-index selection, a cold-limit bounds check that mispredicts on
the attack round, a warmed access load inside the window, and a payload
that decides the verdict.  The attack round's branch is architecturally
taken, so the payload never commits: the committed instruction stream is
secret-invariant by construction, and any dynamic trace/cycle difference
between the two secrets is a speculative leak.  That is what
:mod:`repro.scan.crossval` measures and what each entry's declared static
verdict is validated against.

Entries whose static positive is *expected* to be dynamically invariant
carry an explicit ``unsound_ok`` annotation naming the class and the
reason (e.g. stores touch memory only at commit in this machine, so a
squashed store-address gadget leaves no resource trace).  The crossval
gate fails on any unannotated disagreement, in either direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.scan.analyzer import CLASS_LATENCY, CLASS_STORE, CLASS_V1
from repro.workloads.generators import (
    GADGET_A_BASE as A_BASE,
    GADGET_B_BASE as B_BASE,
    GADGET_C_BASE as C_BASE,
    GADGET_CHAIN_LENGTH as CHAIN_LENGTH,
    GADGET_LIMIT_BASE as LIMIT_BASE,
    GADGET_OOB_INDEX as OOB_INDEX,
    GADGET_SECRET_ADDR as SECRET_ADDR,
    GADGET_TRAIN_ROUNDS as TRAIN_ROUNDS,
    GADGET_TRANSMIT_SHIFT as TRANSMIT_SHIFT,
    OUTPUT_BASE as OUT_BASE,
    gadget_memory,
    gadget_soup_spec,
    make_bounds_check_gadget,
    make_gadget_soup,
    SOUP_STORE_UNSOUND_REASON,
)
from repro.workloads.workload import Workload

#: Seeds of the bundled generated corpus (>= 20 per the scan gate).
SOUP_SEEDS: tuple[int, ...] = tuple(range(24))


@dataclass(frozen=True)
class CorpusEntry:
    """One corpus program pair plus its expected verdicts."""

    name: str
    builder: Callable[[int], Workload] = field(compare=False)
    #: Gadget classes the static scan must report (exactly these).
    expected_classes: frozenset[str] = frozenset()
    #: Classes that are *statically* real but *dynamically* invariant in
    #: this machine model — accepted imprecision, never silent.
    unsound_ok: frozenset[str] = frozenset()
    unsound_reason: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if self.unsound_ok and not self.unsound_reason:
            raise ValueError(
                f"{self.name}: unsound_ok annotations must state a reason"
            )
        if not self.unsound_ok <= self.expected_classes:
            raise ValueError(
                f"{self.name}: unsound_ok {sorted(self.unsound_ok)} is not a "
                f"subset of expected classes {sorted(self.expected_classes)}"
            )

    @property
    def expected_leak(self) -> bool:
        """Should the Unsafe machine leak the secret dynamically?"""
        return bool(self.expected_classes - self.unsound_ok)

    def workload(self, secret: int) -> Workload:
        return self.builder(secret)

    def program(self) -> Program:
        """The (secret-independent) instruction stream, for static scans."""
        return self.builder(0).program


def _loop_builder(
    name: str, payload: str, *, fp: bool = False
) -> Callable[[int], Workload]:
    def build(secret: int) -> Workload:
        return make_bounds_check_gadget(
            name, payload=payload, secret=secret, fp_access=fp
        )

    return build


def _taken_path_builder(name: str) -> Callable[[int], Workload]:
    """Gadget on the *taken* side of the branch (trained-taken variant)."""
    chain = "\n".join(
        "        addi r26, r26, 0" for _ in range(CHAIN_LENGTH)
    )
    source = f"""
        li r1, 0
        li r2, {TRAIN_ROUNDS + 1}
        li r21, {TRAIN_ROUNDS}
        li r18, 1
        li r22, {OOB_INDEX}
        li r12, 3
        li r13, {TRANSMIT_SHIFT}
    loop:
        slt r16, r1, r21
        sub r17, r18, r16
        mul r19, r17, r22
        andi r4, r1, 7
        mul r4, r4, r16
        add r4, r4, r19
        shl r10, r4, r12
        add r26, r1, r18         ; resolution-delay chain (see generators)
{chain}
        andi r26, r26, 0
        addi r6, r26, 8
        blt r4, r6, body         ; taken while training, not on attack
        jmp skip
    body:
        load r7, r10, {A_BASE}
        shl r8, r7, r13
        load r11, r8, {B_BASE}
    skip:
        addi r1, r1, 1
        blt r1, r2, loop
        halt
    """

    def build(secret: int) -> Workload:
        return Workload(
            name=name,
            program=assemble(source, gadget_memory(secret), name=name),
            warm_addresses=(A_BASE, SECRET_ADDR),
        )

    return build


def _beyond_window_builder(name: str, pads: int = 200) -> Callable[[int], Workload]:
    """Transmit placed ``pads`` dependent instructions past the branch.

    With more pads than ROB entries the transmit can never share the ROB
    with the unresolved branch, so it is dynamically unreachable inside
    the window — and the static scan's depth bound must agree.
    """
    pad_block = "\n".join("        addi r7, r7, 0" for _ in range(pads))
    source = f"""
        li r1, 8
        li r12, 3
        li r13, {TRANSMIT_SHIFT}
        li r22, {OOB_INDEX}
        shl r10, r22, r12
        load r6, r0, {LIMIT_BASE}  ; cold limit: slow resolution
        bge r1, r6, over           ; architecturally taken, cold-predicted not
        load r7, r10, {A_BASE}     ; speculative access (window source)
{pad_block}
        shl r8, r7, r13
        load r11, r8, {B_BASE}     ; transmit — beyond any real window
    over:
        halt
    """

    def build(secret: int) -> Workload:
        return Workload(
            name=name,
            program=assemble(source, gadget_memory(secret), name=name),
            warm_addresses=(A_BASE, SECRET_ADDR),
        )

    return build


def _straightline_builder(name: str) -> Callable[[int], Workload]:
    """Load-to-load shape with no conditional branch anywhere."""
    source = f"""
        li r1, 0
        li r12, 3
        shl r9, r1, r12
        load r5, r9, {A_BASE}      ; A[0] == 0
        shl r10, r5, r12
        load r7, r10, {A_BASE}     ; dependent load, but never speculative
        add r3, r3, r7
        store r3, r0, {OUT_BASE}
        halt
    """

    def build(secret: int) -> Workload:
        return Workload(
            name=name,
            program=assemble(source, gadget_memory(secret), name=name),
            warm_addresses=(A_BASE, SECRET_ADDR),
        )

    return build


_SAME_LINE = (
    "the taint analysis is value-blind: both secret values map the "
    "transmit into the same cache line, so the resource traces coincide; "
    "a finer model would need value-range tracking"
)
_FP_RESIDUE = (
    "this machine's FP units are fully pipelined per-cycle issue slots, so "
    "a squashed subnormal fdiv's extra latency leaves no committed-path "
    "residue; the finding is kept — Obl-FP exists precisely because real "
    "dividers are not so forgiving"
)

_TRANSMIT = f"""        shl r8, r7, r13
        load r11, r8, {B_BASE}"""

HAND_WRITTEN: tuple[CorpusEntry, ...] = (
    CorpusEntry(
        name="v1_classic",
        builder=_loop_builder("v1_classic", _TRANSMIT),
        expected_classes=frozenset({CLASS_V1}),
        description="bounds-check bypass, load-to-load transmit",
    ),
    CorpusEntry(
        name="v1_arith_chain",
        builder=_loop_builder(
            "v1_arith_chain",
            f"""        add r8, r7, r18
        xor r8, r8, r18
        shl r8, r8, r13
        load r11, r8, {B_BASE}""",
        ),
        expected_classes=frozenset({CLASS_V1}),
        description="secret laundered through an ALU chain before transmit",
    ),
    CorpusEntry(
        name="v1_two_hop",
        builder=_loop_builder(
            "v1_two_hop",
            f"""        shl r8, r7, r13
        load r11, r8, {B_BASE}
        shl r20, r11, r12
        load r23, r20, {C_BASE}""",
        ),
        expected_classes=frozenset({CLASS_V1}),
        description="transmit feeds a second dependent load (both are sinks)",
    ),
    CorpusEntry(
        name="v1_after_jmp",
        builder=_loop_builder(
            "v1_after_jmp",
            f"""        jmp hop
        add r3, r3, r3           ; dead block, jumped over
    hop:
        shl r8, r7, r13
        load r11, r8, {B_BASE}""",
        ),
        expected_classes=frozenset({CLASS_V1}),
        description="transmit reached through an unconditional jump",
    ),
    CorpusEntry(
        name="v1_taken_path",
        builder=_taken_path_builder("v1_taken_path"),
        expected_classes=frozenset({CLASS_V1}),
        description="gadget on the trained-taken side of the branch",
    ),
    CorpusEntry(
        name="v1_store_addr",
        builder=_loop_builder(
            "v1_store_addr",
            f"""        shl r8, r7, r13
        store r3, r8, {B_BASE}""",
        ),
        expected_classes=frozenset({CLASS_STORE}),
        unsound_ok=frozenset({CLASS_STORE}),
        unsound_reason=SOUP_STORE_UNSOUND_REASON,
        description="v1.1: secret-dependent store address",
    ),
    CorpusEntry(
        name="v1_same_line",
        builder=_loop_builder(
            "v1_same_line",
            f"""        shl r8, r7, r12
        load r11, r8, {B_BASE}""",
        ),
        expected_classes=frozenset({CLASS_V1}),
        unsound_ok=frozenset({CLASS_V1}),
        unsound_reason=_SAME_LINE,
        description="transmit stride so small both secrets share a line",
    ),
    CorpusEntry(
        name="v1_fp_latency",
        builder=_loop_builder(
            "v1_fp_latency", "        fdiv f2, f3, f1", fp=True
        ),
        expected_classes=frozenset({CLASS_LATENCY}),
        unsound_ok=frozenset({CLASS_LATENCY}),
        unsound_reason=_FP_RESIDUE,
        description="secret float operand reaches a variable-latency fdiv",
    ),
    CorpusEntry(
        name="safe_accumulate",
        builder=_loop_builder("safe_accumulate", "        add r3, r3, r7"),
        expected_classes=frozenset(),
        description="secret only accumulates into a register",
    ),
    CorpusEntry(
        name="safe_store_value",
        builder=_loop_builder(
            "safe_store_value",
            f"""        shl r8, r1, r12
        store r7, r8, {OUT_BASE}""",
        ),
        expected_classes=frozenset(),
        description="secret stored as a *value* to a clean address",
    ),
    CorpusEntry(
        name="safe_kill",
        builder=_loop_builder(
            "safe_kill",
            f"""        li r7, 0
        shl r8, r7, r13
        load r11, r8, {B_BASE}""",
        ),
        expected_classes=frozenset(),
        description="taint killed by an immediate write before the transmit",
    ),
    CorpusEntry(
        name="safe_fadd",
        builder=_loop_builder("safe_fadd", "        fadd f2, f1, f3", fp=True),
        expected_classes=frozenset(),
        description="secret float reaches only a fixed-latency fadd",
    ),
    CorpusEntry(
        name="safe_straightline",
        builder=_straightline_builder("safe_straightline"),
        expected_classes=frozenset(),
        description="load-to-load shape with no branch to speculate past",
    ),
    CorpusEntry(
        name="safe_beyond_window",
        builder=_beyond_window_builder("safe_beyond_window"),
        expected_classes=frozenset(),
        description="transmit parked past the ROB-depth speculation horizon",
    ),
)


def generated_entries(
    seeds: Iterable[int] = SOUP_SEEDS,
) -> tuple[CorpusEntry, ...]:
    """Wrap the seeded soups with their generator-declared verdicts."""
    entries = []
    for seed in seeds:
        payload, classes, unsound = gadget_soup_spec(seed)
        name = f"soup_{seed:03d}"
        entries.append(
            CorpusEntry(
                name=name,
                builder=lambda secret, name=name, seed=seed: make_gadget_soup(
                    name, seed=seed, secret=secret
                ),
                expected_classes=classes,
                unsound_ok=unsound,
                unsound_reason=SOUP_STORE_UNSOUND_REASON if unsound else "",
                description=f"seeded gadget soup (seed {seed})",
            )
        )
    return tuple(entries)


def full_corpus() -> tuple[CorpusEntry, ...]:
    """Hand-written entries plus the bundled generated soups."""
    return HAND_WRITTEN + generated_entries()


def entry_by_name(name: str) -> CorpusEntry:
    for entry in full_corpus():
        if entry.name == name:
            return entry
    raise KeyError(
        f"no corpus entry named {name!r}; available: "
        f"{[e.name for e in full_corpus()]}"
    )
