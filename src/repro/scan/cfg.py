"""Control-flow graph reconstruction over :class:`repro.isa.Program`.

Every branch target in the micro-ISA is a static instruction index
(``Instruction.target``), so the CFG is exact: no indirect-target
over-approximation is needed.  Basic blocks are maximal single-entry
straight-line runs; the per-instruction successor relation is what the
speculative-window exploration actually walks, with blocks layered on
top for reporting and sanity checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program


def successors(program: Program, pc: int) -> tuple[int, ...]:
    """Architectural successor pcs of the instruction at ``pc``.

    Conditional branches have two successors (fall-through first, taken
    target second); JMP has one; HALT has none.  A fall-through off the
    end of the program is dropped (the frontend would fault / fetch-stall
    there, never execute).
    """
    inst = program[pc]
    if inst.opcode is Opcode.HALT:
        return ()
    if inst.opcode is Opcode.JMP:
        return (inst.target,) if inst.target is not None else ()
    out = []
    if pc + 1 < len(program):
        out.append(pc + 1)
    if inst.is_conditional_branch and inst.target is not None:
        out.append(inst.target)
    return tuple(out)


@dataclass(frozen=True)
class BasicBlock:
    """A maximal straight-line run ``[start, end]`` (inclusive indices)."""

    start: int
    end: int
    successors: tuple[int, ...]  # start pcs of successor blocks

    def __len__(self) -> int:
        return self.end - self.start + 1

    def pcs(self) -> range:
        return range(self.start, self.end + 1)


@dataclass
class ControlFlowGraph:
    """Basic blocks of a program, keyed by their start pc."""

    program: Program
    blocks: dict[int, BasicBlock] = field(default_factory=dict)

    def block_of(self, pc: int) -> BasicBlock:
        """The basic block containing ``pc``."""
        starts = sorted(self.blocks)
        lo, hi = 0, len(starts) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            block = self.blocks[starts[mid]]
            if pc < block.start:
                hi = mid - 1
            elif pc > block.end:
                lo = mid + 1
            else:
                return block
        raise KeyError(f"pc {pc} not in any basic block")

    @property
    def conditional_branch_pcs(self) -> tuple[int, ...]:
        return tuple(
            pc
            for pc in range(len(self.program))
            if self.program[pc].is_conditional_branch
        )


def build_cfg(program: Program) -> ControlFlowGraph:
    """Partition ``program`` into basic blocks.

    Leaders are: pc 0, every branch target, and every instruction after a
    branch or HALT.  Unreachable instructions still get blocks (the
    speculative analysis can reach them through mispredicted paths, and
    gadget corpora deliberately park payloads behind jumps).
    """
    n = len(program)
    leaders = {0} if n else set()
    for pc in range(n):
        inst: Instruction = program[pc]
        if inst.is_branch and inst.target is not None:
            leaders.add(inst.target)
        if (inst.is_branch or inst.opcode is Opcode.HALT) and pc + 1 < n:
            leaders.add(pc + 1)
    ordered = sorted(leaders)
    cfg = ControlFlowGraph(program)
    for i, start in enumerate(ordered):
        end = (ordered[i + 1] - 1) if i + 1 < len(ordered) else n - 1
        succ_pcs = successors(program, end)
        cfg.blocks[start] = BasicBlock(start, end, tuple(succ_pcs))
    return cfg
