"""Dynamic non-interference verdicts for corpus program pairs.

The dynamic side of the scan gate: run one corpus entry's two secret
variants on the full pipeline model under one protection scheme, with a
:class:`~repro.memory.observer.ResourceObserver` recording every memory-
system event after warmup, and call it a **leak** when the two runs differ
in their resource-event traces *or* their committed cycle counts.  The
committed instruction streams are asserted identical first — the corpus
skeleton only ever touches the secret transiently — so any difference can
only be speculative.

:func:`cross_validate` then compares that dynamic verdict against the
static :func:`~repro.scan.analyzer.scan_program` verdict, honouring the
entry's ``unsound_ok`` annotations:

* dynamic leak without a static gadget ⇒ **false negative**, always fatal;
* static gadget without a dynamic leak ⇒ fatal unless every found class
  is covered by an explicit ``unsound_ok`` annotation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.common.config import AttackModel, MachineConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.observer import ResourceObserver
from repro.pipeline.core import Core
from repro.scan.analyzer import ScanReport, scan_program
from repro.scan.corpus import CorpusEntry
from repro.security.analyzer import TraceDivergence, _find_divergence
from repro.sim.configs import EvaluatedConfig, config_by_name, make_protection
from repro.workloads import generators
from repro.workloads.workload import Workload

#: Schemes every statically-found gadget must be suppressed under.  STT{ld}
#: is deliberately absent: it does not gate FP transmitters, so latency-
#: class gadgets stay dynamically live under it (assert that separately).
SUPPRESSING_CONFIGS = ("Fence", "STT{ld+fp}", "Hybrid")

#: One cache line in the transmit array: the line a v1 gadget's transient
#: load touches when the secret takes its first bundled value.  Warming it
#: before the run makes the leak *sweep-visible*: the transient transmit
#: then hits L1 for one secret and walks to DRAM for the other, so the
#: aggregate ``mem.hits_*`` counters in :class:`RunMetrics` — not just the
#: event-level observer trace — become secret-dependent under Unsafe.
PROBE_ADDRESS = generators.GADGET_B_BASE + (
    generators.GADGET_SECRET_VALUES[0] << generators.GADGET_TRANSMIT_SHIFT
)

#: Stat prefixes an attacker can sense at sweep granularity: where demand
#: accesses were satisfied summarizes probeable cache/DRAM content.
#: Scheme-internal bookkeeping (``stt.*``, ``core.obl_*``, ``mem.obl_*`` —
#: e.g. SDO's level-predictor accuracy, which legitimately depends on
#: whether the oblivious access happened to hit) is not attacker-visible
#: state and is excluded.
SWEEP_VISIBLE_PREFIXES = ("mem.hits_",)


def amplified_workload(entry: CorpusEntry, secret: int) -> Workload:
    """The entry's workload with :data:`PROBE_ADDRESS` pre-warmed."""
    workload = entry.workload(secret)
    return replace(
        workload,
        warm_addresses=tuple(workload.warm_addresses) + (PROBE_ADDRESS,),
    )


def sweep_signal(metrics) -> tuple:
    """The secret-sensitive projection of one sweep cell's metrics."""
    visible = {
        key: value
        for key, value in sorted(metrics.stats.items())
        if key.startswith(SWEEP_VISIBLE_PREFIXES)
    }
    return (metrics.cycles, tuple(visible.items()))


@dataclass(frozen=True)
class DynamicVerdict:
    """One entry under one scheme: did the two secrets interfere?"""

    name: str
    config: str
    cycles_by_secret: dict[int, int]
    divergence: TraceDivergence | None

    @property
    def cycles_differ(self) -> bool:
        return len(set(self.cycles_by_secret.values())) > 1

    @property
    def leaked(self) -> bool:
        return self.cycles_differ or self.divergence is not None

    @property
    def delta_cycles(self) -> int:
        return self.cycles_by_secret[1] - self.cycles_by_secret[0]


def run_dynamic(
    builder: Callable[[int], Workload],
    config: EvaluatedConfig | str = "Unsafe",
    attack_model: AttackModel = AttackModel.SPECTRE,
) -> DynamicVerdict:
    """Run both secret variants under ``config`` and compare."""
    if isinstance(config, str):
        config = config_by_name(config)
    machine = MachineConfig().with_protection(
        config.protection_config(attack_model)
    )
    cycles: dict[int, int] = {}
    instructions: dict[int, int] = {}
    traces: list[tuple] = []
    name = ""
    for secret in (0, 1):
        workload = builder(secret)
        name = workload.name
        observer = ResourceObserver(enabled=False)
        hierarchy = MemoryHierarchy(machine, observer)
        core = Core(
            workload.program,
            config=machine,
            protection=make_protection(config, attack_model),
            hierarchy=hierarchy,
        )
        hierarchy.warm(list(workload.warm_addresses))
        observer.enabled = True
        metrics = core.run(max_cycles=workload.max_cycles)
        cycles[secret] = metrics.cycles
        instructions[secret] = metrics.instructions
        traces.append(observer.normalized(base_cycle=0))
    if instructions[0] != instructions[1]:
        raise RuntimeError(
            f"{name}: committed stream is not secret-invariant "
            f"({instructions[0]} vs {instructions[1]} instructions) — the "
            "corpus entry is broken; a trace difference would not prove a "
            "speculative leak"
        )
    return DynamicVerdict(
        name=name,
        config=config.name,
        cycles_by_secret=cycles,
        divergence=_find_divergence(traces),
    )


@dataclass(frozen=True)
class CrossValidation:
    """Static verdict vs dynamic Unsafe verdict for one corpus entry."""

    entry: CorpusEntry
    report: ScanReport
    unsafe: DynamicVerdict

    @property
    def false_negative(self) -> bool:
        """Dynamically leaks but the scan saw nothing — never acceptable."""
        return self.unsafe.leaked and not self.report.is_positive

    @property
    def unannotated_false_positive(self) -> bool:
        """Scan fired, no dynamic leak, and some class lacks ``unsound_ok``."""
        if self.unsafe.leaked or not self.report.is_positive:
            return False
        return not self.report.classes <= self.entry.unsound_ok

    @property
    def agreed(self) -> bool:
        return not (self.false_negative or self.unannotated_false_positive)

    def explain(self) -> str:
        static = ",".join(sorted(self.report.classes)) or "negative"
        dynamic = "leaked" if self.unsafe.leaked else "invariant"
        verdict = "agree" if self.agreed else (
            "FALSE NEGATIVE" if self.false_negative
            else "unannotated false positive"
        )
        return (
            f"{self.entry.name}: static [{static}] vs Unsafe dynamic "
            f"[{dynamic}] -> {verdict}"
        )


def cross_validate(
    entry: CorpusEntry,
    window: int | None = None,
    attack_model: AttackModel = AttackModel.SPECTRE,
) -> CrossValidation:
    """Scan one entry statically and run its Unsafe dynamic verdict."""
    kwargs = {} if window is None else {"window": window}
    report = scan_program(
        entry.program(), path=f"corpus/{entry.name}", **kwargs
    )
    unsafe = run_dynamic(entry.builder, "Unsafe", attack_model)
    return CrossValidation(entry=entry, report=report, unsafe=unsafe)
