"""Command-line front door: ``python -m repro <command>``.

Commands:

* ``info``     — print Table I (machine) and Table II (variants)
* ``spectre``  — run the Spectre V1 penetration test across all configs
* ``interfere`` — run the forward-speculative-interference penetration
                 test (squashed-path resource contention) across all configs
* ``run``      — run one workload under one configuration and print metrics
* ``sweep``    — the full evaluation sweep (Figures 6/7/8, Table III),
                 parallel (``--jobs N``) and cached (``.repro-cache/``,
                 disable with ``--no-cache``), with an optional JSONL
                 event log (``--events``), per-run wall-clock kills
                 (``--timeout``), retries for transient failures
                 (``--retries``), and resumable runs
                 (``--journal`` + ``--resume``)
* ``fabric``   — the distributed sweep fabric: ``fabric serve`` runs the
                 scheduler service, ``fabric work`` runs a worker agent
                 against it, ``fabric status`` pings a scheduler, and
                 ``fabric chaos`` interposes a seeded fault-injecting
                 proxy for resilience drills.  Submit to a fabric with
                 ``sweep --fabric http://host:8700``.
* ``lint``     — run the sdolint invariant checkers (oblivious-timing,
                 stat-key, determinism, cache-schema, event-schema)
                 against the committed ratchet baseline
* ``scan``     — run the static speculative-taint gadget scanner over
                 the bundled corpus (and any extra program JSON files)
                 against its own ratchet baseline
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.common.config import AttackModel
from repro.eval.report import render_table, to_csv
from repro.eval.tables import render_table1, render_table2
from repro.sim.api import Instrumentation, Session
from repro.sim.policies import CachePolicy, ExecutionPolicy, JournalPolicy
from repro.sim.configs import EVALUATED_CONFIGS, SDO_CONFIG_NAMES, config_by_name
from repro.sim.events import JsonlEventLog, ProgressLine
from repro.workloads.spec17 import SPEC17_SUITE, suite, workload_by_name


def _cmd_info(_args) -> int:
    print(render_table1())
    print(render_table2())
    names = ", ".join(w.name for w in SPEC17_SUITE)
    print(f"workloads: {names}")
    return 0


def _cmd_spectre(args) -> int:
    from repro.security.spectre_v1 import run_spectre_v1

    rows = []
    for config in EVALUATED_CONFIGS:
        result = run_spectre_v1(config, AttackModel(args.model), secret=args.secret)
        rows.append([config.name, "LEAKED" if result.leaked else "blocked",
                     result.recovered if result.recovered is not None else "-"])
    print(render_table(["configuration", "outcome", "recovered"], rows,
                       title=f"Spectre V1, secret={args.secret}, model={args.model}"))
    return 0


def _cmd_interfere(args) -> int:
    from repro.security.forward_interference import run_forward_interference

    rows = []
    for config in EVALUATED_CONFIGS:
        result = run_forward_interference(config, AttackModel(args.model))
        divergence = result.divergence
        rows.append([
            config.name,
            "LEAKED" if result.leaked else "blocked",
            f"{result.delta_cycles:+d}",
            (f"event {divergence.event_index}: "
             f"{divergence.baseline_event} != {divergence.divergent_event}")
            if divergence is not None else "-",
        ])
    print(render_table(
        ["configuration", "outcome", "cycle delta", "first trace divergence"],
        rows,
        title=f"forward speculative interference, model={args.model}",
    ))
    return 0


def _session_from(args, observers=()) -> Session:
    journal_path = getattr(args, "journal", None)
    return Session(
        execution=ExecutionPolicy(
            jobs=args.jobs,
            timeout=args.timeout,
            retries=args.retries,
            fabric=getattr(args, "fabric", None),
            replay=getattr(args, "replay", False),
        ),
        cache=CachePolicy(
            enabled=not args.no_cache,
            cache_dir=str(args.cache_dir) if args.cache_dir else None,
        ),
        journal=JournalPolicy(
            path=str(journal_path) if journal_path else None,
            resume=getattr(args, "resume", False),
        ),
        observers=observers,
    )


def _instrumentation_from(args) -> Instrumentation | None:
    """Build the run's :class:`Instrumentation` from ``--trace``/``--profile``."""
    trace_jsonl = trace_konata = None
    if args.trace:
        base = args.trace
        if args.trace_format in ("jsonl", "both"):
            trace_jsonl = base + ".jsonl" if args.trace_format == "both" else base
        if args.trace_format in ("konata", "both"):
            trace_konata = base + ".konata" if args.trace_format == "both" else base
    if trace_jsonl is None and trace_konata is None and not args.profile:
        return None
    return Instrumentation(
        trace_jsonl=trace_jsonl, trace_konata=trace_konata, profile=args.profile
    )


def _print_stall_breakdown(metrics) -> None:
    stall = {
        key[len("core.stall."):]: int(value)
        for key, value in metrics.stats.items()
        if key.startswith("core.stall.")
    }
    if not stall:
        return
    active = int(metrics.stats.get("core.commit_active_cycles", 0))
    print(f"  commit-active cycles {active} / {metrics.cycles}")
    print("  stall attribution (cycles the ROB head kept commit idle):")
    for reason, cycles in sorted(stall.items(), key=lambda kv: -kv[1]):
        if cycles:
            print(f"    {reason:<16s} {cycles:>10d}  ({cycles / metrics.cycles:.1%})")


def _print_profile(metrics) -> None:
    phases = {
        key[len("profile."):]: value
        for key, value in metrics.stats.items()
        if key.startswith("profile.")
    }
    if not phases:
        return
    print("  host-side profile:")
    for name, value in sorted(phases.items()):
        unit = "s" if name.endswith("_s") else ""
        print(f"    {name:<16s} {value:>12.3f}{unit}")


def _cmd_run(args) -> int:
    workload = workload_by_name(args.workload)
    config = config_by_name(args.config)
    session = _session_from(args)
    instrumentation = _instrumentation_from(args)
    metrics = session.run(
        workload, config, AttackModel(args.model), instrumentation=instrumentation
    )
    print(f"{workload.name} under {config.name} ({args.model}):")
    print(f"  cycles       {metrics.cycles}")
    print(f"  instructions {metrics.instructions}")
    print(f"  IPC          {metrics.ipc:.3f}")
    if metrics.stats.get("stt.sdo.predictions"):
        print(f"  precision    {metrics.predictor_precision:.1%}")
        print(f"  accuracy     {metrics.predictor_accuracy:.1%}")
        print(f"  SDO squashes {metrics.squashes:.0f}")
    _print_stall_breakdown(metrics)
    _print_profile(metrics)
    if instrumentation is not None and instrumentation.traced:
        for path in (instrumentation.trace_jsonl, instrumentation.trace_konata):
            if path is not None:
                print(f"trace written to {path}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.eval.figure6 import build_figure6
    from repro.eval.figure7 import build_figure7
    from repro.eval.figure8 import build_figure8
    from repro.eval.tables import render_table3, table3_rows

    workloads = suite(scale=args.scale)
    if args.workloads:
        wanted = [name.strip() for name in args.workloads.split(",") if name.strip()]
        by_name = {w.name: w for w in workloads}
        missing = [name for name in wanted if name not in by_name]
        if missing:
            raise KeyError(f"unknown workloads: {missing}; available: {sorted(by_name)}")
        workloads = tuple(by_name[name] for name in wanted)

    if args.configs:
        config_names = [name.strip() for name in args.configs.split(",") if name.strip()]
    else:
        config_names = [c.name for c in EVALUATED_CONFIGS]
    if "Unsafe" not in config_names:  # every figure normalizes to Unsafe
        config_names.insert(0, "Unsafe")
    configs = [config_by_name(name) for name in config_names]

    models = {
        "spectre": (AttackModel.SPECTRE,),
        "futuristic": (AttackModel.FUTURISTIC,),
        "both": (AttackModel.SPECTRE, AttackModel.FUTURISTIC),
    }[args.models]

    observers = [ProgressLine()]
    event_log = JsonlEventLog(args.events) if args.events else None
    if event_log is not None:
        observers.append(event_log)

    session = _session_from(args, observers=observers)
    try:
        results = session.sweep(workloads, configs=configs, attack_models=models)
    finally:
        session.close()
        if event_log is not None:
            event_log.close()

    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    figure6 = build_figure6(results)
    for model in models:
        print(figure6.render(model))
        if out_dir is not None:
            csv_rows = [
                [workload]
                + [figure6.data[model][config][workload] for config in figure6.configs]
                for workload in figure6.workloads
            ]
            (out_dir / f"figure6_{model.value}.csv").write_text(
                to_csv(["benchmark"] + list(figure6.configs), csv_rows)
            )

    sdo_present = tuple(n for n in SDO_CONFIG_NAMES if n in config_names)
    if sdo_present:
        figure7 = build_figure7(results, configs=sdo_present)
        figure8 = build_figure8(results, sdo_present)
        for model in models:
            print(figure7.render(model))
            print(figure8.render(model))
        if table3_rows(results):
            print(render_table3(results))

    if event_log is not None:
        print(f"event log written to {event_log.path}")
    if args.journal:
        print(f"sweep journal written to {args.journal}")
    if out_dir is not None:
        print(f"CSV artifacts written to {out_dir}/")
    return 0


def _cmd_fabric(args) -> int:
    if args.fabric_command == "serve":
        from repro.fabric.scheduler import DEFAULT_COMPACT_EVERY, serve

        if args.compact_every is None:
            compact_every = DEFAULT_COMPACT_EVERY
        elif args.compact_every == 0:
            compact_every = None  # 0 on the CLI disables auto-compaction
        else:
            compact_every = args.compact_every
        serve(
            args.state_dir,
            host=args.host,
            port=args.port,
            cache_dir=args.cache_dir,
            lease_seconds=args.lease_seconds,
            max_pending=args.max_pending,
            compact_every=compact_every,
        )
        return 0
    if args.fabric_command == "work":
        import contextlib
        import json
        import os

        from repro.fabric.transport import TransportPolicy
        from repro.fabric.worker import WorkerAgent
        from repro.testing.faults import FaultPlan, inject

        policy = None
        if args.transport_retries is not None:
            policy = TransportPolicy(retries=args.transport_retries)
        agent = WorkerAgent(
            args.url,
            cache_dir=args.cache_dir,
            worker_id=args.worker_id,
            max_idle_seconds=args.max_idle,
            transport_policy=policy,
        )
        plan_path = os.environ.get("REPRO_FAULT_PLAN")
        context = (
            inject(FaultPlan.from_dict(json.loads(pathlib.Path(plan_path).read_text())))
            if plan_path
            else contextlib.nullcontext()
        )
        print(f"fabric-worker {agent.worker_id} polling {args.url}", flush=True)
        with context:
            stats = agent.run_forever()
        print(f"fabric-worker {agent.worker_id} done: {json.dumps(stats)}", flush=True)
        return 0
    if args.fabric_command == "status":
        from repro.fabric.transport import FabricError, HttpTransport

        try:
            reply = HttpTransport(args.url, timeout=5.0).get_json("/v1/ping")
        except FabricError as exc:
            print(f"unreachable: {exc}")
            return 1
        print(
            f"scheduler at {args.url}: {reply['sweeps']} sweeps, "
            f"{reply['cells']} cells ({reply['pending']} pending), "
            f"wire schema v{reply['schema']}"
        )
        return 0
    if args.fabric_command == "chaos":
        import json
        import time

        from repro.fabric.chaos import ChaosPlan, ChaosProxy, ChaosSpec

        if args.plan is not None:
            plan = ChaosPlan.from_dict(
                json.loads(pathlib.Path(args.plan).read_text())
            )
        else:
            rate = args.rate
            plan = ChaosPlan(
                args.seed,
                {
                    "*": ChaosSpec(
                        drop_request=rate,
                        drop_response=rate,
                        delay=rate,
                        duplicate=rate,
                        truncate=rate,
                        corrupt=rate,
                    )
                },
            )
        proxy = ChaosProxy(
            args.upstream, plan, host=args.host, port=args.port, ledger=args.ledger
        )
        proxy.start()
        print(
            f"chaos proxy listening on {proxy.url} -> {args.upstream} "
            f"(seed {plan.seed})",
            flush=True,
        )
        try:
            while True:
                time.sleep(1.0)
        except KeyboardInterrupt:
            pass
        finally:
            proxy.stop()
            print(f"chaos proxy stats: {json.dumps(proxy.stats)}", flush=True)
        return 0
    raise AssertionError(f"unhandled fabric command {args.fabric_command!r}")


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for simulation runs (default 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory (default .repro-cache/)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock budget; a stuck run's worker is killed and "
             "the cell is recorded as a 'timeout' failure",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="extra attempts for transient failures (crash/timeout), with "
             "exponential backoff (default 0)",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="print machine and variant tables")

    spectre = sub.add_parser("spectre", help="run the Spectre V1 penetration test")
    spectre.add_argument("--secret", type=int, default=5)
    spectre.add_argument("--model", choices=["spectre", "futuristic"], default="spectre")

    interfere = sub.add_parser(
        "interfere",
        help="run the forward-speculative-interference penetration test",
    )
    interfere.add_argument(
        "--model", choices=["spectre", "futuristic"], default="spectre"
    )

    run = sub.add_parser("run", help="run one workload under one configuration")
    run.add_argument("workload")
    run.add_argument("config")
    run.add_argument("--model", choices=["spectre", "futuristic"], default="spectre")
    run.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a cycle trace to FILE (instrumented runs bypass the cache)",
    )
    run.add_argument(
        "--trace-format", choices=["jsonl", "konata", "both"], default="jsonl",
        help="trace format; 'both' writes FILE.jsonl and FILE.konata",
    )
    run.add_argument(
        "--profile", action="store_true",
        help="measure wall time per phase and print profile.* stats",
    )
    _add_engine_options(run)

    sweep = sub.add_parser(
        "sweep", help="run the evaluation sweep and print Figures 6/7/8 + Table III"
    )
    sweep.add_argument(
        "--scale", type=float, default=1.0,
        help="scale workload iteration counts (e.g. 0.25 for a quick pass)",
    )
    sweep.add_argument(
        "--workloads", default=None,
        help="comma-separated workload names (default: the whole suite)",
    )
    sweep.add_argument(
        "--configs", default=None,
        help="comma-separated Table II config names (Unsafe is always added)",
    )
    sweep.add_argument(
        "--models", choices=["spectre", "futuristic", "both"], default="both",
    )
    sweep.add_argument(
        "--events", default=None, metavar="FILE",
        help="write a JSONL run-lifecycle event log (suffix: .events.jsonl)",
    )
    sweep.add_argument(
        "--out", default=None, metavar="DIR", help="write CSV artifacts here",
    )
    sweep.add_argument(
        "--journal", default=None, metavar="FILE",
        help="record terminal outcomes to a JSONL sweep journal (suffix: "
             ".journal) so an interrupted sweep can be resumed",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="load the --journal before running and skip every cell it "
             "already holds",
    )
    sweep.add_argument(
        "--fabric", default=None, metavar="URL",
        help="submit the sweep to a fabric scheduler (e.g. "
             "http://host:8700) instead of executing locally; --jobs and "
             "--timeout/--retries then apply on the fabric's workers",
    )
    sweep.add_argument(
        "--replay", action="store_true",
        help="record each workload's architectural trace once and replay "
             "it across every config/model cell sharing it (bit-identical "
             "metrics; traces are stored beside the result cache)",
    )
    _add_engine_options(sweep)

    fabric = sub.add_parser(
        "fabric", help="distributed sweep fabric: scheduler and workers"
    )
    fabric_sub = fabric.add_subparsers(dest="fabric_command", required=True)
    serve_p = fabric_sub.add_parser("serve", help="run the scheduler service")
    serve_p.add_argument(
        "--state-dir", default=".repro-fabric",
        help="durable queue + artifact store directory (default .repro-fabric/)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8700)
    serve_p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared artifact store (default <state-dir>/artifacts)",
    )
    serve_p.add_argument(
        "--lease-seconds", type=float, default=15.0,
        help="cell lease duration; a worker silent this long is presumed dead",
    )
    serve_p.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help="admission control: reject submissions (HTTP 429 + Retry-After) "
             "that would push the pending queue past N cells (default: "
             "unbounded)",
    )
    serve_p.add_argument(
        "--compact-every", type=int, default=None, metavar="N",
        help="compact the durable queue journal after every N appended "
             "records (default 4096; 0 disables auto-compaction)",
    )
    work_p = fabric_sub.add_parser("work", help="run a worker agent")
    work_p.add_argument("url", help="scheduler URL, e.g. http://host:8700")
    work_p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="worker-local result cache (checked before the artifact store)",
    )
    work_p.add_argument("--worker-id", default=None)
    work_p.add_argument(
        "--max-idle", type=float, default=None, metavar="SECONDS",
        help="exit after this long without work (default: poll forever)",
    )
    work_p.add_argument(
        "--transport-retries", type=int, default=None, metavar="N",
        help="retry budget for transient scheduler request failures "
             "(default: the TransportPolicy default)",
    )
    status_p = fabric_sub.add_parser("status", help="ping a scheduler")
    status_p.add_argument("url")
    chaos_p = fabric_sub.add_parser(
        "chaos",
        help="run a fault-injecting proxy in front of a scheduler",
    )
    chaos_p.add_argument("upstream", help="scheduler URL to proxy, e.g. http://host:8700")
    chaos_p.add_argument("--host", default="127.0.0.1")
    chaos_p.add_argument(
        "--port", type=int, default=0,
        help="listen port (default: an ephemeral port, printed on start)",
    )
    chaos_p.add_argument(
        "--plan", default=None, metavar="FILE",
        help="JSON ChaosPlan (seed + per-endpoint fault specs); overrides "
             "--seed/--rate",
    )
    chaos_p.add_argument(
        "--seed", type=int, default=0,
        help="seed for the built-in uniform plan (default 0)",
    )
    chaos_p.add_argument(
        "--rate", type=float, default=0.05, metavar="P",
        help="per-fault-kind rate for the built-in uniform plan (default 0.05)",
    )
    chaos_p.add_argument(
        "--ledger", default=None, metavar="FILE",
        help="append a JSONL record of every injected fault to FILE",
    )

    from repro.lint.cli import add_lint_arguments

    lint = sub.add_parser(
        "lint", help="run the sdolint invariant checkers (ratcheted gate)"
    )
    add_lint_arguments(lint)

    from repro.scan.cli import add_scan_arguments

    scan = sub.add_parser(
        "scan", help="run the static gadget scanner (ratcheted gate)"
    )
    add_scan_arguments(scan)

    args = parser.parse_args(argv)
    if getattr(args, "resume", False) and not getattr(args, "journal", None):
        parser.error("--resume requires --journal FILE")
    if args.command == "lint":
        from repro.lint.cli import run_lint_command

        return run_lint_command(args)
    if args.command == "scan":
        from repro.scan.cli import run_scan_command

        return run_scan_command(args)
    handlers = {
        "info": _cmd_info,
        "spectre": _cmd_spectre,
        "interfere": _cmd_interfere,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "fabric": _cmd_fabric,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
