"""Command-line front door: ``python -m repro <command>``.

Commands:

* ``info``     — print Table I (machine) and Table II (variants)
* ``spectre``  — run the Spectre V1 penetration test across all configs
* ``run``      — run one workload under one configuration and print metrics
"""

from __future__ import annotations

import argparse
import sys

from repro.common.config import AttackModel
from repro.eval.report import render_table
from repro.eval.tables import render_table1, render_table2
from repro.sim.configs import EVALUATED_CONFIGS, config_by_name
from repro.sim.runner import run_workload
from repro.workloads.spec17 import SPEC17_SUITE, workload_by_name


def _cmd_info(_args) -> int:
    print(render_table1())
    print(render_table2())
    names = ", ".join(w.name for w in SPEC17_SUITE)
    print(f"workloads: {names}")
    return 0


def _cmd_spectre(args) -> int:
    from repro.security.spectre_v1 import run_spectre_v1

    rows = []
    for config in EVALUATED_CONFIGS:
        result = run_spectre_v1(config, AttackModel(args.model), secret=args.secret)
        rows.append([config.name, "LEAKED" if result.leaked else "blocked",
                     result.recovered if result.recovered is not None else "-"])
    print(render_table(["configuration", "outcome", "recovered"], rows,
                       title=f"Spectre V1, secret={args.secret}, model={args.model}"))
    return 0


def _cmd_run(args) -> int:
    workload = workload_by_name(args.workload)
    config = config_by_name(args.config)
    metrics = run_workload(workload, config, AttackModel(args.model))
    print(f"{workload.name} under {config.name} ({args.model}):")
    print(f"  cycles       {metrics.cycles}")
    print(f"  instructions {metrics.instructions}")
    print(f"  IPC          {metrics.ipc:.3f}")
    if metrics.stats.get("stt.sdo.predictions"):
        print(f"  precision    {metrics.predictor_precision:.1%}")
        print(f"  accuracy     {metrics.predictor_accuracy:.1%}")
        print(f"  SDO squashes {metrics.squashes:.0f}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="print machine and variant tables")
    spectre = sub.add_parser("spectre", help="run the Spectre V1 penetration test")
    spectre.add_argument("--secret", type=int, default=5)
    spectre.add_argument("--model", choices=["spectre", "futuristic"], default="spectre")
    run = sub.add_parser("run", help="run one workload under one configuration")
    run.add_argument("workload")
    run.add_argument("config")
    run.add_argument("--model", choices=["spectre", "futuristic"], default="spectre")
    args = parser.parse_args(argv)
    return {"info": _cmd_info, "spectre": _cmd_spectre, "run": _cmd_run}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
