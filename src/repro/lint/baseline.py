"""Ratchet baseline: known findings that don't fail the gate (yet).

The baseline is a committed JSON file mapping finding fingerprints to a
snapshot of the finding (for human review).  Runs partition findings into

* **new** — not in the baseline: these fail CI;
* **baselined** — matched an entry: reported only with ``--show-baselined``;
* **stale** — baseline entries nothing matched any more: a warning nudging
  the author to re-ratchet with ``repro lint --write-baseline``.

Ratcheting down (fixing a baselined finding and re-writing the baseline) is
the intended workflow; ratcheting up requires deliberately re-running
``--write-baseline`` with the violation in place, which reviewers can see in
the diff.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding

BASELINE_NAME = "sdolint-baseline.json"


@dataclass
class BaselineDiff:
    """Partition of a run's findings against the baseline."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale: list[str] = field(default_factory=list)  # fingerprints


class Baseline:
    """Committed set of accepted finding fingerprints."""

    def __init__(self, entries: dict[str, dict[str, object]] | None = None) -> None:
        self.entries: dict[str, dict[str, object]] = dict(entries or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text())
        return cls(payload.get("findings", {}))

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        entries = {f.fingerprint: f.to_dict() for f in findings}
        for entry in entries.values():
            entry.pop("fingerprint", None)
        return cls(entries)

    def write(self, path: Path, command: str = "repro lint") -> None:
        payload = {
            "comment": (
                "sdolint ratchet baseline: findings listed here do not fail the "
                f"gate.  Regenerate with `{command} --write-baseline`; entries "
                "should only ever be removed."
            ),
            "findings": {k: self.entries[k] for k in sorted(self.entries)},
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")

    def diff(self, findings: list[Finding]) -> BaselineDiff:
        result = BaselineDiff()
        seen: set[str] = set()
        for finding in findings:
            fp = finding.fingerprint
            if fp in self.entries:
                result.baselined.append(finding)
                seen.add(fp)
            else:
                result.new.append(finding)
        result.stale = sorted(set(self.entries) - seen)
        return result
