"""The :class:`Finding` model: one invariant violation at one source location.

Findings are what every checker yields and what the engine filters through
inline suppressions and the ratchet baseline.  A finding's *fingerprint*
deliberately excludes the line number — baselined findings survive unrelated
edits that shift code around, but any change to the message (or a second
occurrence of the same message in the same file) shows up as new.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

#: Severities, in increasing order of alarm.  ``error`` findings gate CI;
#: ``warning`` findings are advisory (printed, never fatal).
WARNING = "warning"
ERROR = "error"
SEVERITIES = (WARNING, ERROR)


@dataclass(frozen=True, order=True)
class Finding:
    """One checker hit: *file/line/checker-id/severity* plus the message."""

    path: str  #: repo-relative, forward slashes
    line: int  #: 1-based; 0 for whole-file findings
    checker: str  #: checker id, e.g. ``oblivious-timing``
    message: str
    severity: str = field(default=ERROR, compare=False)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line number excluded)."""
        blob = json.dumps([self.checker, self.path, self.message])
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "checker": self.checker,
            "severity": self.severity,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        """Human one-liner, ``path:line: [checker] message``."""
        location = f"{self.path}:{self.line}" if self.line else self.path
        return f"{location}: {self.severity}: [{self.checker}] {self.message}"
