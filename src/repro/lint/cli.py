"""``repro lint``: run the sdolint invariant checkers.

Exit status is 0 when no *new* error-severity finding exists (warnings and
baselined findings never gate), 1 otherwise.  ``--format json`` emits a
machine-readable report for CI annotation tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import TextIO

from repro.lint.baseline import BASELINE_NAME, Baseline
from repro.lint.checkers import CHECKERS
from repro.lint.checkers.cache_schema import write_fingerprint
from repro.lint.engine import LintResult, load_context, run_lint
from repro.lint.findings import ERROR


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="restrict reported findings to these files/directories "
             "(analysis always covers the whole tree)",
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="repository root (default: auto-detected from this package)",
    )
    parser.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated checker ids to run "
             f"(default: all of {', '.join(sorted(CHECKERS))})",
    )
    parser.add_argument(
        "--format", choices=["human", "json"], default="human",
        help="output format (default human)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"ratchet baseline file (default <root>/{BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept every current finding into the baseline and exit 0",
    )
    parser.add_argument(
        "--show-baselined", action="store_true",
        help="also print findings already covered by the baseline",
    )
    parser.add_argument(
        "--update-fingerprints", action="store_true",
        help="refresh the cache-schema fingerprint pin (do this AFTER "
             "bumping SCHEMA_VERSION) and exit",
    )


def _detect_root(explicit: str | None) -> Path:
    if explicit:
        return Path(explicit).resolve()
    # src/repro/lint/cli.py -> repo root is four levels up.
    return Path(__file__).resolve().parents[3]


def _report_human(result: LintResult, show_baselined: bool, out: TextIO) -> None:
    for finding in result.diff.new:
        out.write(finding.render() + "\n")
    if show_baselined:
        for finding in result.diff.baselined:
            out.write(f"{finding.render()}  (baselined)\n")
    for fingerprint in result.diff.stale:
        out.write(
            f"note: baseline entry {fingerprint} no longer matches anything — "
            "re-ratchet with --write-baseline\n"
        )
    errors = sum(1 for f in result.diff.new if f.severity == ERROR)
    warnings = len(result.diff.new) - errors
    summary = (
        f"sdolint: {errors} error(s), {warnings} warning(s)"
        f", {len(result.diff.baselined)} baselined"
    )
    if result.suppressed:
        summary += f", {result.suppressed} suppressed inline"
    out.write(summary + "\n")


def _report_json(result: LintResult, out: TextIO) -> None:
    payload = {
        "new": [f.to_dict() for f in result.diff.new],
        "baselined": [f.to_dict() for f in result.diff.baselined],
        "stale_baseline_entries": result.diff.stale,
        "suppressed_inline": result.suppressed,
        "gating": len(result.gating),
    }
    json.dump(payload, out, indent=2)
    out.write("\n")


def run_lint_command(args, out: TextIO | None = None) -> int:
    out = out if out is not None else sys.stdout
    root = _detect_root(args.root)
    ctx = load_context(root, [Path(p) for p in args.paths] or None)

    if args.update_fingerprints:
        path = write_fingerprint(ctx)
        out.write(f"cache-schema fingerprint written to {path}\n")
        return 0

    baseline_path = Path(args.baseline) if args.baseline else root / BASELINE_NAME
    select = (
        [part.strip() for part in args.select.split(",") if part.strip()]
        if args.select
        else None
    )
    try:
        result = run_lint(ctx, Baseline.load(baseline_path), select=select)
    except ValueError as exc:
        out.write(f"sdolint: {exc}\n")
        return 2

    if args.write_baseline:
        Baseline.from_findings(result.findings).write(baseline_path)
        out.write(
            f"baseline with {len(result.findings)} finding(s) written to "
            f"{baseline_path}\n"
        )
        return 0

    if args.format == "json":
        _report_json(result, out)
    else:
        _report_human(result, args.show_baselined, out)
    return 1 if result.gating else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro lint", description=__doc__)
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
