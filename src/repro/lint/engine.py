"""Discovery + checker execution + suppression/baseline filtering.

``run_lint`` is the whole pipeline: collect sources, build a
:class:`LintContext`, run every (selected) checker, drop findings covered
by an inline ``# sdolint: disable=…`` comment, then partition the rest
against the committed ratchet baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.lint.baseline import Baseline, BaselineDiff
from repro.lint.checkers import CHECKERS
from repro.lint.context import LintContext
from repro.lint.findings import ERROR, Finding
from repro.lint.source import SourceFile

#: Directories (repo-relative) holding the code under analysis.
LINT_ROOTS = ("src/repro",)

#: Directories scanned for stat-key *reads* only — never linted themselves.
READ_SCAN_ROOTS = ("tests", "scripts", "benchmarks")


def _iter_python_files(base: Path) -> Iterable[Path]:
    if base.is_file():
        yield base
        return
    for path in sorted(base.rglob("*.py")):
        if "__pycache__" not in path.parts:
            yield path


def load_context(root: Path, paths: Iterable[Path] | None = None) -> LintContext:
    """Build the :class:`LintContext` for ``root``.

    ``paths`` optionally restricts the *linted* set (CLI positional args);
    cross-module indexes and the read scan always cover the full tree so
    restricting paths never changes what a key "resolves" to.
    """
    root = Path(root)
    files: list[SourceFile] = []
    for lint_root in LINT_ROOTS:
        base = root / lint_root
        if not base.exists():
            continue
        for path in _iter_python_files(base):
            try:
                files.append(SourceFile.load(path, root))
            except (SyntaxError, UnicodeDecodeError, OSError):
                continue  # unparseable files are the build's problem, not ours
    if paths:
        wanted = {Path(p).resolve() for p in paths}

        def selected(source: SourceFile) -> bool:
            resolved = source.path.resolve()
            return any(resolved == want or want in resolved.parents for want in wanted)

        # Keep every file in the context (indexes need the whole tree) but
        # remember the restriction for finding filtering.
        restricted = {source.rel for source in files if selected(source)}
    else:
        restricted = None

    read_scan: list[SourceFile] = []
    for scan_root in READ_SCAN_ROOTS:
        base = root / scan_root
        if not base.exists():
            continue
        for path in _iter_python_files(base):
            try:
                read_scan.append(SourceFile.load(path, root))
            except (SyntaxError, UnicodeDecodeError, OSError):
                continue

    ctx = LintContext(root, files, read_scan)
    ctx.restricted = restricted  # type: ignore[attr-defined]
    return ctx


@dataclass
class LintResult:
    """Everything a reporter needs about one run."""

    findings: list[Finding] = field(default_factory=list)  # post-suppression
    suppressed: int = 0
    diff: BaselineDiff = field(default_factory=BaselineDiff)

    @property
    def gating(self) -> list[Finding]:
        """New error-severity findings: the ones that fail the gate."""
        return [f for f in self.diff.new if f.severity == ERROR]


def run_lint(
    ctx: LintContext,
    baseline: Baseline,
    select: Iterable[str] | None = None,
) -> LintResult:
    result = LintResult()
    selected = set(select) if select else set(CHECKERS)
    unknown = selected - set(CHECKERS)
    if unknown:
        raise ValueError(
            f"unknown checker id(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(CHECKERS))})"
        )
    restricted = getattr(ctx, "restricted", None)
    for checker_id in sorted(selected):
        for finding in CHECKERS[checker_id](ctx):
            if restricted is not None and finding.path not in restricted:
                continue
            source = ctx.file(finding.path)
            if source is not None and source.is_suppressed(finding.line, finding.checker):
                result.suppressed += 1
                continue
            result.findings.append(finding)
    result.findings.sort()
    result.diff = baseline.diff(result.findings)
    return result
