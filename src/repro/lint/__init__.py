"""sdolint: repo-specific static invariant checking.

An AST-based checker suite for the invariants this reproduction relies on
but Python cannot express in types: data-oblivious code must not let
operand data reach timing decisions (``oblivious-timing``), the stat-key
namespace must be statically knowable and consistent with the golden
fixture (``stat-key``), the simulation core must stay deterministic
(``determinism``), the result-cache schema must not drift without a
version bump (``cache-schema``), and the run-event vocabulary must stay
closed (``event-schema``).

Entry points: ``repro lint`` (see :mod:`repro.lint.cli`) or
:func:`repro.lint.engine.run_lint` programmatically.  Findings ratchet
against a committed baseline (:mod:`repro.lint.baseline`) and individual
lines opt out with ``# sdolint: disable=<checker-id>``.
"""

from repro.lint.baseline import Baseline
from repro.lint.checkers import CHECKERS
from repro.lint.context import LintContext
from repro.lint.engine import LintResult, load_context, run_lint
from repro.lint.findings import ERROR, WARNING, Finding
from repro.lint.source import SourceFile

__all__ = [
    "Baseline",
    "CHECKERS",
    "ERROR",
    "Finding",
    "LintContext",
    "LintResult",
    "SourceFile",
    "WARNING",
    "load_context",
    "run_lint",
]
