"""Shared analysis context handed to every checker.

Holds the parsed modules under analysis, an optional read-only scan set
(tests/scripts — scanned for stat-key *reads* but never linted), the repo
root, and lazily built cross-module indexes:

``key_constants``
    Module-level ALL-CAPS assignments whose value is a tuple/list/dict of
    string literals (e.g. ``LOAD_DECISION_COUNTERS``, ``STALL_REASONS``).
    Checkers use them to resolve non-literal stat keys and event kinds.

``self_attr_strings``
    Per (module, class): every ``self.<attr> = "literal"`` assignment, so a
    key expression like ``self._cycle_fetch_stall`` resolves to the set of
    literals ever assigned to that attribute.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.source import SourceFile

_CONST_NAME = r"caps-with-optional-leading-underscore"


def _is_const_name(name: str) -> bool:
    stripped = name.lstrip("_")
    return bool(stripped) and stripped == stripped.upper() and stripped[0].isalpha()


def _literal_strings(node: ast.expr) -> set[str] | None:
    """Strings an expression can evaluate to, if statically known.

    Handles plain string constants and conditional expressions whose arms
    are themselves statically known (``"a" if flag else "b"``).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return {node.value}
    if isinstance(node, ast.IfExp):
        body = _literal_strings(node.body)
        orelse = _literal_strings(node.orelse)
        if body is not None and orelse is not None:
            return body | orelse
    return None


def _string_values(node: ast.expr) -> tuple[str, ...] | None:
    """Literal string payload of a tuple/list/set/dict display, else None."""
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        values = node.elts
    elif isinstance(node, ast.Dict):
        values = [v for v in node.values if v is not None]
    elif isinstance(node, ast.Call):
        # frozenset({...}) / tuple([...]) wrappers around a display.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("frozenset", "tuple", "set", "list")
            and len(node.args) == 1
        ):
            return _string_values(node.args[0])
        return None
    else:
        return None
    out = []
    for value in values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            out.append(value.value)
        else:
            return None
    return tuple(out)


class LintContext:
    """Everything a checker may need: files, root, cross-module indexes."""

    def __init__(
        self,
        root: Path,
        files: Iterable[SourceFile],
        read_scan_files: Iterable[SourceFile] = (),
    ) -> None:
        self.root = Path(root)
        self.files: list[SourceFile] = list(files)
        self.read_scan_files: list[SourceFile] = list(read_scan_files)
        self._by_rel = {f.rel: f for f in self.files}
        self._key_constants: dict[str, tuple[str, ...]] | None = None
        self._self_attr_strings: dict[tuple[str, str], dict[str, set[str]]] | None = None

    def file(self, rel: str) -> SourceFile | None:
        return self._by_rel.get(rel)

    def files_matching(self, suffix: str) -> Iterator[SourceFile]:
        """Files whose repo-relative path ends with ``suffix``."""
        for source in self.files:
            if source.rel.endswith(suffix):
                yield source

    @property
    def key_constants(self) -> dict[str, tuple[str, ...]]:
        """Name -> literal string values, for every ALL-CAPS module constant
        holding only string literals (dict values / tuple / list / set)."""
        if self._key_constants is None:
            constants: dict[str, tuple[str, ...]] = {}
            for source in self.files:
                for node in source.tree.body:
                    if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                        continue
                    target = node.targets[0]
                    if not isinstance(target, ast.Name) or not _is_const_name(target.id):
                        continue
                    values = _string_values(node.value)
                    if values is not None:
                        constants[target.id] = values
            self._key_constants = constants
        return self._key_constants

    @property
    def self_attr_strings(self) -> dict[tuple[str, str], dict[str, set[str]]]:
        """(module rel, class name) -> attr -> string literals assigned to
        ``self.<attr>`` anywhere in that class (``None`` assignments are
        ignored; any other non-literal assignment poisons the attr)."""
        if self._self_attr_strings is None:
            index: dict[tuple[str, str], dict[str, set[str]]] = {}
            for source in self.files:
                for node in ast.walk(source.tree):
                    if not isinstance(node, ast.ClassDef):
                        continue
                    attrs: dict[str, set[str]] = {}
                    poisoned: set[str] = set()
                    for sub in ast.walk(node):
                        if not isinstance(sub, (ast.Assign, ast.AnnAssign)):
                            continue
                        targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                        value = sub.value
                        for target in targets:
                            if not (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                continue
                            literals = _literal_strings(value)
                            if literals is not None:
                                attrs.setdefault(target.attr, set()).update(literals)
                            elif isinstance(value, ast.Constant):
                                pass  # None/ints never used as stat keys
                            else:
                                poisoned.add(target.attr)
                    for attr in poisoned:
                        attrs.pop(attr, None)
                    index[(source.rel, node.name)] = attrs
            self._self_attr_strings = index
        return self._self_attr_strings
