"""Parsed source files and inline suppressions.

A :class:`SourceFile` is one parsed module: path, text, AST, and the
``# sdolint: disable=<id>[,<id>…]`` suppressions found in its comments.  A
suppression applies to every finding anchored on its physical line (for a
multi-line statement, the line the finding points at); ``disable=all``
suppresses every checker on that line.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path

_SUPPRESS_RE = re.compile(r"#\s*sdolint:\s*disable=([a-z\-_,\s]+)")


def parse_suppressions(text: str) -> dict[int, frozenset[str]]:
    """Map line number -> suppressed checker ids for one module's source."""
    suppressions: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            ids = frozenset(part.strip() for part in match.group(1).split(",") if part.strip())
            line = token.start[0]
            suppressions[line] = suppressions.get(line, frozenset()) | ids
    except tokenize.TokenError:
        pass  # a finding about the syntax error will surface elsewhere
    return suppressions


class SourceFile:
    """One module under analysis: path, text, AST, suppressions."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        self.rel = rel  # repo-relative, forward slashes
        self.text = text
        self.tree = ast.parse(text, filename=str(path))
        self.suppressions = parse_suppressions(text)

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceFile":
        rel = path.resolve().relative_to(root.resolve()).as_posix()
        return cls(path, rel, path.read_text())

    def is_suppressed(self, line: int, checker_id: str) -> bool:
        ids = self.suppressions.get(line)
        if not ids:
            return False
        return checker_id in ids or "all" in ids

    def __repr__(self) -> str:
        return f"SourceFile({self.rel!r})"
