"""``stat-key``: the counter namespace must be statically knowable.

:class:`~repro.common.stats.StatGroup` creates counters on first touch, so
a typo'd key silently forks a new counter instead of failing.  This checker
closes that hole statically:

* every ``bump``/``set``/``histogram`` key in the simulation core must
  resolve to literal strings — directly, through an ALL-CAPS key-constant
  (``LOAD_DECISION_COUNTERS[action]``, ``for reason in STALL_REASONS``),
  or through a ``self.<attr>`` whose class-level assignments are all
  literal (**error** otherwise);
* every key in the golden-stats fixture must be bumped/set somewhere
  (**error**: a fixture key nothing produces is a typo or dead entry);
* every ``stats.get("core..." / "mem..." / "stt..." / "protection...")``
  read must name a counter something bumps (**error**: reading a typo'd
  key silently yields the default);
* counters bumped but absent from both the fixture and every read site are
  reported as **warnings** (unobserved instrumentation);
* the PR-2 stall-attribution identity: the literals ``_stall_reason``
  returns must be exactly ``STALL_REASONS``, and every ``core.stall.*``
  fixture key must be a member (**error**).
"""

from __future__ import annotations

import ast
import json
from typing import Iterator

from repro.lint.context import LintContext
from repro.lint.findings import ERROR, WARNING, Finding
from repro.lint.source import SourceFile

CHECKER_ID = "stat-key"

#: Modules whose stat keys are checked (the deterministic simulation core).
SIM_CORE_PREFIXES = (
    "src/repro/pipeline/",
    "src/repro/memory/",
    "src/repro/core/",
    "src/repro/stt/",
    "src/repro/frontend/",
    "src/repro/isa/",
    "src/repro/workloads/",
    "src/repro/common/",
    "src/repro/security/",
    "src/repro/baselines/",
)

_STAT_METHODS = frozenset({"bump", "set", "histogram"})

#: Dotted-read prefixes that refer to simulation counters (as opposed to
#: host-side ``profile.*`` keys the profiler writes into the metrics dict).
_READ_PREFIXES = ("core.", "mem.", "stt.", "protection.")

GOLDEN_FIXTURE = "tests/golden/golden_stats.json"


def _is_sim_core(rel: str) -> bool:
    return rel.startswith(SIM_CORE_PREFIXES)


def _stats_receiver(node: ast.expr) -> bool:
    """Does ``node`` look like a stats object (``stats``, ``self.stats``,
    ``decision_stats`` …)?  Matched by name suffix, the repo convention."""
    if isinstance(node, ast.Name):
        return node.id.endswith("stats")
    if isinstance(node, ast.Attribute):
        return node.attr.endswith("stats")
    return False


def _stat_write_shape(attr: str, call: ast.Call) -> bool:
    """Is this call shaped like a StatGroup write?

    No other class in the tree exposes ``bump``/``histogram``, and ``set``
    is disambiguated by arity (``set(counter, value)``), so a
    name-and-shape match is enough — receivers like ``occ`` (a child
    group) don't follow the ``*stats`` naming convention.
    """
    if not isinstance(call.func, ast.Attribute):
        return False
    if not isinstance(call.func.value, (ast.Name, ast.Attribute)):
        return False
    n_args = len(call.args)
    if attr == "bump":
        return 1 <= n_args <= 2
    if attr == "set":
        return n_args == 2
    if attr == "histogram":
        return n_args == 1
    return False


class _KeyResolver(ast.NodeVisitor):
    """Walk one module, resolving stat-key expressions to literal strings.

    Maintains the enclosing class name (for ``self.<attr>`` lookup) and
    loop bindings over key constants (``for reason in STALL_REASONS:``).
    """

    def __init__(self, ctx: LintContext, source: SourceFile) -> None:
        self.ctx = ctx
        self.source = source
        self.class_stack: list[str] = []
        self.loop_bindings: dict[str, tuple[str, ...]] = {}
        #: (line, keys or None) per bump/set/histogram call; None = unresolved
        self.writes: list[tuple[int, tuple[str, ...] | None, str]] = []

    def resolve(self, node: ast.expr) -> tuple[str, ...] | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return (node.value,)
        if isinstance(node, ast.IfExp):
            body = self.resolve(node.body)
            orelse = self.resolve(node.orelse)
            if body is not None and orelse is not None:
                return body + orelse
            return None
        if isinstance(node, ast.Name):
            if node.id in self.loop_bindings:
                return self.loop_bindings[node.id]
            return self.ctx.key_constants.get(node.id)
        if isinstance(node, ast.Subscript):
            if isinstance(node.value, ast.Name):
                return self.ctx.key_constants.get(node.value.id)
            return None
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.class_stack
        ):
            attrs = self.ctx.self_attr_strings.get((self.source.rel, self.class_stack[-1]), {})
            values = attrs.get(node.attr)
            return tuple(sorted(values)) if values else None
        return None

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    def visit_For(self, node: ast.For) -> None:
        bound: str | None = None
        if isinstance(node.target, ast.Name) and isinstance(node.iter, ast.Name):
            values = self.ctx.key_constants.get(node.iter.id)
            if values is not None:
                bound = node.target.id
                self.loop_bindings[bound] = values
        self.generic_visit(node)
        if bound is not None:
            del self.loop_bindings[bound]

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _STAT_METHODS
            and _stat_write_shape(func.attr, node)
        ):
            self.writes.append((node.lineno, self.resolve(node.args[0]), func.attr))
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # Direct writes into the merged metrics dict, e.g.
        # ``merged["core.bpred_mispredict_rate"] = …`` — derived stats that
        # exist only in the flattened namespace.
        for target in node.targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.slice, ast.Constant)
                and isinstance(target.slice.value, str)
                and target.slice.value.startswith(_READ_PREFIXES)
            ):
                self.writes.append((node.lineno, (target.slice.value.rsplit(".", 1)[-1],), "set"))
        self.generic_visit(node)


def _collect_reads(files: list[SourceFile]) -> dict[str, int]:
    """Literal keys read via ``stats.get(...)`` / ``stats[...]`` anywhere
    (src, tests, scripts), mapped to one representative line."""
    reads: dict[str, int] = {}
    for source in files:
        for node in ast.walk(source.tree):
            key: ast.expr | None = None
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and _stats_receiver(node.func.value)
                and node.args
            ):
                key = node.args[0]
            elif isinstance(node, ast.Subscript) and _stats_receiver(node.value):
                key = node.slice
            if key is not None and isinstance(key, ast.Constant) and isinstance(key.value, str):
                reads.setdefault(key.value, node.lineno)
    return reads


def _golden_keys(ctx: LintContext) -> dict[str, set[str]]:
    """Fixture stat keys, unioned over cells: dotted key -> leaf."""
    path = ctx.root / GOLDEN_FIXTURE
    if not path.exists():
        return {}
    payload = json.loads(path.read_text())
    keys: set[str] = set()
    for cell in payload.get("cells", {}).values():
        keys.update(cell.get("stats", {}))
    return {key: {key.rsplit(".", 1)[-1]} for key in sorted(keys)}


def _stall_reason_literals(ctx: LintContext) -> tuple[set[str], int] | None:
    """Literal strings ``Core._stall_reason`` can return, plus its line."""
    source = ctx.file("src/repro/pipeline/core.py")
    if source is None:
        return None
    for node in ast.walk(source.tree):
        if isinstance(node, ast.FunctionDef) and node.name == "_stall_reason":
            literals: set[str] = set()

            def _returned_strings(expr: ast.expr | None) -> None:
                if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
                    literals.add(expr.value)
                elif isinstance(expr, ast.IfExp):
                    _returned_strings(expr.body)
                    _returned_strings(expr.orelse)

            for sub in ast.walk(node):
                if isinstance(sub, ast.Return):
                    _returned_strings(sub.value)
            return literals, node.lineno
    return None


def run(ctx: LintContext) -> Iterator[Finding]:
    bumped: dict[str, int] = {}  # leaf key -> representative line
    for source in ctx.files:
        if not _is_sim_core(source.rel):
            continue
        resolver = _KeyResolver(ctx, source)
        resolver.visit(source.tree)
        for line, keys, method in resolver.writes:
            if keys is None:
                yield Finding(
                    path=source.rel,
                    line=line,
                    checker=CHECKER_ID,
                    message=(
                        f"stat {method}() key is not statically resolvable — "
                        "use a literal string, an ALL-CAPS key-constant "
                        "(dict/tuple of literals), or a self-attribute "
                        "assigned only literals"
                    ),
                    severity=ERROR,
                )
            else:
                for key in keys:
                    bumped.setdefault(key, line)

    reads = _collect_reads(ctx.files + ctx.read_scan_files)
    golden = _golden_keys(ctx)
    golden_leaves = {leaf for leaves in golden.values() for leaf in leaves}

    # Golden fixture keys nothing produces.
    for dotted in golden:
        leaf = dotted.rsplit(".", 1)[-1]
        # Histogram exports appear as <name>.mean / <name>.count.
        if leaf in ("mean", "count"):
            leaf = dotted.rsplit(".", 2)[-2]
        if leaf not in bumped:
            yield Finding(
                path=GOLDEN_FIXTURE,
                line=0,
                checker=CHECKER_ID,
                message=(
                    f"golden fixture key {dotted!r} is never bumped/set by "
                    "any simulation-core module — typo'd counter or stale "
                    "fixture entry"
                ),
                severity=ERROR,
            )

    # Reads of simulation counters nothing bumps.
    for dotted in sorted(reads):
        if not dotted.startswith(_READ_PREFIXES):
            continue
        leaf = dotted.rsplit(".", 1)[-1]
        if leaf in ("mean", "count"):
            leaf = dotted.rsplit(".", 2)[-2]
        if leaf not in bumped:
            yield Finding(
                path=GOLDEN_FIXTURE if dotted in golden else "src/repro",
                line=0,
                checker=CHECKER_ID,
                message=(
                    f"stat key {dotted!r} is read (stats.get/[]) but never "
                    "bumped/set by any simulation-core module — a typo here "
                    "silently reads the default value"
                ),
                severity=ERROR,
            )

    # Bumped but observed nowhere: one aggregated advisory (individual
    # counters are often legitimately unexercised by the golden workload).
    # Members of ALL-CAPS key-constants are excluded — those enumerations
    # are consumed wholesale by prefix loops (``core.stall.*`` folds,
    # decision tables) that no static read extraction can see.
    read_leaves = {key.rsplit(".", 1)[-1] for key in reads} | set(reads)
    enumerated = {value for values in ctx.key_constants.values() for value in values}
    unobserved = sorted(
        leaf
        for leaf in bumped
        if leaf not in golden_leaves
        and leaf not in read_leaves
        and leaf not in enumerated
    )
    if unobserved:
        yield Finding(
            path="src/repro",
            line=0,
            checker=CHECKER_ID,
            message=(
                f"{len(unobserved)} counter(s) bumped but absent from both "
                "the golden fixture and every read site (unobserved "
                f"instrumentation): {', '.join(unobserved)}"
            ),
            severity=WARNING,
        )

    # Stall-attribution identity (PR 2): _stall_reason literals == STALL_REASONS.
    stall_reasons = set(ctx.key_constants.get("STALL_REASONS", ()))
    found = _stall_reason_literals(ctx)
    if found is not None and stall_reasons:
        literals, line = found
        for extra in sorted(literals - stall_reasons):
            yield Finding(
                path="src/repro/pipeline/core.py",
                line=line,
                checker=CHECKER_ID,
                message=(
                    f"_stall_reason can return {extra!r}, which is missing "
                    "from STALL_REASONS — the cycle-accounting fold would "
                    "silently drop it and break the stall identity "
                    "(cycles == commit_active + sum(core.stall.*))"
                ),
                severity=ERROR,
            )
        for missing in sorted(stall_reasons - literals):
            yield Finding(
                path="src/repro/pipeline/core.py",
                line=line,
                checker=CHECKER_ID,
                message=(
                    f"STALL_REASONS lists {missing!r} but _stall_reason "
                    "never returns it — dead attribution bucket"
                ),
                severity=WARNING,
            )
        for dotted in golden:
            if ".stall." in dotted and dotted.rsplit(".", 1)[-1] not in stall_reasons:
                yield Finding(
                    path=GOLDEN_FIXTURE,
                    line=0,
                    checker=CHECKER_ID,
                    message=f"golden stall key {dotted!r} is not a STALL_REASONS member",
                    severity=ERROR,
                )
