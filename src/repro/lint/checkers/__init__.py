"""Checker registry.

A checker is a module exposing ``CHECKER_ID`` (the id used in findings,
suppressions and ``--select``) and ``run(ctx) -> Iterable[Finding]``.  The
engine runs every registered checker unless told otherwise.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.lint.checkers import (
    cache_schema,
    determinism,
    event_schema,
    oblivious_timing,
    stat_key,
)
from repro.lint.context import LintContext
from repro.lint.findings import Finding

_MODULES = (oblivious_timing, stat_key, determinism, cache_schema, event_schema)

CHECKERS: dict[str, Callable[[LintContext], Iterable[Finding]]] = {
    module.CHECKER_ID: module.run for module in _MODULES
}

__all__ = ["CHECKERS"]
