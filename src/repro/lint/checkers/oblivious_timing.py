"""``oblivious-timing``: Definition-2 violations in data-oblivious code.

Scope — the code that *claims* operand-independent resource usage:

* every method of ``DOVariant`` / ``SdoOperation`` and of any class that
  subclasses them (the general SDO framework and its instances);
* every function whose name contains ``oblivious`` (the hand-specialized
  Obl-Ld path in ``repro.memory.hierarchy``).

Within that scope, the intra-function taint lattice of
:mod:`repro.lint.taint` tracks architectural operand data (``args`` /
``addr`` parameters, ``.presult`` / ``.success`` / ``.value`` reads, the
reference path) and flags any flow into a timing or resource-reservation
sink.  Timing may depend on the *prediction* — ``pc``,
``predicted_level``, ``variant_index`` and signature-stamped fields are
clean by construction.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import LintContext
from repro.lint.findings import ERROR, Finding
from repro.lint.source import SourceFile
from repro.lint.taint import analyze_function

CHECKER_ID = "oblivious-timing"

#: Classes whose (transitive, name-matched) subclasses are in scope.
_SDO_BASES = frozenset({"DOVariant", "SdoOperation"})


def _base_names(node: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in node.bases:
        target = base
        if isinstance(target, ast.Subscript):  # DOVariant[int, int]
            target = target.value
        if isinstance(target, ast.Attribute):
            names.add(target.attr)
        elif isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _scope_functions(
    source: SourceFile,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str]]:
    """Yield ``(function, qualified name)`` for every in-scope function."""
    seen: set[int] = set()
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ClassDef):
            in_scope = node.name in _SDO_BASES or (_base_names(node) & _SDO_BASES)
            if not in_scope:
                continue
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if id(item) not in seen:
                        seen.add(id(item))
                        yield item, f"{node.name}.{item.name}"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if "oblivious" in node.name and id(node) not in seen:
                seen.add(id(node))
                yield node, node.name


def run(ctx: LintContext) -> Iterator[Finding]:
    for source in ctx.files:
        for func, qualname in _scope_functions(source):
            for hit in analyze_function(func):
                if hit.reason == "control":
                    message = (
                        f"in {qualname}: resource/timing sink {hit.sink} "
                        "executes under operand-dependent control flow "
                        "(Definition 2: DO code may branch on the "
                        "prediction, never on architectural data)"
                    )
                else:
                    message = (
                        f"in {qualname}: timing sink {hit.sink} receives "
                        "operand-derived data (flows from architectural "
                        "values rather than the prediction or a declared "
                        "ResourceSignature)"
                    )
                yield Finding(
                    path=source.rel,
                    line=hit.line,
                    checker=CHECKER_ID,
                    message=message,
                    severity=ERROR,
                )
