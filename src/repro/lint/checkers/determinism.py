"""``determinism``: the simulation core must be a pure function of its
inputs.

Cache keys assume a :class:`RunRequest` fully determines the metrics, and
the golden-stats fixture assumes bit-identical reruns.  Anything feeding
:class:`RunMetrics` or the cache key therefore must not consult ambient
state.  Flagged inside the simulation core:

* calls into the **global** ``random`` module (``random.random()``,
  ``random.shuffle`` …) — an unseeded process-wide RNG.  Constructing a
  seeded ``random.Random(seed)`` instance is fine;
* **wall-clock reads** — ``time.time`` / ``perf_counter`` / ``monotonic``
  / ``time_ns`` / ``datetime.now`` / ``utcnow``;
* **unordered iteration**: ``for … in <set literal / set(...) call>`` and
  ``random.shuffle`` — set iteration order varies across processes (hash
  randomization), so any stat or timing derived from it is
  irreproducible.  Wrap in ``sorted(...)`` instead.

Host-side modules (the sweep engine, event observers, the profiler, eval
and analysis tooling) legitimately read wall clocks and are allowlisted
wholesale — see :data:`ALLOWLISTED_PREFIXES`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import LintContext
from repro.lint.findings import ERROR, Finding

CHECKER_ID = "determinism"

#: Modules that must be deterministic: everything the simulated timing and
#: stats flow through, plus the request/cache-key surface.
SIM_CORE_PREFIXES = (
    "src/repro/pipeline/",
    "src/repro/memory/",
    "src/repro/core/",
    "src/repro/stt/",
    "src/repro/frontend/",
    "src/repro/isa/",
    "src/repro/workloads/",
    "src/repro/common/",
    "src/repro/security/",
)
SIM_CORE_FILES = (
    "src/repro/sim/api.py",
    "src/repro/sim/cache.py",
    "src/repro/sim/configs.py",
)

#: Host-side timing is fine: engine/event/profiler wall clocks never feed
#: simulated state.  (Documented in DESIGN.md §8.3.)
ALLOWLISTED_PREFIXES = (
    "src/repro/sim/engine.py",
    "src/repro/sim/events.py",
    "src/repro/analysis/",
    "src/repro/eval/",
    "src/repro/testing/",
    "src/repro/lint/",
)

_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "process_time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
}


def _in_scope(rel: str) -> bool:
    if rel.startswith(ALLOWLISTED_PREFIXES):
        return False
    return rel.startswith(SIM_CORE_PREFIXES) or rel in SIM_CORE_FILES


def _dotted(node: ast.expr) -> tuple[str, str] | None:
    """``module.attr`` call target as a pair, if that simple shape."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return node.value.id, node.attr
    return None


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def run(ctx: LintContext) -> Iterator[Finding]:
    for source in ctx.files:
        if not _in_scope(source.rel):
            continue
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                target = _dotted(node.func)
                if target is None:
                    continue
                module, attr = target
                if module == "random":
                    if attr == "Random" and node.args:
                        continue  # seeded instance: deterministic
                    yield Finding(
                        path=source.rel,
                        line=node.lineno,
                        checker=CHECKER_ID,
                        message=(
                            f"random.{attr}() uses the unseeded global RNG "
                            "inside the simulation core — construct a "
                            "random.Random(seed) from the request instead"
                        ),
                        severity=ERROR,
                    )
                elif target in _CLOCK_CALLS:
                    yield Finding(
                        path=source.rel,
                        line=node.lineno,
                        checker=CHECKER_ID,
                        message=(
                            f"{module}.{attr}() reads the wall clock inside "
                            "the simulation core — results would differ "
                            "across hosts and break result caching"
                        ),
                        severity=ERROR,
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter):
                    yield Finding(
                        path=source.rel,
                        line=node.lineno,
                        checker=CHECKER_ID,
                        message=(
                            "iterating a set in the simulation core — "
                            "iteration order is hash-randomized across "
                            "processes; wrap in sorted(...)"
                        ),
                        severity=ERROR,
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if _is_set_expr(generator.iter):
                        yield Finding(
                            path=source.rel,
                            line=node.lineno,
                            checker=CHECKER_ID,
                            message=(
                                "comprehension over a set in the simulation "
                                "core — iteration order is hash-randomized "
                                "across processes; wrap in sorted(...)"
                            ),
                            severity=ERROR,
                        )
