"""``event-schema``: the run-lifecycle event stream must stay closed.

The sweep engine narrates runs through ``RunEvent`` records whose ``kind``
and ``failure_kind`` fields are stringly-typed.  Consumers — the progress
line, JSONL round-trip, retry policies — pattern-match those strings, so a
kind emitted under a name nobody declared (or a declared kind nobody
emits) is a silent protocol fork.  Invariants enforced:

* every ``self._emit(<kind>, …)`` in the engine names a declared event
  kind constant from ``repro.sim.events``;
* ``TERMINAL_EVENTS`` only contains declared kinds, and
  ``ProgressLine._TAGS`` has exactly the terminal kinds as keys (a
  terminal event without a tag crashes the progress line with KeyError);
* every declared kind is emitted somewhere (warning otherwise — dead
  vocabulary);
* ``FAILURE_KINDS`` matches the set of ``FAILURE_*`` constants,
  ``TRANSIENT_FAILURE_KINDS`` is a subset, and every literal
  ``failure_kind=``/``kind=`` the engine attaches resolves to a member.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import LintContext
from repro.lint.findings import ERROR, WARNING, Finding
from repro.lint.source import SourceFile

CHECKER_ID = "event-schema"

EVENTS_MODULE = "src/repro/sim/events.py"
ENGINE_MODULE = "src/repro/sim/engine.py"
API_MODULE = "src/repro/sim/api.py"


def _module_string_constants(source: SourceFile) -> dict[str, str]:
    """ALL-CAPS module-level ``NAME = "literal"`` assignments."""
    out: dict[str, str] = {}
    for node in source.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id.isupper()
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            out[node.targets[0].id] = node.value.value
    return out


def _resolve_string_set(node: ast.expr, constants: dict[str, str]) -> tuple[set[str], bool]:
    """Resolve a frozenset/set display of names and literals.

    Returns ``(values, fully_resolved)``.
    """
    if isinstance(node, ast.Call):
        name = node.func.id if isinstance(node.func, ast.Name) else None
        if name in ("frozenset", "set") and len(node.args) == 1:
            return _resolve_string_set(node.args[0], constants)
        return set(), False
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        values: set[str] = set()
        resolved = True
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                values.add(element.value)
            elif isinstance(element, ast.Name) and element.id in constants:
                values.add(constants[element.id])
            else:
                resolved = False
        return values, resolved
    if isinstance(node, ast.BinOp):  # e.g. A | B set union
        left, lok = _resolve_string_set(node.left, constants)
        right, rok = _resolve_string_set(node.right, constants)
        return left | right, lok and rok
    return set(), False


def _find_assignment(source: SourceFile, name: str) -> ast.Assign | None:
    for node in source.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == name
        ):
            return node
    return None


def run(ctx: LintContext) -> Iterator[Finding]:
    events = ctx.file(EVENTS_MODULE)
    engine = ctx.file(ENGINE_MODULE)
    api = ctx.file(API_MODULE)
    if events is None or engine is None or api is None:
        return  # partial checkout; nothing meaningful to assert

    kind_constants = _module_string_constants(events)
    # The kind vocabulary: every ALL-CAPS string constant except the set
    # containers — TERMINAL_EVENTS is handled separately below.
    kinds_by_name = {
        name: value
        for name, value in kind_constants.items()
        if name not in ("TERMINAL_EVENTS",)
    }
    declared_kinds = set(kinds_by_name.values())

    terminal_node = _find_assignment(events, "TERMINAL_EVENTS")
    terminal: set[str] = set()
    if terminal_node is not None:
        terminal, resolved = _resolve_string_set(terminal_node.value, kind_constants)
        if resolved:
            for value in sorted(terminal - declared_kinds):
                yield Finding(
                    path=EVENTS_MODULE,
                    line=terminal_node.lineno,
                    checker=CHECKER_ID,
                    message=(
                        f"TERMINAL_EVENTS contains {value!r}, which is not a "
                        "declared event kind constant"
                    ),
                    severity=ERROR,
                )

    # ProgressLine._TAGS keys must be exactly the terminal kinds.
    for node in ast.walk(events.tree):
        if not isinstance(node, ast.ClassDef) or node.name != "ProgressLine":
            continue
        for item in node.body:
            if not (
                isinstance(item, ast.Assign)
                and len(item.targets) == 1
                and isinstance(item.targets[0], ast.Name)
                and item.targets[0].id == "_TAGS"
                and isinstance(item.value, ast.Dict)
            ):
                continue
            tag_keys: set[str] = set()
            for key in item.value.keys:
                if isinstance(key, ast.Name) and key.id in kind_constants:
                    tag_keys.add(kind_constants[key.id])
                elif isinstance(key, ast.Constant) and isinstance(key.value, str):
                    tag_keys.add(key.value)
            for missing in sorted(terminal - tag_keys):
                yield Finding(
                    path=EVENTS_MODULE,
                    line=item.lineno,
                    checker=CHECKER_ID,
                    message=(
                        f"terminal event {missing!r} has no ProgressLine._TAGS "
                        "entry — the progress line would crash with KeyError "
                        "on the first such event"
                    ),
                    severity=ERROR,
                )
            for extra in sorted(tag_keys - terminal):
                yield Finding(
                    path=EVENTS_MODULE,
                    line=item.lineno,
                    checker=CHECKER_ID,
                    message=(
                        f"ProgressLine._TAGS tags {extra!r}, which is not a "
                        "terminal event — it can never be rendered"
                    ),
                    severity=ERROR,
                )

    # Failure taxonomy from api.py.
    failure_constants = {
        name: value
        for name, value in _module_string_constants(api).items()
        if name.startswith("FAILURE_")
    }
    failure_kinds: set[str] = set()
    kinds_node = _find_assignment(api, "FAILURE_KINDS")
    if kinds_node is not None:
        failure_kinds, resolved = _resolve_string_set(kinds_node.value, failure_constants)
        if resolved:
            for name, value in sorted(failure_constants.items()):
                if value not in failure_kinds:
                    yield Finding(
                        path=API_MODULE,
                        line=kinds_node.lineno,
                        checker=CHECKER_ID,
                        message=(
                            f"{name} = {value!r} is declared but missing from "
                            "FAILURE_KINDS — retry policies and event readers "
                            "would treat it as unknown"
                        ),
                        severity=ERROR,
                    )
    transient_node = _find_assignment(api, "TRANSIENT_FAILURE_KINDS")
    if transient_node is not None and failure_kinds:
        transient, resolved = _resolve_string_set(transient_node.value, failure_constants)
        if resolved:
            for value in sorted(transient - failure_kinds):
                yield Finding(
                    path=API_MODULE,
                    line=transient_node.lineno,
                    checker=CHECKER_ID,
                    message=(
                        f"TRANSIENT_FAILURE_KINDS contains {value!r}, which is "
                        "not in FAILURE_KINDS"
                    ),
                    severity=ERROR,
                )

    # Engine emissions: first _emit arg must name a declared kind; literal
    # failure_kind keywords must be taxonomy members.
    engine_constants = dict(kinds_by_name)
    engine_constants.update(failure_constants)
    emitted: set[str] = set()
    for node in ast.walk(engine.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "_emit" and node.args:
            kind_arg = node.args[0]
            if isinstance(kind_arg, ast.Name) and kind_arg.id in kinds_by_name:
                emitted.add(kinds_by_name[kind_arg.id])
            elif isinstance(kind_arg, ast.Constant) and isinstance(kind_arg.value, str):
                if kind_arg.value in declared_kinds:
                    emitted.add(kind_arg.value)
                else:
                    yield Finding(
                        path=ENGINE_MODULE,
                        line=node.lineno,
                        checker=CHECKER_ID,
                        message=(
                            f"_emit() called with undeclared event kind "
                            f"{kind_arg.value!r} — declare a constant in "
                            "repro.sim.events so consumers can match it"
                        ),
                        severity=ERROR,
                    )
            elif isinstance(kind_arg, ast.Name):
                yield Finding(
                    path=ENGINE_MODULE,
                    line=node.lineno,
                    checker=CHECKER_ID,
                    message=(
                        f"_emit() kind {ast.unparse(kind_arg)!r} does not "
                        "resolve to a declared event kind constant"
                    ),
                    severity=ERROR,
                )
        for keyword in node.keywords:
            if keyword.arg != "failure_kind" or not failure_kinds:
                continue
            value = keyword.value
            literal: str | None = None
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                literal = value.value
            elif isinstance(value, ast.Name) and value.id in failure_constants:
                literal = failure_constants[value.id]
            if literal is not None and literal not in failure_kinds:
                yield Finding(
                    path=ENGINE_MODULE,
                    line=node.lineno,
                    checker=CHECKER_ID,
                    message=(
                        f"failure_kind={literal!r} is not a FAILURE_KINDS "
                        "member — RunFailure consumers cannot classify it"
                    ),
                    severity=ERROR,
                )

    for name, value in sorted(kinds_by_name.items()):
        if value not in emitted:
            yield Finding(
                path=EVENTS_MODULE,
                line=0,
                checker=CHECKER_ID,
                message=(
                    f"event kind {name} = {value!r} is declared but the sweep "
                    "engine never emits it — dead vocabulary or a missed "
                    "emission site"
                ),
                severity=WARNING,
            )
