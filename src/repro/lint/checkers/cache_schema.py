"""``cache-schema``: result-cache keys must not drift silently.

:func:`repro.sim.cache.cache_key` hashes a :class:`RunRequest` into a
content address, and ``SCHEMA_VERSION`` is the only thing standing between
an edited dataclass and *stale cache entries served as fresh results*:
adding a timing-relevant config field changes simulated behaviour but — if
the field has a default — old requests hash differently only when callers
set it, so results cached before the change can shadow new semantics.

This checker pins the serialized surface in a committed fingerprint
(``src/repro/lint/data/cache_schema.json``): the ``SCHEMA_VERSION`` value,
the ``cache_key`` material keys, and the compare-relevant field list of
every dataclass reachable from the key (mirroring ``_canonical``, which
skips ``compare=False`` fields).  Any drift without a version bump is an
error; after a legitimate bump the fingerprint is refreshed with
``repro lint --update-fingerprints``.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Iterator

from repro.lint.context import LintContext
from repro.lint.findings import ERROR, Finding

CHECKER_ID = "cache-schema"

FINGERPRINT_FILE = "src/repro/lint/data/cache_schema.json"
CACHE_MODULE = "src/repro/sim/cache.py"

#: Dataclasses whose serialized field set feeds the cache key (directly as
#: ``cache_key`` material or transitively through ``_canonical``), plus
#: ``RunMetrics`` — its serialization is what the cache *stores*, and the
#: ``SCHEMA_VERSION`` docstring explicitly covers it.  ``None`` = every
#: dataclass in the module.
FINGERPRINTED = {
    "src/repro/sim/api.py": {"RunRequest", "RunMetrics"},
    "src/repro/common/config.py": None,
    "src/repro/sim/configs.py": {"EvaluatedConfig"},
    "src/repro/isa/instructions.py": {"Instruction"},
    "src/repro/isa/program.py": {"Program"},
    "src/repro/workloads/workload.py": {"Workload"},
}


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
    return False


def _compare_excluded(value: ast.expr | None) -> bool:
    """Is this field declared with ``field(..., compare=False)``?"""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
    if name != "field":
        return False
    for keyword in value.keywords:
        if (
            keyword.arg == "compare"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is False
        ):
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> list[str]:
    fields: list[str] = []
    for item in node.body:
        if not isinstance(item, ast.AnnAssign) or not isinstance(item.target, ast.Name):
            continue
        annotation = item.annotation
        base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
        if isinstance(base, ast.Name) and base.id == "ClassVar":
            continue
        if _compare_excluded(item.value):
            continue
        fields.append(item.target.id)
    return fields


def compute_fingerprint(
    ctx: LintContext,
) -> tuple[dict[str, object], dict[str, int]]:
    """Return ``(fingerprint, locations)``.

    The fingerprint is the committed, line-free structure; ``locations``
    maps each fingerprinted unit to a current line number for findings.
    """
    fingerprint: dict[str, object] = {
        "schema_version": None,
        "cache_key_material": [],
        "dataclasses": {},
    }
    locations: dict[str, int] = {}

    cache = ctx.file(CACHE_MODULE)
    if cache is not None:
        for node in cache.tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "SCHEMA_VERSION"
                and isinstance(node.value, ast.Constant)
            ):
                fingerprint["schema_version"] = node.value.value
                locations["SCHEMA_VERSION"] = node.lineno
            elif isinstance(node, ast.FunctionDef) and node.name == "cache_key":
                locations["cache_key"] = node.lineno
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Dict):
                        keys = [
                            k.value
                            for k in sub.keys
                            if isinstance(k, ast.Constant) and isinstance(k.value, str)
                        ]
                        if "schema" in keys:
                            fingerprint["cache_key_material"] = sorted(keys)
                        break

    classes: dict[str, list[str]] = {}
    for rel, wanted in FINGERPRINTED.items():
        source = ctx.file(rel)
        if source is None:
            continue
        for node in source.tree.body:
            if not isinstance(node, ast.ClassDef) or not _is_dataclass(node):
                continue
            if wanted is not None and node.name not in wanted:
                continue
            unit = f"{rel}::{node.name}"
            classes[unit] = _dataclass_fields(node)
            locations[unit] = node.lineno
    fingerprint["dataclasses"] = dict(sorted(classes.items()))
    return fingerprint, locations


def write_fingerprint(ctx: LintContext) -> Path:
    """``repro lint --update-fingerprints``: refresh the committed pin."""
    fingerprint, _ = compute_fingerprint(ctx)
    path = ctx.root / FINGERPRINT_FILE
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "comment": (
            "Pinned cache-key schema surface; regenerate with "
            "`repro lint --update-fingerprints` AFTER bumping SCHEMA_VERSION "
            "in src/repro/sim/cache.py."
        ),
    }
    payload.update(fingerprint)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def run(ctx: LintContext) -> Iterator[Finding]:
    current, locations = compute_fingerprint(ctx)
    pin_path = ctx.root / FINGERPRINT_FILE
    if not pin_path.exists():
        yield Finding(
            path=FINGERPRINT_FILE,
            line=0,
            checker=CHECKER_ID,
            message=(
                "cache-schema fingerprint file is missing — generate it "
                "with `repro lint --update-fingerprints`"
            ),
            severity=ERROR,
        )
        return
    stored_payload = json.loads(pin_path.read_text())
    stored = {
        "schema_version": stored_payload.get("schema_version"),
        "cache_key_material": stored_payload.get("cache_key_material", []),
        "dataclasses": stored_payload.get("dataclasses", {}),
    }
    if current == stored:
        return

    if current["schema_version"] != stored["schema_version"]:
        yield Finding(
            path=CACHE_MODULE,
            line=locations.get("SCHEMA_VERSION", 0),
            checker=CHECKER_ID,
            message=(
                f"SCHEMA_VERSION is {current['schema_version']} but the "
                f"committed fingerprint pins {stored['schema_version']} — "
                "refresh it with `repro lint --update-fingerprints`"
            ),
            severity=ERROR,
        )
        return

    if current["cache_key_material"] != stored["cache_key_material"]:
        added = sorted(set(current["cache_key_material"]) - set(stored["cache_key_material"]))
        removed = sorted(set(stored["cache_key_material"]) - set(current["cache_key_material"]))
        yield Finding(
            path=CACHE_MODULE,
            line=locations.get("cache_key", 0),
            checker=CHECKER_ID,
            message=(
                "cache_key material changed without a SCHEMA_VERSION bump "
                f"(added {added!r}, removed {removed!r}) — old cache entries "
                "would collide with the new semantics; bump SCHEMA_VERSION "
                "then run `repro lint --update-fingerprints`"
            ),
            severity=ERROR,
        )

    stored_classes: dict[str, list[str]] = stored["dataclasses"]
    current_classes: dict[str, list[str]] = current["dataclasses"]
    for unit in sorted(set(stored_classes) | set(current_classes)):
        before = stored_classes.get(unit)
        after = current_classes.get(unit)
        if before == after:
            continue
        rel, _, name = unit.partition("::")
        if after is None:
            detail = "was removed (or is no longer a dataclass)"
        elif before is None:
            detail = "is newly fingerprinted"
        else:
            added = sorted(set(after) - set(before))
            removed = sorted(set(before) - set(after))
            parts = []
            if added:
                parts.append(f"added {added!r}")
            if removed:
                parts.append(f"removed {removed!r}")
            detail = "changed fields: " + ", ".join(parts) if parts else "reordered fields"
        yield Finding(
            path=rel if after is not None else FINGERPRINT_FILE,
            line=locations.get(unit, 0),
            checker=CHECKER_ID,
            message=(
                f"serialized field set of {name} {detail} without a "
                "SCHEMA_VERSION bump — cached results keyed on the old "
                "shape would be served for the new one; bump SCHEMA_VERSION "
                "in src/repro/sim/cache.py then run "
                "`repro lint --update-fingerprints`"
            ),
            severity=ERROR,
        )
