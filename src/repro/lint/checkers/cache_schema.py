"""``cache-schema``: result-cache keys must not drift silently.

:func:`repro.sim.cache.cache_key` hashes a :class:`RunRequest` into a
content address, and ``SCHEMA_VERSION`` is the only thing standing between
an edited dataclass and *stale cache entries served as fresh results*:
adding a timing-relevant config field changes simulated behaviour but — if
the field has a default — old requests hash differently only when callers
set it, so results cached before the change can shadow new semantics.

This checker pins the serialized surface in a committed fingerprint
(``src/repro/lint/data/cache_schema.json``): the ``SCHEMA_VERSION`` value,
the ``cache_key`` material keys, and the compare-relevant field list of
every dataclass reachable from the key (mirroring ``_canonical``, which
skips ``compare=False`` fields).  Any drift without a version bump is an
error; after a legitimate bump the fingerprint is refreshed with
``repro lint --update-fingerprints``.

The same fingerprint file carries a second, independently-versioned
section for the **fabric wire schema**: ``WIRE_SCHEMA_VERSION``
(``repro.fabric.wire``), ``EVENT_SCHEMA_VERSION`` (``repro.sim.events``),
and the field sets of every dataclass that crosses a fabric connection —
the Session policies, ``RunFailure``, ``RunEvent``, and ``RetryPolicy``.
The cache section protects *one host against its own history*; the wire
section protects *hosts against each other* — a renamed field here desyncs
a scheduler from its workers mid-release, so it too must not drift without
its version bump.

A third section pins the **trace schema** (``repro.replay.trace``):
``TRACE_SCHEMA_VERSION`` and the ``trace_key`` material keys.  Recorded
architectural traces are replayed as the golden reference of later runs, so
a binary-layout or key-material change that still parses old files would
silently validate new runs against stale recordings; like the other two
sections, drift here requires its own version bump (which relocates the
store's ``v<N>/`` directory, orphaning old traces) before the fingerprint
may be refreshed.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Iterator

from repro.lint.context import LintContext
from repro.lint.findings import ERROR, Finding

CHECKER_ID = "cache-schema"

FINGERPRINT_FILE = "src/repro/lint/data/cache_schema.json"
CACHE_MODULE = "src/repro/sim/cache.py"

#: Dataclasses whose serialized field set feeds the cache key (directly as
#: ``cache_key`` material or transitively through ``_canonical``), plus
#: ``RunMetrics`` — its serialization is what the cache *stores*, and the
#: ``SCHEMA_VERSION`` docstring explicitly covers it.  ``None`` = every
#: dataclass in the module.
FINGERPRINTED = {
    "src/repro/sim/api.py": {"RunRequest", "RunMetrics"},
    "src/repro/common/config.py": None,
    "src/repro/sim/configs.py": {"EvaluatedConfig"},
    "src/repro/isa/instructions.py": {"Instruction"},
    "src/repro/isa/program.py": {"Program"},
    "src/repro/workloads/workload.py": {"Workload"},
}

WIRE_MODULE = "src/repro/fabric/wire.py"
EVENTS_MODULE = "src/repro/sim/events.py"
TRACE_MODULE = "src/repro/replay/trace.py"

#: Dataclasses whose ``to_dict`` output crosses a fabric connection and is
#: therefore part of the wire contract between scheduler, workers, and
#: submitting sessions.  (``RunRequest``/``RunMetrics`` travel too, but
#: they are already pinned above — a change there trips both gates, which
#: is correct: it invalidates caches *and* desyncs peers.)
WIRE_FINGERPRINTED = {
    "src/repro/sim/policies.py": {"ExecutionPolicy", "CachePolicy", "JournalPolicy"},
    "src/repro/sim/api.py": {"RunFailure"},
    "src/repro/sim/events.py": {"RunEvent"},
    "src/repro/sim/engine.py": {"RetryPolicy"},
    "src/repro/fabric/transport.py": {"TransportPolicy"},
}


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
    return False


def _compare_excluded(value: ast.expr | None) -> bool:
    """Is this field declared with ``field(..., compare=False)``?"""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
    if name != "field":
        return False
    for keyword in value.keywords:
        if (
            keyword.arg == "compare"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is False
        ):
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> list[str]:
    fields: list[str] = []
    for item in node.body:
        if not isinstance(item, ast.AnnAssign) or not isinstance(item.target, ast.Name):
            continue
        annotation = item.annotation
        base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
        if isinstance(base, ast.Name) and base.id == "ClassVar":
            continue
        if _compare_excluded(item.value):
            continue
        fields.append(item.target.id)
    return fields


def _int_constant(ctx: LintContext, rel: str, name: str, locations: dict[str, int]) -> int | None:
    """Module-level ``NAME = <int literal>``; records its line under
    ``name`` in ``locations``."""
    source = ctx.file(rel)
    if source is None:
        return None
    for node in source.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == name
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, int)
        ):
            locations[name] = node.lineno
            return node.value.value
    return None


def _fingerprint_dataclasses(
    ctx: LintContext,
    wanted_by_file: dict[str, set[str] | None],
    locations: dict[str, int],
) -> dict[str, list[str]]:
    classes: dict[str, list[str]] = {}
    for rel, wanted in wanted_by_file.items():
        source = ctx.file(rel)
        if source is None:
            continue
        for node in source.tree.body:
            if not isinstance(node, ast.ClassDef) or not _is_dataclass(node):
                continue
            if wanted is not None and node.name not in wanted:
                continue
            unit = f"{rel}::{node.name}"
            classes[unit] = _dataclass_fields(node)
            locations[unit] = node.lineno
    return dict(sorted(classes.items()))


def compute_fingerprint(
    ctx: LintContext,
) -> tuple[dict[str, object], dict[str, int]]:
    """Return ``(fingerprint, locations)``.

    The fingerprint is the committed, line-free structure; ``locations``
    maps each fingerprinted unit to a current line number for findings.
    """
    fingerprint: dict[str, object] = {
        "schema_version": None,
        "cache_key_material": [],
        "dataclasses": {},
        "wire": {},
        "trace": {},
    }
    locations: dict[str, int] = {}

    cache = ctx.file(CACHE_MODULE)
    if cache is not None:
        for node in cache.tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "SCHEMA_VERSION"
                and isinstance(node.value, ast.Constant)
            ):
                fingerprint["schema_version"] = node.value.value
                locations["SCHEMA_VERSION"] = node.lineno
            elif isinstance(node, ast.FunctionDef) and node.name == "cache_key":
                locations["cache_key"] = node.lineno
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Dict):
                        keys = [
                            k.value
                            for k in sub.keys
                            if isinstance(k, ast.Constant) and isinstance(k.value, str)
                        ]
                        if "schema" in keys:
                            fingerprint["cache_key_material"] = sorted(keys)
                        break

    fingerprint["dataclasses"] = _fingerprint_dataclasses(ctx, FINGERPRINTED, locations)
    fingerprint["wire"] = {
        "wire_schema_version": _int_constant(ctx, WIRE_MODULE, "WIRE_SCHEMA_VERSION", locations),
        "event_schema_version": _int_constant(
            ctx, EVENTS_MODULE, "EVENT_SCHEMA_VERSION", locations
        ),
        "dataclasses": _fingerprint_dataclasses(ctx, WIRE_FINGERPRINTED, locations),
    }
    fingerprint["trace"] = {
        "trace_schema_version": _int_constant(ctx, TRACE_MODULE, "TRACE_SCHEMA_VERSION", locations),
        "trace_key_material": _trace_key_material(ctx, locations),
    }
    return fingerprint, locations


def _trace_key_material(ctx: LintContext, locations: dict[str, int]) -> list[str]:
    """The string keys of the material dict inside ``trace_key`` — the
    architectural inputs a recorded trace is addressed by."""
    source = ctx.file(TRACE_MODULE)
    if source is None:
        return []
    for node in source.tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == "trace_key":
            locations["trace_key"] = node.lineno
            for sub in ast.walk(node):
                if isinstance(sub, ast.Dict):
                    keys = [
                        k.value
                        for k in sub.keys
                        if isinstance(k, ast.Constant) and isinstance(k.value, str)
                    ]
                    if "schema" in keys:
                        return sorted(keys)
    return []


def write_fingerprint(ctx: LintContext) -> Path:
    """``repro lint --update-fingerprints``: refresh the committed pin."""
    fingerprint, _ = compute_fingerprint(ctx)
    path = ctx.root / FINGERPRINT_FILE
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "comment": (
            "Pinned cache-key, fabric wire, and trace schema surfaces; "
            "regenerate with `repro lint --update-fingerprints` AFTER "
            "bumping SCHEMA_VERSION in src/repro/sim/cache.py (cache "
            "section), WIRE_SCHEMA_VERSION in src/repro/fabric/wire.py "
            "(wire section), or TRACE_SCHEMA_VERSION in "
            "src/repro/replay/trace.py (trace section)."
        ),
    }
    payload.update(fingerprint)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def run(ctx: LintContext) -> Iterator[Finding]:
    current, locations = compute_fingerprint(ctx)
    pin_path = ctx.root / FINGERPRINT_FILE
    if not pin_path.exists():
        yield Finding(
            path=FINGERPRINT_FILE,
            line=0,
            checker=CHECKER_ID,
            message=(
                "cache-schema fingerprint file is missing — generate it "
                "with `repro lint --update-fingerprints`"
            ),
            severity=ERROR,
        )
        return
    stored_payload = json.loads(pin_path.read_text())
    stored = {
        "schema_version": stored_payload.get("schema_version"),
        "cache_key_material": stored_payload.get("cache_key_material", []),
        "dataclasses": stored_payload.get("dataclasses", {}),
        "wire": stored_payload.get("wire", {}),
        "trace": stored_payload.get("trace", {}),
    }
    if current == stored:
        return

    yield from _check_wire(current["wire"], stored["wire"], locations)
    yield from _check_trace(current["trace"], stored["trace"], locations)

    if current["schema_version"] != stored["schema_version"]:
        yield Finding(
            path=CACHE_MODULE,
            line=locations.get("SCHEMA_VERSION", 0),
            checker=CHECKER_ID,
            message=(
                f"SCHEMA_VERSION is {current['schema_version']} but the "
                f"committed fingerprint pins {stored['schema_version']} — "
                "refresh it with `repro lint --update-fingerprints`"
            ),
            severity=ERROR,
        )
        return

    if current["cache_key_material"] != stored["cache_key_material"]:
        added = sorted(set(current["cache_key_material"]) - set(stored["cache_key_material"]))
        removed = sorted(set(stored["cache_key_material"]) - set(current["cache_key_material"]))
        yield Finding(
            path=CACHE_MODULE,
            line=locations.get("cache_key", 0),
            checker=CHECKER_ID,
            message=(
                "cache_key material changed without a SCHEMA_VERSION bump "
                f"(added {added!r}, removed {removed!r}) — old cache entries "
                "would collide with the new semantics; bump SCHEMA_VERSION "
                "then run `repro lint --update-fingerprints`"
            ),
            severity=ERROR,
        )

    stored_classes: dict[str, list[str]] = stored["dataclasses"]
    current_classes: dict[str, list[str]] = current["dataclasses"]
    for unit in sorted(set(stored_classes) | set(current_classes)):
        before = stored_classes.get(unit)
        after = current_classes.get(unit)
        if before == after:
            continue
        rel, _, name = unit.partition("::")
        if after is None:
            detail = "was removed (or is no longer a dataclass)"
        elif before is None:
            detail = "is newly fingerprinted"
        else:
            added = sorted(set(after) - set(before))
            removed = sorted(set(before) - set(after))
            parts = []
            if added:
                parts.append(f"added {added!r}")
            if removed:
                parts.append(f"removed {removed!r}")
            detail = "changed fields: " + ", ".join(parts) if parts else "reordered fields"
        yield Finding(
            path=rel if after is not None else FINGERPRINT_FILE,
            line=locations.get(unit, 0),
            checker=CHECKER_ID,
            message=(
                f"serialized field set of {name} {detail} without a "
                "SCHEMA_VERSION bump — cached results keyed on the old "
                "shape would be served for the new one; bump SCHEMA_VERSION "
                "in src/repro/sim/cache.py then run "
                "`repro lint --update-fingerprints`"
            ),
            severity=ERROR,
        )


def _check_wire(current: dict, stored: dict, locations: dict[str, int]) -> Iterator[Finding]:
    """Wire-section comparison: versions may move (refresh the pin), field
    sets may not move *without* the matching version bump."""
    if current == stored:
        return
    if not stored:
        yield Finding(
            path=FINGERPRINT_FILE,
            line=0,
            checker=CHECKER_ID,
            message=(
                "fingerprint file has no wire-schema section — regenerate "
                "it with `repro lint --update-fingerprints`"
            ),
            severity=ERROR,
        )
        return

    for field_name, rel, constant in (
        ("wire_schema_version", WIRE_MODULE, "WIRE_SCHEMA_VERSION"),
        ("event_schema_version", EVENTS_MODULE, "EVENT_SCHEMA_VERSION"),
    ):
        if current.get(field_name) != stored.get(field_name):
            yield Finding(
                path=rel,
                line=locations.get(constant, 0),
                checker=CHECKER_ID,
                message=(
                    f"{constant} is {current.get(field_name)} but the "
                    f"committed fingerprint pins {stored.get(field_name)} — "
                    "refresh it with `repro lint --update-fingerprints`"
                ),
                severity=ERROR,
            )
            return  # a bump legitimizes the field drift below

    stored_classes: dict[str, list[str]] = stored.get("dataclasses", {})
    current_classes: dict[str, list[str]] = current.get("dataclasses", {})
    for unit in sorted(set(stored_classes) | set(current_classes)):
        before = stored_classes.get(unit)
        after = current_classes.get(unit)
        if before == after:
            continue
        rel, _, name = unit.partition("::")
        if after is None:
            detail = "was removed (or is no longer a dataclass)"
        elif before is None:
            detail = "is newly on the wire"
        else:
            added = sorted(set(after) - set(before))
            removed = sorted(set(before) - set(after))
            parts = []
            if added:
                parts.append(f"added {added!r}")
            if removed:
                parts.append(f"removed {removed!r}")
            detail = "changed fields: " + ", ".join(parts) if parts else "reordered fields"
        yield Finding(
            path=rel if after is not None else FINGERPRINT_FILE,
            line=locations.get(unit, 0),
            checker=CHECKER_ID,
            message=(
                f"wire-serialized field set of {name} {detail} without a "
                "WIRE_SCHEMA_VERSION bump — a scheduler and its workers one "
                "release apart would desync; bump WIRE_SCHEMA_VERSION in "
                "src/repro/fabric/wire.py then run "
                "`repro lint --update-fingerprints`"
            ),
            severity=ERROR,
        )


def _check_trace(current: dict, stored: dict, locations: dict[str, int]) -> Iterator[Finding]:
    """Trace-section comparison: the version may move (refresh the pin); the
    key material may not move *without* the version bump that orphans old
    recordings."""
    if current == stored:
        return
    if not stored:
        yield Finding(
            path=FINGERPRINT_FILE,
            line=0,
            checker=CHECKER_ID,
            message=(
                "fingerprint file has no trace-schema section — regenerate "
                "it with `repro lint --update-fingerprints`"
            ),
            severity=ERROR,
        )
        return

    if current.get("trace_schema_version") != stored.get("trace_schema_version"):
        yield Finding(
            path=TRACE_MODULE,
            line=locations.get("TRACE_SCHEMA_VERSION", 0),
            checker=CHECKER_ID,
            message=(
                f"TRACE_SCHEMA_VERSION is {current.get('trace_schema_version')} "
                "but the committed fingerprint pins "
                f"{stored.get('trace_schema_version')} — refresh it with "
                "`repro lint --update-fingerprints`"
            ),
            severity=ERROR,
        )
        return  # the bump legitimizes the material drift below

    if current.get("trace_key_material") != stored.get("trace_key_material"):
        added = sorted(
            set(current.get("trace_key_material", []))
            - set(stored.get("trace_key_material", []))
        )
        removed = sorted(
            set(stored.get("trace_key_material", []))
            - set(current.get("trace_key_material", []))
        )
        yield Finding(
            path=TRACE_MODULE,
            line=locations.get("trace_key", 0),
            checker=CHECKER_ID,
            message=(
                "trace_key material changed without a TRACE_SCHEMA_VERSION "
                f"bump (added {added!r}, removed {removed!r}) — replayed runs "
                "could validate against recordings of a different "
                "architectural input; bump TRACE_SCHEMA_VERSION in "
                "src/repro/replay/trace.py then run "
                "`repro lint --update-fingerprints`"
            ),
            severity=ERROR,
        )
