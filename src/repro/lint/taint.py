"""Intra-function taint lattice for the ``oblivious-timing`` checker.

The lattice has two points — *clean* / *tainted* — and the analysis is a
monotone forward pass over one function body, iterated to fixpoint (loops
can feed taint backwards through the environment).  "Tainted" means *derived
from architectural operand data*: the load address, the operands ``args`` of
a DO variant, a forwarded ``presult``, the sealed ``success`` flag, or
anything returned by the non-oblivious reference path.  The prediction
(``predicted_level``, ``pc``, predictor output) is deliberately **clean** —
mobilizing safe prediction is the whole point of SDO, so timing *may* depend
on it.

Sinks are the expressions that decide hardware resource usage: ``latency=``
/ ``resources=`` / ``complete_at=`` / ``respond_at=`` keyword arguments,
every argument of a port/bank/MSHR reservation (``grant`` / ``reserve`` /
``reserve_all`` / ``allocate``), and ``ResourceSignature(...)``
construction.  A sink reached by tainted data — or executed under tainted
control — is a Definition-2 violation (operand-dependent interference).

Precision notes (deliberate, documented in DESIGN.md §8.1):

* **Clean projections**: reading ``.latency`` / ``.resources`` /
  ``.signature`` (and other fields listed in :data:`CLEAN_PROJECTIONS`) off
  a tainted object yields *clean*.  This encodes the repo invariant that
  ``DOVariant.execute`` stamps the declared signature onto every result, so
  those fields are operand-independent by construction even when the object
  carrying them is not.
* **Containers**: mutating method calls (``list.append`` etc.) do not taint
  the receiver.  ``responses.append((level, t, hit))`` with a tainted
  ``hit`` therefore leaves ``responses[-1][1]`` clean — the cycle component
  genuinely is.
* **Control taint** covers the body of an ``if``/``while``/``for`` whose
  test (or iterable) is tainted, not code after an early ``return`` inside
  one; that residual implicit flow is out of scope for an intra-function
  lattice.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

#: Attribute reads that are taint sources regardless of their base object.
SOURCE_ATTRS = frozenset({"presult", "_success_sealed", "value"})

#: Method names whose call result is always tainted (the architectural /
#: reference path of an SDO operation).
SOURCE_CALLS = frozenset({"reference", "_actual_variant", "_compute"})

#: Attribute projections that launder taint: operand-independent by
#: construction (signature-stamped fields and prediction metadata).
CLEAN_PROJECTIONS = frozenset(
    {
        "latency",
        "resources",
        "signature",
        "name",
        "variant_index",
        "predicted_level",
    }
)

#: Methods whose *arguments* decide resource interference.
SINK_METHODS = frozenset({"grant", "reserve", "reserve_all", "allocate"})

#: Keyword arguments that carry timing/resource decisions in any call.
SINK_KEYWORDS = frozenset({"latency", "resources", "complete_at", "respond_at"})

#: Constructors whose every argument is a resource declaration.
SINK_CONSTRUCTORS = frozenset({"ResourceSignature"})


@dataclass(frozen=True)
class TaintHit:
    """One sink reached by tainted data (or tainted control)."""

    line: int
    sink: str  # human description of the sink
    reason: str  # "data" or "control"


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class FunctionTaint:
    """Run the lattice over one function; collect :class:`TaintHit`\\ s."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef,
                 tainted_params: frozenset[str]) -> None:
        self.func = func
        self.env: dict[str, bool] = {}
        for arg in (
            list(func.args.posonlyargs)
            + list(func.args.args)
            + list(func.args.kwonlyargs)
        ):
            self.env[arg.arg] = arg.arg in tainted_params
        if func.args.vararg:
            self.env[func.args.vararg.arg] = func.args.vararg.arg in tainted_params
        if func.args.kwarg:
            self.env[func.args.kwarg.arg] = func.args.kwarg.arg in tainted_params
        self.hits: list[TaintHit] = []
        self._reported: set[tuple[int, str]] = set()

    # ------------------------------------------------------------------ #
    # Expression taint
    # ------------------------------------------------------------------ #

    def taint_of(self, node: ast.expr | None) -> bool:
        if node is None or isinstance(node, ast.Constant):
            return False
        if isinstance(node, ast.Name):
            return self.env.get(node.id, False)
        if isinstance(node, ast.Attribute):
            if node.attr in SOURCE_ATTRS:
                return True
            if node.attr == "success":
                # `.success` is the sealed outcome — a source, unlike the
                # clean `first_success_cycle` style accessors.
                return True
            if node.attr in CLEAN_PROJECTIONS:
                return False
            key = f"self.{node.attr}"
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                if key in self.env:
                    return self.env[key]
            return self.taint_of(node.value)
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            if name in SOURCE_CALLS:
                return True
            parts = [self.taint_of(a) for a in node.args]
            parts += [self.taint_of(k.value) for k in node.keywords]
            if isinstance(node.func, ast.Attribute):
                parts.append(self.taint_of(node.func.value))
            return any(parts)
        if isinstance(node, ast.Subscript):
            return self.taint_of(node.value) or self.taint_of(node.slice)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self.taint_of(e) for e in node.elts)
        if isinstance(node, ast.Dict):
            # A None key is a ``{**mapping}`` unpack; the value still counts.
            return any(
                (k is not None and self.taint_of(k)) or self.taint_of(v)
                for k, v in zip(node.keys, node.values, strict=True)
            )
        if isinstance(node, ast.IfExp):
            return (
                self.taint_of(node.test)
                or self.taint_of(node.body)
                or self.taint_of(node.orelse)
            )
        if isinstance(node, ast.Lambda):
            return False
        # BinOp / BoolOp / Compare / UnaryOp / Starred / JoinedStr /
        # comprehensions / anything else: join over child expressions.
        return any(
            self.taint_of(child)
            for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)
        )

    # ------------------------------------------------------------------ #
    # Statement pass
    # ------------------------------------------------------------------ #

    def run(self) -> list[TaintHit]:
        for _ in range(8):  # fixpoint: env only grows, so this terminates
            before = dict(self.env)
            self._block(self.func.body, control=False)
            if self.env == before:
                break
        return self.hits

    def _bind(self, target: ast.expr, tainted: bool) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = self.env.get(target.id, False) or tainted
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, tainted)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, tainted)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            key = f"self.{target.attr}"
            self.env[key] = self.env.get(key, False) or tainted

    def _block(self, body: list[ast.stmt], control: bool) -> None:
        for stmt in body:
            self._stmt(stmt, control)

    def _stmt(self, stmt: ast.stmt, control: bool) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value_taint = self.taint_of(stmt.value) or control
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            if (
                isinstance(stmt, ast.Assign)
                and len(targets) == 1
                and isinstance(targets[0], (ast.Tuple, ast.List))
                and isinstance(stmt.value, (ast.Tuple, ast.List))
                and len(targets[0].elts) == len(stmt.value.elts)
            ):
                for element, value in zip(targets[0].elts, stmt.value.elts, strict=True):
                    self._bind(element, self.taint_of(value) or control)
            else:
                for target in targets:
                    self._bind(target, value_taint)
            self._scan_sinks(stmt, control)
        elif isinstance(stmt, (ast.If,)):
            test_taint = self.taint_of(stmt.test)
            self._scan_sinks_expr(stmt.test, control)
            inner = control or test_taint
            self._block(stmt.body, inner)
            self._block(stmt.orelse, inner)
        elif isinstance(stmt, ast.While):
            test_taint = self.taint_of(stmt.test)
            self._scan_sinks_expr(stmt.test, control)
            inner = control or test_taint
            self._block(stmt.body, inner)
            self._block(stmt.orelse, inner)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_taint = self.taint_of(stmt.iter)
            self._scan_sinks_expr(stmt.iter, control)
            self._bind(stmt.target, iter_taint or control)
            inner = control or iter_taint
            self._block(stmt.body, inner)
            self._block(stmt.orelse, inner)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body, control)
            for handler in stmt.handlers:
                self._block(handler.body, control)
            self._block(stmt.orelse, control)
            self._block(stmt.finalbody, control)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_sinks_expr(item.context_expr, control)
                if item.optional_vars is not None:
                    self._bind(
                        item.optional_vars,
                        self.taint_of(item.context_expr) or control,
                    )
            self._block(stmt.body, control)
        elif isinstance(stmt, (ast.Return, ast.Expr, ast.Raise, ast.Assert)):
            self._scan_sinks(stmt, control)
        # FunctionDef / ClassDef nested inside are analyzed separately (or
        # not at all); Pass / Break / Continue / Import carry nothing.

    # ------------------------------------------------------------------ #
    # Sinks
    # ------------------------------------------------------------------ #

    def _scan_sinks(self, stmt: ast.stmt, control: bool) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                self._check_call(node, control)

    def _scan_sinks_expr(self, expr: ast.expr, control: bool) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._check_call(node, control)

    def _record(self, line: int, sink: str, reason: str) -> None:
        key = (line, sink)
        if key not in self._reported:
            self._reported.add(key)
            self.hits.append(TaintHit(line=line, sink=sink, reason=reason))

    def _check_call(self, call: ast.Call, control: bool) -> None:
        name = _call_name(call.func)
        is_reservation = name in SINK_METHODS and isinstance(call.func, ast.Attribute)
        is_constructor = name in SINK_CONSTRUCTORS
        if is_reservation or is_constructor:
            sink = f"{name}()"
            if control:
                self._record(call.lineno, sink, "control")
            for arg in list(call.args) + [k.value for k in call.keywords]:
                if self.taint_of(arg):
                    self._record(arg.lineno, sink, "data")
        for keyword in call.keywords:
            if keyword.arg in SINK_KEYWORDS:
                sink = f"{keyword.arg}="
                if self.taint_of(keyword.value):
                    self._record(keyword.value.lineno, sink, "data")
                elif control and not is_constructor:
                    self._record(keyword.value.lineno, sink, "control")


def analyze_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    tainted_params: frozenset[str] = frozenset({"args", "addr"}),
) -> Iterator[TaintHit]:
    """Convenience wrapper: run the lattice, yield hits in source order."""
    analysis = FunctionTaint(func, tainted_params)
    yield from sorted(analysis.run(), key=lambda h: (h.line, h.sink))
