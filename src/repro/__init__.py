"""repro — Speculative Data-Oblivious Execution (SDO, ISCA 2020) in Python.

A full reproduction of Yu et al.'s SDO on a from-scratch simulation stack:
a speculative out-of-order core, a banked/sliced cache hierarchy, STT
taint tracking, and the SDO framework (Obl-Ld + location predictors +
Obl-FP) on top.  See README.md for the tour, DESIGN.md for the system
inventory, EXPERIMENTS.md for paper-vs-measured results.

The most useful entry points:

>>> from repro import Session, config_by_name, suite, AttackModel
>>> session = Session(jobs=4)                        # doctest: +SKIP
>>> metrics = session.run(suite()[1], "Hybrid",
...                       AttackModel.SPECTRE)       # doctest: +SKIP
>>> results = session.sweep(suite())                 # doctest: +SKIP
>>> from repro.security import run_spectre_v1
>>> run_spectre_v1("Unsafe").leaked                  # doctest: +SKIP
True

``run_workload``/``run_suite`` are deprecated shims over the same API.
"""

from repro.common.config import AttackModel, MachineConfig, MemLevel
from repro.sim.api import RunFailure, RunMetrics, RunRequest, Session, execute
from repro.sim.configs import EVALUATED_CONFIGS, config_by_name
from repro.sim.runner import run_suite, run_workload
from repro.workloads.spec17 import suite

__version__ = "1.1.0"

__all__ = [
    "AttackModel",
    "EVALUATED_CONFIGS",
    "MachineConfig",
    "MemLevel",
    "RunFailure",
    "RunMetrics",
    "RunRequest",
    "Session",
    "config_by_name",
    "execute",
    "run_suite",
    "run_workload",
    "suite",
    "__version__",
]
