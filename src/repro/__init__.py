"""repro — Speculative Data-Oblivious Execution (SDO, ISCA 2020) in Python.

A full reproduction of Yu et al.'s SDO on a from-scratch simulation stack:
a speculative out-of-order core, a banked/sliced cache hierarchy, STT
taint tracking, and the SDO framework (Obl-Ld + location predictors +
Obl-FP) on top.  See README.md for the tour, DESIGN.md for the system
inventory, EXPERIMENTS.md for paper-vs-measured results.

The most useful entry points:

>>> from repro import ExecutionPolicy, Session, config_by_name, suite
>>> session = Session(execution=ExecutionPolicy(jobs=4))  # doctest: +SKIP
>>> metrics = session.run(suite()[1], "Hybrid")           # doctest: +SKIP
>>> results = session.sweep(suite())                      # doctest: +SKIP
>>> from repro.security import run_spectre_v1
>>> run_spectre_v1("Unsafe").leaked                       # doctest: +SKIP
True

Distributed sweeps go through :mod:`repro.fabric`: point the session's
:class:`ExecutionPolicy` at a scheduler (``fabric="http://host:8700"``)
and ``sweep()`` transparently fans out across its workers.
"""

from repro.common.config import AttackModel, MachineConfig, MemLevel
from repro.sim.api import RunFailure, RunMetrics, RunRequest, Session, execute
from repro.sim.configs import EVALUATED_CONFIGS, config_by_name
from repro.sim.policies import CachePolicy, ExecutionPolicy, JournalPolicy
from repro.workloads.spec17 import suite

__version__ = "1.2.0"

__all__ = [
    "AttackModel",
    "CachePolicy",
    "EVALUATED_CONFIGS",
    "ExecutionPolicy",
    "JournalPolicy",
    "MachineConfig",
    "MemLevel",
    "RunFailure",
    "RunMetrics",
    "RunRequest",
    "Session",
    "config_by_name",
    "execute",
    "suite",
    "__version__",
]
